"""Setuptools shim.

The project is fully described by ``pyproject.toml``; this file exists so that
editable installs (``pip install -e .``) work in offline environments whose
pip falls back to the legacy ``setup.py develop`` code path when the ``wheel``
package is unavailable.
"""

from setuptools import setup

setup()
