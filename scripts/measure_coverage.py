#!/usr/bin/env python3
"""Measure line coverage of ``src/repro`` under the tier-1 suite, stdlib-only.

CI runs the real thing (``pytest --cov`` via pytest-cov); this script exists
for environments without coverage.py installed -- it was used to measure the
baseline behind the ``--cov-fail-under`` floor in ``.github/workflows/ci.yml``.

Method: a ``sys.settrace`` global hook attaches a line collector to every
frame whose code lives under ``src/repro`` and the tier-1 suite runs
in-process.  The denominator is the set of executable lines per file, taken
from the compiled code objects' ``co_lines()`` tables (walked recursively),
which approximates coverage.py's statement count from above -- it also counts
docstring-load lines, so the percentage reported here is slightly
*pessimistic* relative to pytest-cov.  Lines run only inside forked worker
processes (``ParallelTrialRunner``) are not observed, same as a default
pytest-cov run without subprocess concurrency support.

Usage::

    python scripts/measure_coverage.py [pytest args...]   # default: -q tests

Prints a per-file table and the total, and writes ``coverage_baseline.json``.
"""

from __future__ import annotations

import json
import os
import sys
import threading
import types
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src"
PACKAGE = SRC / "repro"
sys.path.insert(0, str(SRC))
# Child processes (the example-script tests spawn fresh interpreters) need
# the package on *their* path too; their lines are not traced, but they must
# pass for the run to count.
os.environ["PYTHONPATH"] = str(SRC) + (
    os.pathsep + os.environ["PYTHONPATH"] if os.environ.get("PYTHONPATH") else ""
)

_executed: dict = {}


def _global_trace(frame, event, arg):
    if event != "call":
        return None
    filename = frame.f_code.co_filename
    if not filename.startswith(str(PACKAGE)):
        return None
    bucket = _executed.get(filename)
    if bucket is None:
        bucket = _executed[filename] = set()

    def _local_trace(frame, event, arg):
        if event == "line":
            bucket.add(frame.f_lineno)
        return _local_trace

    return _local_trace


def executable_lines(path: Path) -> set:
    """All line numbers carrying bytecode in ``path`` (recursively)."""
    code = compile(path.read_text(encoding="utf-8"), str(path), "exec")
    lines: set = set()
    stack = [code]
    while stack:
        obj = stack.pop()
        for _start, _end, line in obj.co_lines():
            if line is not None and line > 0:
                lines.add(line)
        for const in obj.co_consts:
            if isinstance(const, types.CodeType):
                stack.append(const)
    return lines


def main(argv: list) -> int:
    import pytest

    pytest_args = argv or ["-q", str(REPO / "tests")]
    os.chdir(REPO)

    threading.settrace(_global_trace)
    sys.settrace(_global_trace)
    try:
        exit_code = pytest.main(pytest_args)
    finally:
        sys.settrace(None)
        threading.settrace(None)
    if exit_code != 0:
        print(f"pytest exited with {exit_code}; coverage numbers would be partial")
        return int(exit_code)

    rows = []
    total_executable = 0
    total_hit = 0
    for path in sorted(PACKAGE.rglob("*.py")):
        possible = executable_lines(path)
        if not possible:
            continue
        hit = _executed.get(str(path), set()) & possible
        total_executable += len(possible)
        total_hit += len(hit)
        rows.append(
            {
                "file": str(path.relative_to(REPO)),
                "lines": len(possible),
                "covered": len(hit),
                "percent": round(100.0 * len(hit) / len(possible), 1),
            }
        )

    width = max(len(row["file"]) for row in rows)
    for row in rows:
        print(f"{row['file']:<{width}}  {row['covered']:>5}/{row['lines']:<5} {row['percent']:>6.1f}%")
    total_percent = round(100.0 * total_hit / total_executable, 2)
    print("-" * (width + 22))
    print(f"{'TOTAL':<{width}}  {total_hit:>5}/{total_executable:<5} {total_percent:>6.2f}%")

    report = {
        "method": "sys.settrace line collector vs co_lines() denominator",
        "pytest_args": pytest_args,
        "total_percent": total_percent,
        "total_lines": total_executable,
        "covered_lines": total_hit,
        "files": rows,
    }
    out = REPO / "coverage_baseline.json"
    out.write_text(json.dumps(report, indent=1) + "\n", encoding="utf-8")
    print(f"report written to {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
