#!/usr/bin/env python3
"""Run every experiment at its default (EXPERIMENTS.md) scale and save a report.

Usage::

    python scripts/run_all_experiments.py [output_path] [--workers N]

The output is the concatenation of every experiment's rendered tables and
findings -- the source material for EXPERIMENTS.md.  ``--workers`` fans each
experiment's Monte-Carlo trials across processes; because trials are pure
functions of their derived seeds, the report is byte-identical for any worker
count (only the wall-clock changes).
"""

from __future__ import annotations

import argparse
import inspect
import time

from repro.experiments import ALL_EXPERIMENTS
from repro.experiments.parallel import SweepPool
from repro.experiments.reporting import render_experiment
from repro.experiments.resilience import active_policy
from repro.experiments.runner import add_execution_arguments, execution_from_args


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "output_path",
        nargs="?",
        default="experiments_report.txt",
        help="where to write the concatenated report",
    )
    add_execution_arguments(parser, workers_default=1)
    args = parser.parse_args()
    workers, adaptive, policy = execution_from_args(args)
    workers = workers if workers is not None else 1

    sections = []
    total_started = time.time()
    # One worker pool serves every experiment that can share it (e1-e3, e5):
    # pool startup is paid once for the whole report, not once per sweep point.
    # The execution policy (timeouts/retries/checkpoint) is ambient for the
    # whole report run, so every experiment inherits it without a signature.
    with active_policy(policy), SweepPool(workers) as pool:
        for experiment_id in sorted(ALL_EXPERIMENTS):
            module = ALL_EXPERIMENTS[experiment_id]
            kwargs = {}
            parameters = inspect.signature(module.run).parameters
            if "pool" in parameters:
                kwargs["pool"] = pool
            elif "workers" in parameters:
                kwargs["workers"] = workers
            if adaptive is not None:
                if "adaptive" in parameters:
                    kwargs["adaptive"] = adaptive
                else:
                    print(
                        f"  note: {experiment_id} does not run Monte-Carlo "
                        "trials; adaptive stopping flags are ignored",
                        flush=True,
                    )
            started = time.time()
            print(f"running {experiment_id} ({module.TITLE}) ...", flush=True)
            result = module.run(**kwargs)
            elapsed = time.time() - started
            sections.append(render_experiment(result))
            sections.append(f"[{experiment_id} completed in {elapsed:.1f}s]\n")
            print(f"  done in {elapsed:.1f}s", flush=True)
    total_elapsed = time.time() - total_started
    if policy is not None and policy.failures:
        print(
            f"warning: {len(policy.failures)} trial(s) recorded as structured "
            "failures (see ExecutionPolicy.failures)",
            flush=True,
        )
    report = "\n".join(sections)
    with open(args.output_path, "w", encoding="utf-8") as handle:
        handle.write(report)
    print(f"report written to {args.output_path}")
    print(f"total wall clock: {total_elapsed:.1f}s (workers={workers})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
