#!/usr/bin/env python3
"""Run every experiment at its default (EXPERIMENTS.md) scale and save a report.

Usage::

    python scripts/run_all_experiments.py [output_path]

The output is the concatenation of every experiment's rendered tables and
findings -- the source material for EXPERIMENTS.md.
"""

from __future__ import annotations

import sys
import time

from repro.experiments import ALL_EXPERIMENTS
from repro.experiments.reporting import render_experiment


def main() -> int:
    output_path = sys.argv[1] if len(sys.argv) > 1 else "experiments_report.txt"
    sections = []
    for experiment_id in sorted(ALL_EXPERIMENTS):
        module = ALL_EXPERIMENTS[experiment_id]
        started = time.time()
        print(f"running {experiment_id} ({module.TITLE}) ...", flush=True)
        result = module.run()
        elapsed = time.time() - started
        sections.append(render_experiment(result))
        sections.append(f"[{experiment_id} completed in {elapsed:.1f}s]\n")
        print(f"  done in {elapsed:.1f}s", flush=True)
    report = "\n".join(sections)
    with open(output_path, "w", encoding="utf-8") as handle:
        handle.write(report)
    print(f"report written to {output_path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
