#!/usr/bin/env python3
"""Measure engine/sampling/trial throughput and emit ``BENCH_engine.json``.

Usage::

    python scripts/bench_report.py [--quick] [--output BENCH_engine.json]
                                   [--workers N]

Three measurements, all derived from the workloads the experiments actually
run:

``engine``
    Events/sec of a self-scheduling callback chain on the optimized engine
    and on the seed engine replica (``benchmarks/legacy_engine.py``), plus
    the resulting speedup.
``sampling``
    Elections/sec with per-message delay sampling vs numpy-backed batch
    sampling (``batch_sampling=True``).
``trials``
    Monte-Carlo election trials/sec serially and fanned across worker
    processes via :class:`repro.experiments.parallel.ParallelTrialRunner`.

``--quick`` shrinks every workload so the whole report takes a few seconds;
CI runs it on every PR to keep a perf artifact trail.  Numbers are
machine-dependent -- compare trajectories on the same hardware, not absolute
values across machines.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "benchmarks"))
sys.path.insert(0, str(REPO_ROOT / "src"))

from legacy_engine import LegacySimulator  # noqa: E402

from repro.core.runner import run_election  # noqa: E402
from repro.experiments.parallel import ParallelTrialRunner  # noqa: E402
from repro.experiments.runner import trial_seeds  # noqa: E402
from repro.sim.engine import Simulator  # noqa: E402

from bench_engine_microbench import events_per_second  # noqa: E402


def bench_engine(n_events: int, repeats: int) -> dict:
    # Interleave the two engines so CPU frequency drift between measurement
    # phases hits both equally.
    optimized_runs = []
    legacy_runs = []
    for _ in range(repeats):
        optimized_runs.append(events_per_second(Simulator, n_events))
        legacy_runs.append(events_per_second(LegacySimulator, n_events))
    optimized = max(optimized_runs)
    legacy = max(legacy_runs)
    return {
        "events_per_sec": round(optimized),
        "seed_engine_events_per_sec": round(legacy),
        "speedup_vs_seed": round(optimized / legacy, 2),
        "chain_events": n_events,
    }


def _elections_per_second(n: int, trials: int, batch_sampling: bool) -> float:
    started = time.perf_counter()
    for seed in trial_seeds(0, trials, label="bench"):
        result = run_election(n, a0=0.3, seed=seed, batch_sampling=batch_sampling)
        assert result.elected
    elapsed = time.perf_counter() - started
    return trials / elapsed


def bench_sampling(n: int, trials: int) -> dict:
    scalar = _elections_per_second(n, trials, batch_sampling=False)
    batched = _elections_per_second(n, trials, batch_sampling=True)
    return {
        "ring_size": n,
        "scalar_elections_per_sec": round(scalar, 2),
        "batched_elections_per_sec": round(batched, 2),
        "batched_speedup": round(batched / scalar, 2),
    }


def bench_trials(n: int, trials: int, workers: int) -> dict:
    def run_one(seed: int):
        return run_election(n, a0=0.3, seed=seed)

    seeds = trial_seeds(0, trials, label="bench-par")

    started = time.perf_counter()
    serial = [run_one(seed) for seed in seeds]
    serial_elapsed = time.perf_counter() - started

    runner = ParallelTrialRunner(workers=workers)
    started = time.perf_counter()
    parallel = runner.map(run_one, seeds)
    parallel_elapsed = time.perf_counter() - started

    assert serial == parallel, "parallel trials diverged from serial results"
    return {
        "ring_size": n,
        "trials": trials,
        "workers": workers,
        "serial_trials_per_sec": round(trials / serial_elapsed, 2),
        "parallel_trials_per_sec": round(trials / parallel_elapsed, 2),
        "parallel_speedup": round(serial_elapsed / parallel_elapsed, 2),
        "results_bit_identical": True,
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="shrunken CI-sized run")
    parser.add_argument(
        "--output", default=str(REPO_ROOT / "BENCH_engine.json"), help="output path"
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=0,
        help="workers for the trial benchmark (0 = one per CPU, min 4 for scaling data)",
    )
    args = parser.parse_args()

    if args.quick:
        chain_events, repeats = 30_000, 2
        sampling_n, sampling_trials = 16, 10
        trial_n, trial_count = 16, 12
    else:
        chain_events, repeats = 150_000, 3
        sampling_n, sampling_trials = 32, 30
        trial_n, trial_count = 32, 48
    workers = args.workers if args.workers > 0 else max(4, os.cpu_count() or 1)

    print("benchmarking engine ...", flush=True)
    engine = bench_engine(chain_events, repeats)
    print(
        f"  {engine['events_per_sec']:,} events/sec "
        f"({engine['speedup_vs_seed']}x vs seed engine)"
    )
    print("benchmarking delay sampling ...", flush=True)
    sampling = bench_sampling(sampling_n, sampling_trials)
    print(
        f"  scalar {sampling['scalar_elections_per_sec']}/s, "
        f"batched {sampling['batched_elections_per_sec']}/s "
        f"({sampling['batched_speedup']}x)"
    )
    print(f"benchmarking trial fan-out (workers={workers}) ...", flush=True)
    trials = bench_trials(trial_n, trial_count, workers)
    print(
        f"  serial {trials['serial_trials_per_sec']}/s, "
        f"parallel {trials['parallel_trials_per_sec']}/s "
        f"({trials['parallel_speedup']}x)"
    )

    report = {
        "generated_by": "scripts/bench_report.py",
        "quick": args.quick,
        "python": sys.version.split()[0],
        "cpu_count": os.cpu_count(),
        "engine": engine,
        "sampling": sampling,
        "trials": trials,
    }
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    print(f"report written to {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
