#!/usr/bin/env python3
"""Measure engine/sampling/trial throughput and emit ``BENCH_engine.json``.

Usage::

    python scripts/bench_report.py [--quick] [--output BENCH_engine.json]
                                   [--workers N]

Five measurements, all derived from the workloads the experiments actually
run:

``engine``
    Events/sec of a self-scheduling callback chain on the optimized engine
    and on the seed engine replica (``benchmarks/legacy_engine.py``), plus
    the resulting speedup.
``message_path``
    Messages/sec of a relay workload on the real network stack (pooled
    envelopes, handle-free delivery scheduling, null tracer) vs the
    pre-optimization replica (``benchmarks/legacy_message_path.py``).
``election_core``
    Ticks/sec of tick-dominated elections on the live election core (plain
    integer counters, cached activation probability, allocation-free tick
    rescheduling, identity clock fast path) vs the pre-refactor replica
    (``benchmarks/legacy_election_core.py``), plus the opt-in ``batch_ticks``
    shared-round-driver mode.
``vector_core``
    Ticks/sec of the columnar numpy engine (``repro.core.vector_core``) vs
    the object core on its fast defaults, on the same tick-dominated
    workload (``benchmarks/bench_vector_core.py``; different deterministic
    random streams by design, so throughput -- not trajectories -- is
    compared).
``sampling``
    Per-message delay sampling vs numpy-backed batch sampling
    (``batch_sampling=True``).  ``batched_speedup`` gates on the sampling
    *layer* (delays/sec through ``BlockDelaySampler`` vs per-call
    ``sample``); full elections in both modes are included for end-to-end
    context -- the two modes are different deterministic random streams, so
    those are different sample paths and compared on events/sec.
``trials``
    Monte-Carlo election trials/sec serially and fanned across worker
    processes via :class:`repro.experiments.parallel.ParallelTrialRunner`.
``experiments_e2e``
    Wall clock of a reduced E1+E3 experiment-suite run: the pre-PR-4
    defaults (per-message sampling, per-node ticks, fixed trial counts) vs
    the shipped fast defaults plus adaptive Monte-Carlo stopping
    (``benchmarks/bench_experiments_e2e.py``, gated >= 2x there).
``sweep_pool``
    Wall clock of a multi-size election sweep forking a fresh pool per ring
    size vs reusing one :class:`repro.experiments.parallel.SweepPool`, with
    the bit-identity of the two result sets asserted.
``result_store``
    Per-trial journaling cost of both checkpoint backends
    (:class:`repro.store.JsonlResultStore` append-only JSONL,
    :class:`repro.store.ResultStore` sqlite): records/sec, lookups/sec, and
    the second-half/first-half cost ratio over the record stream -- ~1.0
    means each append is O(1) in journal length (the pre-store journal
    rewrote the whole file per record, so this ratio grew with N and total
    bytes were O(N^2)).

Every section also reports ``peak_mem_mb``: the tracemalloc peak of one
representative workload run.  Tracing slows Python severely, so memory is
always measured in a separate untimed pass, never inside a timed region;
sections that fan out to worker processes report the serial path's peak
(child allocations are invisible to the parent's tracemalloc).

``--quick`` shrinks every workload so the whole report takes a few seconds;
CI runs it on every PR to keep a perf artifact trail.  Numbers are
machine-dependent -- compare trajectories on the same hardware, not absolute
values across machines.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
import tracemalloc
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "benchmarks"))
sys.path.insert(0, str(REPO_ROOT / "src"))

from legacy_engine import LegacySimulator  # noqa: E402

from repro.core.runner import (  # noqa: E402
    build_election_network,
    run_election,
    run_election_on_network,
)
from repro.experiments.parallel import ParallelTrialRunner, SweepPool  # noqa: E402
from repro.experiments.runner import trial_seeds  # noqa: E402
from repro.experiments.workloads import election_trials  # noqa: E402
from repro.sim.engine import Simulator  # noqa: E402

from bench_election_core import (  # noqa: E402
    A0 as ELECTION_CORE_A0,
    RING_SIZE as ELECTION_CORE_RING,
    legacy_ticks_per_second,
    live_ticks_per_second,
)
from bench_engine_microbench import events_per_second  # noqa: E402
from bench_experiments_e2e import measure as measure_experiments_e2e  # noqa: E402
from bench_message_path import (  # noqa: E402
    legacy_messages_per_second,
    optimized_messages_per_second,
)
from bench_vector_core import (  # noqa: E402
    object_ticks_per_second,
    vector_ticks_per_second,
)


def peak_memory_mb(fn) -> float:
    """Tracemalloc peak (MB) of one run of ``fn``, measured untimed.

    Tracing multiplies the cost of every allocation, so this must never run
    inside a timed region -- each bench section does a dedicated memory pass.
    """
    tracemalloc.start()
    try:
        fn()
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return round(peak / (1024 * 1024), 3)


def bench_engine(n_events: int, repeats: int) -> dict:
    # Interleave the two engines so CPU frequency drift between measurement
    # phases hits both equally.
    optimized_runs = []
    legacy_runs = []
    for _ in range(repeats):
        optimized_runs.append(events_per_second(Simulator, n_events))
        legacy_runs.append(events_per_second(LegacySimulator, n_events))
    optimized = max(optimized_runs)
    legacy = max(legacy_runs)
    return {
        "events_per_sec": round(optimized),
        "seed_engine_events_per_sec": round(legacy),
        "speedup_vs_seed": round(optimized / legacy, 2),
        "chain_events": n_events,
        "peak_mem_mb": peak_memory_mb(
            lambda: events_per_second(Simulator, n_events)
        ),
    }


def bench_message_path(messages: int, repeats: int) -> dict:
    # Interleave the two paths so CPU frequency drift hits both equally.
    optimized_runs = []
    legacy_runs = []
    for _ in range(repeats):
        optimized_runs.append(optimized_messages_per_second(messages))
        legacy_runs.append(legacy_messages_per_second(messages))
    optimized = max(optimized_runs)
    legacy = max(legacy_runs)
    return {
        "messages_per_sec": round(optimized),
        "legacy_messages_per_sec": round(legacy),
        "speedup_vs_legacy": round(optimized / legacy, 2),
        "relay_messages": messages,
        "peak_mem_mb": peak_memory_mb(
            lambda: optimized_messages_per_second(messages)
        ),
    }


def bench_election_core(repeats: int) -> dict:
    # Interleave live / legacy / batched so CPU frequency drift hits all
    # three equally.  The workload (tick-dominated elections; see
    # benchmarks/bench_election_core.py) is identical across the three
    # modes, and live-vs-legacy bit-identity is asserted by the differential
    # tests before these numbers mean anything.
    live_runs = []
    legacy_runs = []
    batched_runs = []
    for _ in range(repeats):
        live_runs.append(live_ticks_per_second())
        legacy_runs.append(legacy_ticks_per_second())
        batched_runs.append(live_ticks_per_second(batch_ticks=True))
    live = max(live_runs)
    legacy = max(legacy_runs)
    batched = max(batched_runs)
    return {
        "ring_size": ELECTION_CORE_RING,
        "a0": ELECTION_CORE_A0,
        "ticks_per_sec": round(live),
        "legacy_ticks_per_sec": round(legacy),
        "speedup_vs_legacy": round(live / legacy, 2),
        "batch_ticks_per_sec": round(batched),
        "batch_ticks_speedup": round(batched / live, 2),
        "peak_mem_mb": peak_memory_mb(live_ticks_per_second),
    }


def bench_vector_core(repeats: int) -> dict:
    # Interleave vector / object so CPU frequency drift hits both equally.
    # Same workload as bench_election_core; the object side runs its fast
    # defaults, so the speedup measures the columnar engine against the best
    # object-core configuration (see benchmarks/bench_vector_core.py).
    vector_runs = []
    object_runs = []
    for _ in range(repeats):
        vector_runs.append(vector_ticks_per_second())
        object_runs.append(object_ticks_per_second())
    vector = max(vector_runs)
    obj = max(object_runs)
    return {
        "ring_size": ELECTION_CORE_RING,
        "a0": ELECTION_CORE_A0,
        "ticks_per_sec": round(vector),
        "object_ticks_per_sec": round(obj),
        "speedup_vs_object": round(vector / obj, 2),
        "peak_mem_mb": peak_memory_mb(vector_ticks_per_second),
        "object_peak_mem_mb": peak_memory_mb(object_ticks_per_second),
    }


def _election_throughput(n: int, trials: int, batch_sampling: bool) -> tuple:
    """(elections/sec, events/sec) over the trial battery.

    Only the simulation run is timed (network construction is excluded): the
    sampling mode changes per-message work inside the event loop, and the two
    modes are different random streams, so the clean comparison is time spent
    per simulated event.  Lazy sampler refills still land inside the timed
    region, so batch mode pays its real costs here.
    """
    elapsed = 0.0
    events = 0
    for seed in trial_seeds(0, trials, label="bench"):
        network, status = build_election_network(
            n, a0=0.3, seed=seed, batch_sampling=batch_sampling
        )
        started = time.perf_counter()
        result = run_election_on_network(network, status, a0=0.3)
        elapsed += time.perf_counter() - started
        assert result.elected
        events += result.events_processed
    return trials / elapsed, events / elapsed


def _delays_per_second(batched: bool, draws: int) -> float:
    """Throughput of the sampling layer itself on the canonical ABE channel."""
    import random

    from repro.network.delays import ExponentialDelay
    from repro.network.sampling import BlockDelaySampler

    distribution = ExponentialDelay(mean=1.0)
    rng = random.Random(7)
    if batched:
        draw = BlockDelaySampler(distribution, rng).next
    else:
        sample = distribution.sample

        def draw() -> float:
            return sample(rng)

    started = time.perf_counter()
    for _ in range(draws):
        draw()
    return draws / (time.perf_counter() - started)


def bench_sampling(n: int, trials: int, draws: int = 300_000, repeats: int = 2) -> dict:
    # Two views.  The layer view measures what batch sampling changes: the
    # cost of drawing one delay through the channel sampling layer at steady
    # state -- `batched_speedup` gates on this.  The election view runs full
    # elections in both modes for end-to-end context; those are *different
    # deterministic random streams* (different sample paths, different event
    # counts), and at election scale the per-channel numpy generator setup
    # roughly cancels the per-draw savings, so events/sec lands near 1x.
    scalar_draws = []
    batched_draws = []
    scalar_runs = []
    batched_runs = []
    for _ in range(repeats):
        scalar_draws.append(_delays_per_second(False, draws))
        batched_draws.append(_delays_per_second(True, draws))
        scalar_runs.append(_election_throughput(n, trials, batch_sampling=False))
        batched_runs.append(_election_throughput(n, trials, batch_sampling=True))
    scalar = max(scalar_runs)[0], max(run[1] for run in scalar_runs)
    batched = max(batched_runs)[0], max(run[1] for run in batched_runs)
    return {
        "ring_size": n,
        "scalar_delays_per_sec": round(max(scalar_draws)),
        "batched_delays_per_sec": round(max(batched_draws)),
        "batched_speedup": round(max(batched_draws) / max(scalar_draws), 2),
        "scalar_elections_per_sec": round(scalar[0], 2),
        "batched_elections_per_sec": round(batched[0], 2),
        "scalar_election_events_per_sec": round(scalar[1]),
        "batched_election_events_per_sec": round(batched[1]),
        "election_events_speedup": round(batched[1] / scalar[1], 2),
        "peak_mem_mb": peak_memory_mb(
            lambda: _election_throughput(n, trials, batch_sampling=True)
        ),
    }


def bench_trials(n: int, trials: int, workers: int) -> dict:
    def run_one(seed: int):
        return run_election(n, a0=0.3, seed=seed)

    seeds = trial_seeds(0, trials, label="bench-par")

    started = time.perf_counter()
    serial = [run_one(seed) for seed in seeds]
    serial_elapsed = time.perf_counter() - started

    runner = ParallelTrialRunner(workers=workers)
    started = time.perf_counter()
    parallel = runner.map(run_one, seeds)
    parallel_elapsed = time.perf_counter() - started

    assert serial == parallel, "parallel trials diverged from serial results"
    return {
        "ring_size": n,
        "trials": trials,
        "workers": workers,
        "serial_trials_per_sec": round(trials / serial_elapsed, 2),
        "parallel_trials_per_sec": round(trials / parallel_elapsed, 2),
        "parallel_speedup": round(serial_elapsed / parallel_elapsed, 2),
        "results_bit_identical": True,
        # Serial path only: child-process allocations are invisible here.
        "peak_mem_mb": peak_memory_mb(
            lambda: [run_one(seed) for seed in seeds]
        ),
    }


def bench_sweep_pool(sizes: tuple, trials: int, workers: int) -> dict:
    # Per parameter point: the PR-1 behaviour, one fresh fork pool per size.
    started = time.perf_counter()
    per_point = {
        n: election_trials(n, trials, 0, workers=workers) for n in sizes
    }
    per_point_elapsed = time.perf_counter() - started

    # Shared: one SweepPool reused across every size of the sweep.
    started = time.perf_counter()
    with SweepPool(workers) as pool:
        shared = {n: election_trials(n, trials, 0, pool=pool) for n in sizes}
    shared_elapsed = time.perf_counter() - started

    assert per_point == shared, "shared-pool sweep diverged from per-point pools"
    total = trials * len(sizes)
    return {
        "sizes": list(sizes),
        "trials_per_size": trials,
        "workers": workers,
        "per_point_pool_trials_per_sec": round(total / per_point_elapsed, 2),
        "shared_pool_trials_per_sec": round(total / shared_elapsed, 2),
        "shared_pool_speedup": round(per_point_elapsed / shared_elapsed, 2),
        "results_bit_identical": True,
    }


def bench_result_store(records: int) -> dict:
    import shutil
    import tempfile

    from repro.experiments.workloads import ElectionTrial
    from repro.network.delays import ExponentialDelay
    from repro.store import CheckpointJournal

    # One representative election result is the payload for every record.
    payload = ElectionTrial(8, 0.3, ExponentialDelay(mean=1.0), {})(7)
    half = records // 2
    seeds = list(range(2 * half))
    tmp = tempfile.mkdtemp(prefix="bench_result_store_")
    section: dict = {"records": 2 * half}
    try:
        for kind, filename in (("jsonl", "journal.jsonl"), ("sqlite", "store.sqlite")):
            store = CheckpointJournal(os.path.join(tmp, filename))
            started = time.perf_counter()
            for seed in seeds[:half]:
                store.record("bench", seed, payload)
            first_half = time.perf_counter() - started
            started = time.perf_counter()
            for seed in seeds[half:]:
                store.record("bench", seed, payload)
            second_half = time.perf_counter() - started
            started = time.perf_counter()
            cached = store.lookup("bench", seeds)
            lookup_elapsed = time.perf_counter() - started
            assert len(cached) == len(seeds)
            section[kind] = {
                "records_per_sec": round(len(seeds) / (first_half + second_half)),
                "lookups_per_sec": round(len(seeds) / lookup_elapsed),
                # ~1.0 = O(1) appends; the pre-store whole-file-rewrite
                # journal trends toward 3.0 here and grows with N.
                "second_half_cost_ratio": round(second_half / first_half, 2),
                "bytes_per_record": round(store.bytes_written / len(seeds), 1),
            }
            if hasattr(store.backend, "close"):
                store.backend.close()
    finally:
        shutil.rmtree(tmp, ignore_errors=True)
    return section


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="shrunken CI-sized run")
    parser.add_argument(
        "--output", default=str(REPO_ROOT / "BENCH_engine.json"), help="output path"
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=0,
        help="workers for the trial benchmark (0 = one per CPU, min 4 for scaling data)",
    )
    args = parser.parse_args()

    if args.quick:
        chain_events, repeats = 30_000, 2
        relay_messages = 15_000
        sampling_n, sampling_trials = 16, 10
        trial_n, trial_count = 16, 12
        sweep_sizes, sweep_trials = (8, 16), 6
        store_records = 400
    else:
        chain_events, repeats = 150_000, 3
        relay_messages = 40_000
        sampling_n, sampling_trials = 32, 30
        trial_n, trial_count = 32, 48
        sweep_sizes, sweep_trials = (8, 16, 32), 16
        store_records = 2000
    workers = args.workers if args.workers > 0 else max(4, os.cpu_count() or 1)

    print("benchmarking engine ...", flush=True)
    engine = bench_engine(chain_events, repeats)
    print(
        f"  {engine['events_per_sec']:,} events/sec "
        f"({engine['speedup_vs_seed']}x vs seed engine)"
    )
    print("benchmarking message path ...", flush=True)
    message_path = bench_message_path(relay_messages, repeats)
    print(
        f"  {message_path['messages_per_sec']:,} messages/sec "
        f"({message_path['speedup_vs_legacy']}x vs legacy path)"
    )
    print("benchmarking election core ...", flush=True)
    election_core = bench_election_core(repeats)
    print(
        f"  {election_core['ticks_per_sec']:,} ticks/sec "
        f"({election_core['speedup_vs_legacy']}x vs legacy core, "
        f"batch_ticks {election_core['batch_ticks_speedup']}x)"
    )
    print("benchmarking vector core ...", flush=True)
    vector_core = bench_vector_core(repeats)
    print(
        f"  {vector_core['ticks_per_sec']:,} ticks/sec "
        f"({vector_core['speedup_vs_object']}x vs object core; peak "
        f"{vector_core['peak_mem_mb']} MB vs {vector_core['object_peak_mem_mb']} MB)"
    )
    print("benchmarking delay sampling ...", flush=True)
    sampling = bench_sampling(sampling_n, sampling_trials)
    print(
        f"  layer: scalar {sampling['scalar_delays_per_sec']:,} delays/sec, "
        f"batched {sampling['batched_delays_per_sec']:,} delays/sec "
        f"({sampling['batched_speedup']}x); elections "
        f"{sampling['election_events_speedup']}x events/sec"
    )
    print("benchmarking experiments end-to-end ...", flush=True)
    experiments_e2e = measure_experiments_e2e(quick=args.quick, repeats=repeats)
    print(
        f"  legacy {experiments_e2e['legacy_seconds']}s, fast "
        f"{experiments_e2e['fast_seconds']}s ({experiments_e2e['speedup']}x; "
        f"trials {experiments_e2e['legacy_trials_total']} -> "
        f"{experiments_e2e['fast_trials_total']})"
    )
    print(f"benchmarking trial fan-out (workers={workers}) ...", flush=True)
    trials = bench_trials(trial_n, trial_count, workers)
    print(
        f"  serial {trials['serial_trials_per_sec']}/s, "
        f"parallel {trials['parallel_trials_per_sec']}/s "
        f"({trials['parallel_speedup']}x)"
    )
    print(f"benchmarking sweep pool reuse (workers={workers}) ...", flush=True)
    sweep_pool = bench_sweep_pool(sweep_sizes, sweep_trials, workers)
    print(
        f"  per-point {sweep_pool['per_point_pool_trials_per_sec']}/s, "
        f"shared {sweep_pool['shared_pool_trials_per_sec']}/s "
        f"({sweep_pool['shared_pool_speedup']}x)"
    )
    print(f"benchmarking result store ({store_records} records) ...", flush=True)
    result_store = bench_result_store(store_records)
    for kind in ("jsonl", "sqlite"):
        numbers = result_store[kind]
        print(
            f"  {kind}: {numbers['records_per_sec']:,} records/sec, "
            f"{numbers['lookups_per_sec']:,} lookups/sec, "
            f"2nd-half cost {numbers['second_half_cost_ratio']}x "
            f"({numbers['bytes_per_record']} bytes/record)"
        )

    report = {
        "generated_by": "scripts/bench_report.py",
        "quick": args.quick,
        "python": sys.version.split()[0],
        "cpu_count": os.cpu_count(),
        "engine": engine,
        "message_path": message_path,
        "election_core": election_core,
        "vector_core": vector_core,
        "sampling": sampling,
        "experiments_e2e": experiments_e2e,
        "trials": trials,
        "sweep_pool": sweep_pool,
        "result_store": result_store,
    }
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    print(f"report written to {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
