"""Faithful replica of the pre-optimization per-message path.

``bench_message_path.py`` and ``scripts/bench_report.py`` measure the current
message hot path (pooled envelopes, handle-free delivery scheduling, null
tracer, plain integer counters) against this replica of how
``Channel.transmit``/``_deliver`` worked before: a fresh ``Envelope`` dataclass
per message, a delivery lambda closed over the envelope, an ``Event`` plus
``EventHandle`` per delivery via ``schedule_at``, two ``tracer.record`` calls
whose kwargs dicts are built even though tracing is disabled, string-keyed
``MetricsCollector.increment`` lookups, per-message ``isinstance`` dispatch in
delay sampling, and the unconditional per-event stop-predicate listener the
network used to register.

Both paths run on the *current* engine, so the comparison isolates the
message-layer overhead (the engine's own speedup is gated separately by
``bench_engine_microbench.py``).  Like ``legacy_engine.py``, this file is a
benchmark fixture: it must stay behaviourally faithful to the old code, not
get optimized.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, field
from typing import Any, List, Optional

from repro.network.delays import DelayDistribution
from repro.sim.engine import Simulator
from repro.sim.events import EventKind
from repro.sim.monitor import MetricsCollector
from repro.sim.trace import Tracer

__all__ = ["LegacyMessageNetwork", "LegacyRelayProgram"]

_envelope_counter = itertools.count()


@dataclass
class LegacyEnvelope:
    """The old ``Envelope``: a plain (dict-backed) dataclass, one per message."""

    payload: Any
    source: int
    destination: int
    channel_id: int
    send_time: float
    delay: float
    deliver_time: Optional[float] = None
    envelope_id: int = field(default_factory=lambda: next(_envelope_counter))


class LegacyChannel:
    """The old per-message path, verbatim in structure."""

    def __init__(
        self,
        channel_id: int,
        source: "LegacyNode",
        destination: "LegacyNode",
        destination_port: int,
        delay_model: DelayDistribution,
        rng: random.Random,
    ) -> None:
        self.channel_id = channel_id
        self.source = source
        self.destination = destination
        self.destination_port = destination_port
        self.delay_model = delay_model
        self.rng = rng
        self.messages_sent = 0
        self.messages_delivered = 0
        self.total_delay = 0.0
        self.max_observed_delay = 0.0

    def _sample_delay(self, payload: Any, send_time: float) -> float:
        # The old code dispatched on the model type per message (adversarial
        # vs iid); replicate the isinstance probes and the validation.
        if isinstance(self.delay_model, DelayDistribution):
            delay = self.delay_model.sample(self.rng)
        else:  # pragma: no cover - benchmark fixture, models are always iid
            raise TypeError(f"unsupported delay model {type(self.delay_model)!r}")
        if delay < 0:
            raise ValueError(f"delay model produced a negative delay: {delay}")
        return delay

    def _delivery_time(self, send_time: float, delay: float) -> float:
        return send_time + delay

    def transmit(self, payload: Any) -> LegacyEnvelope:
        network = self.source.network
        send_time = network.simulator.now
        delay = self._sample_delay(payload, send_time)
        deliver_time = self._delivery_time(send_time, delay)
        envelope = LegacyEnvelope(
            payload=payload,
            source=self.source.uid,
            destination=self.destination.uid,
            channel_id=self.channel_id,
            send_time=send_time,
            delay=delay,
            deliver_time=deliver_time,
        )
        self.messages_sent += 1
        network.metrics.increment("messages_sent")
        network.tracer.record(
            send_time,
            "send",
            self.source.uid,
            to=self.destination.uid,
            channel=self.channel_id,
            payload=payload,
            delay=delay,
        )
        network.simulator.schedule_at(
            deliver_time,
            lambda: self._deliver(envelope),
            kind=EventKind.MESSAGE_DELIVERY,
            payload=envelope,
        )
        return envelope

    def _deliver(self, envelope: LegacyEnvelope) -> None:
        network = self.source.network
        self.messages_delivered += 1
        actual_delay = network.simulator.now - envelope.send_time
        self.total_delay += actual_delay
        self.max_observed_delay = max(self.max_observed_delay, actual_delay)
        network.metrics.increment("messages_delivered")
        network.tracer.record(
            network.simulator.now,
            "deliver",
            self.destination.uid,
            sender=self.source.uid,
            channel=self.channel_id,
            payload=envelope.payload,
            latency=actual_delay,
        )
        self.destination.deliver(envelope.payload, self.destination_port)


class LegacyNode:
    def __init__(self, uid: int, network: "LegacyMessageNetwork") -> None:
        self.uid = uid
        self.network = network
        self.out_channels: List[LegacyChannel] = []
        self.program: Optional["LegacyRelayProgram"] = None

    def send(self, port: int, payload: Any) -> None:
        self.out_channels[port].transmit(payload)

    def deliver(self, payload: Any, in_port: int) -> None:
        self.network.metrics.increment("deliveries")
        self.program.on_receive(payload, in_port)


class LegacyRelayProgram:
    """Forwards every received token until the shared budget is exhausted."""

    def __init__(self, node: LegacyNode, budget: dict) -> None:
        self.node = node
        self.budget = budget

    def on_receive(self, payload: Any, port: int) -> None:
        budget = self.budget
        if budget["remaining"] > 0:
            budget["remaining"] -= 1
            self.node.send(0, payload)


class LegacyMessageNetwork:
    """A ring of relay nodes on the old message path (tracing disabled).

    Mirrors what the pre-optimization ``Network`` put between the program and
    the engine, including the per-event stop-predicate listener it registered
    unconditionally.
    """

    def __init__(self, ring_size: int, delay_model: DelayDistribution, seed: int = 0) -> None:
        self.simulator = Simulator()
        self.metrics = MetricsCollector()
        self.tracer = Tracer(enabled=False)
        self._stop_predicates: List[Any] = []
        self.nodes = [LegacyNode(uid, self) for uid in range(ring_size)]
        budget = {"remaining": 0}
        self.budget = budget
        for uid, node in enumerate(self.nodes):
            successor = self.nodes[(uid + 1) % ring_size]
            channel = LegacyChannel(
                channel_id=uid,
                source=node,
                destination=successor,
                destination_port=0,
                delay_model=delay_model,
                rng=random.Random(seed * 1_000_003 + uid),
            )
            node.out_channels.append(channel)
            node.program = LegacyRelayProgram(node, budget)
        self.simulator.add_listener(self._after_event_hook)

    def _after_event_hook(self, event) -> None:
        if not self._stop_predicates:
            return
        for predicate in self._stop_predicates:  # pragma: no cover - unused
            if predicate():
                self.simulator.stop()
                return

    def run_messages(self, count: int) -> int:
        """Circulate one token for ``count`` forwarded messages; returns count."""
        self.budget["remaining"] = count - 1
        self.nodes[0].send(0, "token")
        self.simulator.run()
        return int(self.metrics.count("messages_sent"))
