"""Benchmark / regeneration of experiment E1 (message complexity is linear).

Reduced parameters relative to the EXPERIMENTS.md run (fewer trials, sizes up
to 96) so the benchmark suite stays fast; the asserted findings are the ones
the paper's claim rests on.
"""

from __future__ import annotations

from repro.experiments import e1_message_complexity


def test_bench_e1_message_complexity(experiment_runner):
    result = experiment_runner(
        lambda: e1_message_complexity.run(sizes=(8, 16, 32, 64, 96), trials=15, base_seed=11)
    )
    assert result.finding("all_runs_elected"), "every trial must elect a leader"
    # The defining claim: per-node message cost stays bounded as n grows
    # (linear total), and the explicit growth-order fit prefers `n` over the
    # superlinear alternatives.
    assert result.finding("per_node_spread") < 3.0
    assert result.finding("max_messages_per_node") < 6.0
    assert result.finding("best_growth_order") in ("n", "n log n")
