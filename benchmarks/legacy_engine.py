"""Faithful replica of the seed (pre-optimization) event engine.

Kept so the engine microbenchmark and ``scripts/bench_report.py`` can measure
the optimized :class:`repro.sim.engine.Simulator` against the exact code it
replaced: an ``order=True`` dataclass event heap, a process-global sequence
counter behind a helper function, a ``schedule -> schedule_at -> make_event``
call chain, and a per-event listener loop.  Structure and call graph mirror
the seed's ``sim/engine.py``/``sim/events.py`` so the comparison is honest.
This module is a measurement baseline only -- nothing in the library imports
it.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional

_legacy_sequence = itertools.count()


def _next_sequence() -> int:
    return next(_legacy_sequence)


@dataclass(order=True)
class LegacyEvent:
    time: float
    priority: int
    sequence: int
    callback: Callable[[], None] = field(compare=False)
    payload: Any = field(default=None, compare=False)
    cancelled: bool = field(default=False, compare=False)

    def fire(self) -> None:
        if not self.cancelled:
            self.callback()


class LegacyEventHandle:
    __slots__ = ("_event",)

    def __init__(self, event: LegacyEvent) -> None:
        self._event = event

    def cancel(self) -> bool:
        if self._event.cancelled:
            return False
        self._event.cancelled = True
        return True


def _make_event(time: float, callback: Callable[[], None], priority: int = 0) -> LegacyEvent:
    return LegacyEvent(
        time=time, priority=priority, sequence=_next_sequence(), callback=callback
    )


class LegacySimulator:
    """The seed scheduler: dataclass events on the heap, global sequencing."""

    def __init__(self, start_time: float = 0.0) -> None:
        self._now: float = float(start_time)
        self._queue: List[LegacyEvent] = []
        self._stopped: bool = False
        self._events_processed: int = 0
        self._events_scheduled: int = 0
        self._listeners: List[Callable[[LegacyEvent], None]] = []

    @property
    def now(self) -> float:
        return self._now

    @property
    def events_processed(self) -> int:
        return self._events_processed

    def schedule(
        self, delay: float, callback: Callable[[], None], *, priority: int = 0
    ) -> LegacyEventHandle:
        if not (delay == delay) or delay in (float("inf"), float("-inf")):
            raise ValueError(f"delay must be finite, got {delay!r}")
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        return self.schedule_at(self._now + delay, callback, priority=priority)

    def schedule_at(
        self, time: float, callback: Callable[[], None], *, priority: int = 0
    ) -> LegacyEventHandle:
        if time < self._now:
            raise ValueError(f"cannot schedule at {time} before current time {self._now}")
        event = _make_event(time, callback, priority=priority)
        heapq.heappush(self._queue, event)
        self._events_scheduled += 1
        return LegacyEventHandle(event)

    def step(self) -> bool:
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self._now = event.time
            for listener in self._listeners:
                listener(event)
            event.fire()
            self._events_processed += 1
            return True
        return False

    def run(self, max_events: Optional[int] = None) -> float:
        self._stopped = False
        fired = 0
        while self._queue and not self._stopped:
            if max_events is not None and fired >= max_events:
                break
            event = self._queue[0]
            if event.cancelled:
                heapq.heappop(self._queue)
                continue
            if self.step():
                fired += 1
        return self._now

    def stop(self) -> None:
        self._stopped = True
