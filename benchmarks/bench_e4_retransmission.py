"""Benchmark / regeneration of experiment E4 (retransmission: k_avg = 1/p)."""

from __future__ import annotations

from repro.experiments import e4_retransmission


def test_bench_e4_retransmission(experiment_runner):
    result = experiment_runner(
        lambda: e4_retransmission.run(messages=10_000, base_seed=44)
    )
    # The Section 1 closed form: measured mean transmissions match 1/p.
    assert result.finding("matches_1_over_p_within_5pct")
    # And the tail never vanishes -- the delay is unbounded.
    assert result.finding("delay_is_unbounded")
