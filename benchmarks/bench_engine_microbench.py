"""Microbenchmark of the discrete-event engine hot path.

Unlike the experiment benchmarks (which regenerate EXPERIMENTS.md tables),
this file measures raw engine throughput: a self-scheduling callback chain
that exercises exactly the schedule/heap/fire cycle every election run spends
its time in.  It also runs the same workload on the seed engine replica
(:mod:`legacy_engine`) and asserts the optimized engine's >= 2x speedup, so an
accidental hot-path regression fails the benchmark suite rather than silently
slowing every experiment.

Run with ``pytest benchmarks/bench_engine_microbench.py --benchmark-only``
(the file is not collected by the tier-1 suite, which only picks up
``test_*.py`` under ``tests/``).
"""

from __future__ import annotations

import os
import random
import time

from legacy_engine import LegacySimulator

from repro.sim.engine import Simulator

#: Events per measured run; large enough to dwarf setup cost, small enough to
#: keep the whole suite laptop-friendly.
CHAIN_EVENTS = 100_000
FANOUT = 64


def _drive_chain(sim, n_events: int) -> None:
    """A self-scheduling workload: every fired event schedules its successor.

    Mirrors the engine usage of the election algorithm (a message delivery
    schedules the next delivery) and therefore measures push+pop+fire together.
    """
    rng = random.Random(12345)
    state = {"count": 0}

    def callback() -> None:
        state["count"] += 1
        if state["count"] < n_events:
            sim.schedule(rng.random(), callback)

    for _ in range(FANOUT):
        sim.schedule(rng.random(), callback)
    sim.run(max_events=n_events)
    assert state["count"] == n_events


def events_per_second(simulator_factory, n_events: int = CHAIN_EVENTS) -> float:
    """Throughput of the chain workload on a fresh simulator."""
    sim = simulator_factory()
    started = time.perf_counter()
    _drive_chain(sim, n_events)
    elapsed = time.perf_counter() - started
    return n_events / elapsed


def test_bench_engine_chain_throughput(benchmark):
    result = benchmark.pedantic(
        lambda: events_per_second(Simulator), rounds=3, iterations=1
    )
    print(f"\noptimized engine: {result:,.0f} events/sec")
    assert result > 0


def test_bench_engine_speedup_vs_seed():
    # Interleave the measurements so cache/frequency drift hits both equally.
    # The gate defaults to the documented 2x target; CI sets
    # ENGINE_SPEEDUP_GATE lower because shared runners are noisy and a few
    # percent of jitter on an unrelated PR should not read as a regression.
    gate = float(os.environ.get("ENGINE_SPEEDUP_GATE", "2.0"))
    optimized = []
    legacy = []
    for _ in range(3):
        optimized.append(events_per_second(Simulator))
        legacy.append(events_per_second(LegacySimulator))
    speedup = max(optimized) / max(legacy)
    print(
        f"\noptimized {max(optimized):,.0f} events/sec vs "
        f"seed {max(legacy):,.0f} events/sec -> {speedup:.2f}x (gate {gate}x)"
    )
    assert speedup >= gate, (
        f"engine hot path regressed: only {speedup:.2f}x over the seed engine "
        f"(must stay >= {gate}x)"
    )


def test_bench_schedule_many_vs_loop(benchmark):
    callbacks = [(0.0, lambda: None) for _ in range(10_000)]

    def batch() -> int:
        sim = Simulator()
        sim.schedule_many(callbacks)
        return sim.pending

    pending = benchmark.pedantic(batch, rounds=3, iterations=1)
    assert pending == len(callbacks)
