"""Benchmark / regeneration of experiment E5 (Theorem 1, synchronizer cost)."""

from __future__ import annotations

from repro.experiments import e5_synchronizer_lower_bound


def test_bench_e5_synchronizer_lower_bound(experiment_runner):
    result = experiment_runner(
        lambda: e5_synchronizer_lower_bound.run(sizes=(8, 16, 32), base_seed=55)
    )
    # Sound synchronizers (alpha, beta) never undercut the n messages/round bound.
    assert result.finding("sound_synchronizers_meet_theorem1")
    # The ABD synchronizer does undercut it ...
    assert result.finding("abd_synchronizer_undercuts_bound")
    # ... but only by relying on a hard delay bound: on ABE delays it breaks.
    assert result.finding("abd_synchronizer_unsound_on_abe")
