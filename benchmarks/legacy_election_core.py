"""Faithful replica of the pre-refactor election core.

``bench_election_core.py``, ``scripts/bench_report.py`` and the differential
tests measure/verify the current election hot loop (plain integer counters on
the shared status, prebound coin flip, cached activation probability,
allocation-free tick rescheduling) against this replica of how the core
worked before (commit 19a8dd0):

* ``LegacyTickProcess`` -- one ``Simulator.schedule`` call per tick, i.e. a
  fresh ``Event`` + ``EventHandle`` per tick (the held handle blocked the
  engine's free-list recycling), and the old piecewise-segment clock walk per
  tick (the replica switches its node's :class:`~repro.sim.clock.LocalClock`
  off the identity fast path, restoring the one-segment-per-time-unit map the
  pre-refactor clock built even when drift-free);
* ``LegacyAbeElectionProgram`` -- string-keyed ``metrics.increment`` per
  tick/activation/knockout, ``self.metrics`` property-chain walks on the hot
  path, and a ``schedule.probability(self.d)`` recompute on every tick.

Both run on the *current* engine and network, so the comparison isolates the
election-core overhead (engine and message-path speedups are gated
separately).  Like ``legacy_engine.py`` and ``legacy_message_path.py``, this
file is a benchmark fixture: it must stay behaviourally faithful to the old
code, not get optimized.  Faithfulness is enforced, not assumed --
``tests/test_differential_election.py`` asserts that legacy and live runs
are bit-identical on every configuration the differential harness covers.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.core.activation import ActivationSchedule, AdaptiveActivation
from repro.core.election import ElectionStatus, NodeState, RING_PORT
from repro.core.messages import HopMessage
from repro.core.runner import ElectionResult, _default_max_events
from repro.models.abe import ABEModel
from repro.network.delays import DelayDistribution, ExponentialDelay
from repro.network.network import Network, NetworkConfig
from repro.network.node import NodeProgram
from repro.network.topology import unidirectional_ring
from repro.sim.clock import LocalClock
from repro.sim.engine import Simulator
from repro.sim.events import EventHandle, EventKind

__all__ = ["LegacyTickProcess", "LegacyAbeElectionProgram", "legacy_run_election"]


class LegacyTickProcess:
    """The old tick scheduler: one ``schedule`` (Event + handle) per tick."""

    def __init__(
        self,
        simulator: Simulator,
        clock: LocalClock,
        callback: Callable[[int], Optional[bool]],
        *,
        local_period: float = 1.0,
        kind: EventKind = EventKind.CLOCK_TICK,
    ) -> None:
        self._simulator = simulator
        self._clock = clock
        self._callback = callback
        self._local_period = float(local_period)
        self._kind = kind
        self._count = 0
        self._stopped = False
        self._handle: Optional[EventHandle] = None
        # Pre-refactor clocks had no identity fast path: every tick paid the
        # piecewise-segment lookup (and grew one segment per real time unit).
        # Forcing the flag off restores that cost -- bit-identical results,
        # the fast path *is* the segment walk's arithmetic for unit clocks.
        clock._identity = False
        self._schedule_next()

    @property
    def ticks(self) -> int:
        return self._count

    @property
    def stopped(self) -> bool:
        return self._stopped

    def stop(self) -> None:
        self._stopped = True
        if self._handle is not None:
            self._handle.cancel()

    def _schedule_next(self) -> None:
        now = self._simulator.now
        real_delay = self._clock.real_duration_for_local(now, self._local_period)
        real_delay = max(real_delay, 1e-12)
        # The pre-refactor path: a fresh Event and EventHandle every tick.
        self._handle = self._simulator.schedule(real_delay, self._fire, kind=self._kind)

    def _fire(self) -> None:
        if self._stopped:
            return
        result = self._callback(self._count)
        self._count += 1
        if result is False or self._stopped:
            self._stopped = True
            return
        self._schedule_next()


class LegacyAbeElectionProgram(NodeProgram):
    """The pre-refactor Section 3 election program, verbatim in structure."""

    def __init__(
        self,
        status: ElectionStatus,
        schedule: Optional[ActivationSchedule] = None,
        tick_period: float = 1.0,
        purge_at_active: bool = True,
        stop_network_on_election: bool = True,
    ) -> None:
        super().__init__()
        self.status = status
        self.schedule = schedule if schedule is not None else AdaptiveActivation(0.3)
        self.tick_period = float(tick_period)
        self.purge_at_active = purge_at_active
        self.stop_network_on_election = stop_network_on_election
        self.state = NodeState.IDLE
        self.d = 1
        self.messages_received = 0
        self.messages_forwarded = 0
        self.times_activated = 0
        self.times_knocked_out = 0

    # No bind() override: the old program did not publish externally bound
    # counters -- every count below goes through the string-keyed collector.

    def on_start(self) -> None:
        self.state = NodeState.IDLE
        self.d = 1
        self.trace("state", state=str(self.state), d=self.d)
        node = self._require_node()
        self._tick_process = LegacyTickProcess(
            node.network.simulator,
            node.clock,
            self._on_tick,
            local_period=self.tick_period,
        )

    def _on_tick(self, tick_index: int) -> Optional[bool]:
        self.status.ticks += 1
        self.metrics.increment("ticks")
        if self.state is NodeState.PASSIVE or self.state is NodeState.LEADER:
            return False
        if self.state is not NodeState.IDLE:
            return None
        probability = self.schedule.probability(self.d)
        if self.rng.random() < probability:
            self._activate()
        return None

    def _activate(self) -> None:
        self.state = NodeState.ACTIVE
        self.times_activated += 1
        self.status.activations += 1
        self.metrics.increment("activations")
        self.trace("state", state=str(self.state), d=self.d)
        self.send(RING_PORT, HopMessage(hop=1))

    def on_receive(self, payload: HopMessage, port: int) -> None:
        if not isinstance(payload, HopMessage):
            raise TypeError(f"unexpected payload {payload!r}")
        self.messages_received += 1
        self.d = max(self.d, payload.hop)
        if self.state is NodeState.IDLE:
            self._receive_while_idle(payload)
        elif self.state is NodeState.PASSIVE:
            self._receive_while_passive(payload)
        elif self.state is NodeState.ACTIVE:
            self._receive_while_active(payload)
        else:
            self.trace("purge", hop=payload.hop)

    def _forward(self, payload: HopMessage, knocked_out_idle: bool) -> None:
        new_hop = self.d + 1
        ring_size = self.n or 0
        if ring_size and new_hop > ring_size:
            self.status.hop_overflows += 1
            self.metrics.increment("hop_overflows")
        forwarded = payload.forwarded(new_hop, knocked_out_idle)
        self.messages_forwarded += 1
        if knocked_out_idle:
            self.status.knockouts += 1
            self.metrics.increment("knockout_messages")
        self.send(RING_PORT, forwarded)

    def _receive_while_idle(self, payload: HopMessage) -> None:
        self.state = NodeState.PASSIVE
        self.times_knocked_out += 1
        self.trace("state", state=str(self.state), d=self.d, hop=payload.hop)
        self.stop_ticks()
        self._forward(payload, knocked_out_idle=True)

    def _receive_while_passive(self, payload: HopMessage) -> None:
        self._forward(payload, knocked_out_idle=False)

    def _receive_while_active(self, payload: HopMessage) -> None:
        ring_size = self.n
        if ring_size is not None and payload.hop == ring_size:
            self._become_leader(payload)
            return
        self.state = NodeState.IDLE
        self.trace("state", state=str(self.state), d=self.d, hop=payload.hop)
        if not self.purge_at_active:
            self._forward(payload, knocked_out_idle=False)

    def _become_leader(self, payload: HopMessage) -> None:
        node = self._require_node()
        self.state = NodeState.LEADER
        self.stop_ticks()
        self.status.leader_uid = node.uid
        self.status.election_time = self.now
        self.status.leaders_elected += 1
        self.metrics.increment("leaders_elected")
        self.metrics.mark("leader_elected", self.now)
        self.trace("decide", state=str(self.state), hop=payload.hop)
        if self.stop_network_on_election:
            node.network.request_stop()

    def result(self) -> NodeState:
        return self.state

    @property
    def is_leader(self) -> bool:
        return self.state is NodeState.LEADER


def legacy_build_election_network(
    n: int,
    *,
    a0: float = 0.3,
    delay: Optional[DelayDistribution] = None,
    seed: int = 0,
    schedule: Optional[ActivationSchedule] = None,
    fifo: bool = False,
    purge_at_active: bool = True,
    tick_period: float = 1.0,
    enable_trace: bool = False,
    batch_sampling: bool = False,
) -> tuple:
    """The legacy counterpart of ``build_election_network`` (same config)."""
    delay_model = delay if delay is not None else ExponentialDelay(mean=1.0)
    schedule = schedule if schedule is not None else AdaptiveActivation(a0)
    status = ElectionStatus()
    config = NetworkConfig(
        topology=unidirectional_ring(n),
        delay_model=delay_model,
        seed=seed,
        fifo=fifo,
        size_known=True,
        enable_trace=enable_trace,
        batch_sampling=batch_sampling,
    )
    mean = delay_model.mean()
    ABEModel(expected_delay_bound=mean if mean > 0 else 1.0).validate_config(config)
    network = Network(
        config,
        lambda uid: LegacyAbeElectionProgram(
            status=status,
            schedule=schedule,
            tick_period=tick_period,
            purge_at_active=purge_at_active,
        ),
    )
    return network, status


def legacy_run_election(
    n: int,
    *,
    a0: float = 0.3,
    seed: int = 0,
    max_events: Optional[int] = None,
    max_time: Optional[float] = None,
    **build_kwargs,
) -> ElectionResult:
    """Run one election on the legacy core; returns the usual result record."""
    network, status = legacy_build_election_network(n, a0=a0, seed=seed, **build_kwargs)
    if max_events is None:
        max_events = _default_max_events(n)
    network.stop_when(lambda: status.decided)
    network.run(until=max_time, max_events=max_events)
    return ElectionResult(
        n=network.n,
        elected=status.decided,
        leader_uid=status.leader_uid,
        election_time=status.election_time,
        messages_total=network.messages_sent(),
        knockout_messages=status.knockouts,
        activations=status.activations,
        ticks=status.ticks,
        hop_overflows=status.hop_overflows,
        events_processed=network.simulator.events_processed,
        seed=seed,
        a0=a0,
        leaders_elected=status.leaders_elected,
    )
