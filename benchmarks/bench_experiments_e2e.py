"""End-to-end experiment-suite benchmark: old defaults vs fast defaults.

Everything earlier benchmarks measure in isolation (engine, message path,
election core, sampling layer) lands here as one number: the wall clock of a
reduced E1 + E3 workload run through the *experiment harness itself*, exactly
as ``scripts/run_all_experiments.py`` would run it.

Two modes are compared:

``legacy``
    The pre-PR-4 defaults, reproduced via ``election_overrides``:
    per-message delay sampling (``batch_sampling=False``), one heap entry per
    node and tick (``batch_ticks=False``), and the fixed Monte-Carlo trial
    count.
``fast``
    The shipped defaults (block-sampled delays, per-instant tick bucketing,
    pooled hop messages) plus adaptive stopping
    (:class:`~repro.experiments.runner.AdaptiveStopping`): each sweep point
    stops as soon as its target-metric mean is known to within
    ``CI_TOLERANCE`` at 95% confidence, bounded by the same trial budget the
    legacy mode always spends.

The two modes answer the same experimental question to the documented
precision; the fast mode just stops paying once the answer is known.  The
speedup is gated at >= ``E2E_SPEEDUP_GATE`` (default 2x, the ISSUE 4
acceptance target; CI sets it lower because shared runners are noisy).

Run as pytest (``pytest benchmarks/bench_experiments_e2e.py
--benchmark-disable``, honours ``E2E_QUICK=1``) or as a script
(``python benchmarks/bench_experiments_e2e.py [--quick] [--repeats N]``),
which prints the measurement and exits non-zero below the gate -- the form CI
uses.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from pathlib import Path

if __name__ == "__main__":  # script mode: make src/ importable like conftest does
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.experiments import e1_message_complexity, e3_activation_parameter
from repro.experiments.runner import AdaptiveStopping

#: Relative CI half-width the fast mode runs each sweep point down to.  A
#: quick-look precision ("the mean is known to within 25%"): loose enough to
#: stop well before the legacy budget, tight enough that every E1/E3 finding
#: (growth order, trade-off direction) is stable across re-runs.
CI_TOLERANCE = 0.25

#: Pre-PR-4 behaviour, spelled explicitly.
LEGACY_OVERRIDES = {"batch_sampling": False, "batch_ticks": False}

#: Reduced E1 + E3 workloads.  ``trials`` is both the legacy mode's fixed
#: count and the fast mode's budget (``max_trials``), so the comparison can
#: only win by stopping early, never by sampling a cheaper configuration.
FULL_WORKLOAD = {
    "sizes": (16, 32, 48),
    "e3_n": 32,
    "multipliers": (0.5, 1.0, 2.0),
    "trials": 40,
}
QUICK_WORKLOAD = {
    "sizes": (8, 16, 24),
    "e3_n": 16,
    "multipliers": (0.5, 1.0, 2.0),
    "trials": 32,
}

E1_SEED = 11
E3_SEED = 33


def _workload(quick: bool) -> dict:
    return QUICK_WORKLOAD if quick else FULL_WORKLOAD


def run_legacy(quick: bool = False) -> float:
    """Seconds for the reduced E1+E3 suite under the pre-PR-4 defaults."""
    w = _workload(quick)
    started = time.perf_counter()
    e1_message_complexity.run(
        sizes=w["sizes"],
        trials=w["trials"],
        base_seed=E1_SEED,
        election_overrides=dict(LEGACY_OVERRIDES),
    )
    e3_activation_parameter.run(
        n=w["e3_n"],
        multipliers=w["multipliers"],
        trials=w["trials"],
        base_seed=E3_SEED,
        election_overrides=dict(LEGACY_OVERRIDES),
    )
    return time.perf_counter() - started


def run_fast(quick: bool = False) -> tuple:
    """(seconds, e1_trials_executed, e3_trials_executed) under fast defaults
    plus adaptive stopping."""
    w = _workload(quick)
    rule = AdaptiveStopping(ci_tolerance=CI_TOLERANCE, min_trials=8, batch_size=8)
    started = time.perf_counter()
    e1_result = e1_message_complexity.run(
        sizes=w["sizes"], trials=w["trials"], base_seed=E1_SEED, adaptive=rule
    )
    e3_result = e3_activation_parameter.run(
        n=w["e3_n"],
        multipliers=w["multipliers"],
        trials=w["trials"],
        base_seed=E3_SEED,
        adaptive=rule,
    )
    elapsed = time.perf_counter() - started
    return (
        elapsed,
        e1_result.parameters["trials_executed"],
        e3_result.parameters["trials_executed"],
    )


def measure(quick: bool = False, repeats: int = 3) -> dict:
    """Interleaved best-of-``repeats`` measurement of both modes."""
    legacy_runs = []
    fast_runs = []
    e1_trials = e3_trials = None
    for _ in range(repeats):
        legacy_runs.append(run_legacy(quick))
        fast_seconds, e1_trials, e3_trials = run_fast(quick)
        fast_runs.append(fast_seconds)
    legacy_seconds = min(legacy_runs)
    fast_seconds = min(fast_runs)
    w = _workload(quick)
    budget = w["trials"] * (len(w["sizes"]) + len(w["multipliers"]))
    return {
        "workload": "quick" if quick else "full",
        "e1_sizes": list(w["sizes"]),
        "e3_n": w["e3_n"],
        "e3_multipliers": list(w["multipliers"]),
        "trial_budget_per_point": w["trials"],
        "ci_tolerance": CI_TOLERANCE,
        "legacy_seconds": round(legacy_seconds, 3),
        "fast_seconds": round(fast_seconds, 3),
        "speedup": round(legacy_seconds / fast_seconds, 2),
        "legacy_trials_total": budget,
        "fast_trials_total": int(sum(e1_trials) + sum(e3_trials)),
        "e1_trials_executed": list(e1_trials),
        "e3_trials_executed": list(e3_trials),
    }


def _gate(quick: bool = False) -> float:
    # The full workload carries the ISSUE 4 acceptance target (2x).  The
    # quick workload is construction-dominated and has structurally less
    # headroom, so its default gate is proportionally lower; CI additionally
    # overrides via E2E_SPEEDUP_GATE because shared runners are noisy.
    default = "1.3" if quick else "2.0"
    return float(os.environ.get("E2E_SPEEDUP_GATE", default))


def _quick_from_env() -> bool:
    return os.environ.get("E2E_QUICK", "") not in ("", "0")


# ----------------------------------------------------------------- pytest API


def test_bench_adaptive_answers_match_the_fixed_budget():
    """The fast mode must answer the same question: its per-point means lie
    inside the legacy mode's 95% confidence intervals (same seeds, so the
    adaptive results are a prefix of the fixed-budget sample)."""
    w = _workload(True)
    rule = AdaptiveStopping(ci_tolerance=CI_TOLERANCE, min_trials=8, batch_size=8)
    fast = e1_message_complexity.run(
        sizes=w["sizes"], trials=w["trials"], base_seed=E1_SEED, adaptive=rule
    )
    full = e1_message_complexity.run(
        sizes=w["sizes"], trials=w["trials"], base_seed=E1_SEED
    )
    for fast_row, full_row in zip(fast.table(), full.table()):
        lower = full_row["messages_mean"] - full_row["messages_ci95"]
        upper = full_row["messages_mean"] + full_row["messages_ci95"]
        assert lower <= fast_row["messages_mean"] <= upper, (
            f"n={fast_row['n']}: adaptive mean {fast_row['messages_mean']} "
            f"outside the fixed-budget CI [{lower}, {upper}]"
        )


def test_bench_experiments_e2e_throughput(benchmark):
    quick = _quick_from_env()
    result = benchmark.pedantic(lambda: run_fast(quick)[0], rounds=1, iterations=1)
    print(f"\nexperiments e2e (fast mode): {result:.2f}s")
    assert result > 0


def test_bench_experiments_e2e_speedup():
    quick = _quick_from_env()
    gate = _gate(quick)
    report = measure(quick=quick, repeats=3)
    print(
        f"\nexperiments e2e: legacy {report['legacy_seconds']}s, "
        f"fast {report['fast_seconds']}s -> {report['speedup']}x (gate {gate}x); "
        f"trials {report['legacy_trials_total']} -> {report['fast_trials_total']}"
    )
    assert report["speedup"] >= gate, (
        f"experiment suite end-to-end speedup regressed: {report['speedup']}x "
        f"(must stay >= {gate}x)"
    )


# ----------------------------------------------------------------- script API


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="CI-sized workload")
    parser.add_argument("--repeats", type=int, default=3, help="best-of repeats")
    args = parser.parse_args()
    report = measure(quick=args.quick, repeats=args.repeats)
    for key, value in report.items():
        print(f"{key}: {value}")
    gate = _gate(args.quick)
    if report["speedup"] < gate:
        print(f"FAIL: speedup {report['speedup']}x below the {gate}x gate")
        return 1
    print(f"OK: speedup {report['speedup']}x >= {gate}x gate")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
