"""Benchmark / regeneration of experiment E6 (comparison with baselines)."""

from __future__ import annotations

from repro.experiments import e6_baseline_comparison


def test_bench_e6_baseline_comparison(experiment_runner):
    result = experiment_runner(
        lambda: e6_baseline_comparison.run(sizes=(8, 16, 32, 64), trials=10, base_seed=66)
    )
    # The ABE election is the cheapest algorithm at the largest ring size and
    # its growth fits a linear shape, in contrast with the baselines.
    assert result.finding("abe_cheapest_at_max_n")
    assert result.finding("abe_best_fit") in ("n", "n log n")
