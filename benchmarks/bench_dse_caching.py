"""Benchmark of the DSE caching story: warm searches cost lookups, not trials.

Runs one small successive-halving search twice against the same result
store.  The cold pass executes every rung's new seeds; the warm pass must
execute **zero** trials (asserted -- this is the EPSO-style incremental-
search claim, not just a speed number) and finish measurably faster, since
all it does is fingerprint specs and read sqlite rows.

``test_bench_dse_warm_speedup`` gates the warm/cold wall-clock ratio at
>= 2x by default (``DSE_SPEEDUP_GATE`` overrides; shared CI runners are
noisy, and the cold pass here is deliberately small).

Run with ``pytest benchmarks/bench_dse_caching.py --benchmark-disable``.
"""

from __future__ import annotations

import json
import os
import time

from repro.dse import SearchSpec, run_search
from repro.store.result_store import ResultStore

SEARCH = SearchSpec.from_dict(
    {
        "name": "bench-dse",
        "metric": "election_time",
        "goal": "min",
        "seed": 31,
        "trials": 4,
        "space": {
            "base": {
                "algorithm": "abe-election",
                "topology": {"kind": "uniring", "params": {"n": 8}},
                "seed": 9,
                "trials": 4,
            },
            "dimensions": [
                {"name": "a0", "kind": "log-uniform", "field": "a0", "low": 0.01, "high": 0.2},
                {
                    "name": "delay",
                    "kind": "categorical",
                    "field": "delay",
                    "choices": [None, {"kind": "uniform", "params": {"low": 0.0, "high": 2.0}}],
                },
            ],
        },
        "strategy": {
            "kind": "successive-halving",
            "params": {"candidates": 8, "eta": 2, "base_trials": 2, "rungs": 3},
        },
    }
)


def _timed_search(store_path: str):
    started = time.perf_counter()
    with ResultStore(store_path) as store:
        report = run_search(SEARCH, store)
    return report, time.perf_counter() - started


def test_bench_dse_warm_zero_trials(tmp_path):
    store_path = os.path.join(str(tmp_path), "store.sqlite")
    cold, _ = _timed_search(store_path)
    warm, _ = _timed_search(store_path)
    assert cold.trials_executed > 0
    assert warm.trials_executed == 0
    assert warm.hits == warm.lookups > 0
    cold_groups = json.dumps([g.to_dict() for g in cold.groups], sort_keys=True)
    warm_groups = json.dumps([g.to_dict() for g in warm.groups], sort_keys=True)
    assert cold_groups == warm_groups


def test_bench_dse_warm_speedup(tmp_path):
    gate = float(os.environ.get("DSE_SPEEDUP_GATE", "2.0"))
    store_path = os.path.join(str(tmp_path), "store.sqlite")
    _, cold_elapsed = _timed_search(store_path)
    _, warm_elapsed = _timed_search(store_path)
    speedup = cold_elapsed / warm_elapsed
    print(
        f"\ndse caching: cold {cold_elapsed * 1000:.1f}ms, "
        f"warm {warm_elapsed * 1000:.1f}ms, speedup {speedup:.1f}x (gate {gate}x)"
    )
    assert speedup >= gate, (
        f"warm search only {speedup:.2f}x faster than cold (gate {gate}x)"
    )
