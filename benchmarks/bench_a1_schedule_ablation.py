"""Benchmark / regeneration of ablation A1 (adaptive vs constant schedule)."""

from __future__ import annotations

from repro.experiments import a1_schedule_ablation


def test_bench_a1_schedule_ablation(experiment_runner):
    result = experiment_runner(
        lambda: a1_schedule_ablation.run(sizes=(8, 16, 32), trials=20, base_seed=101)
    )
    # The paper's adaptive schedule must beat the constant schedule on time,
    # otherwise the "constant overall wake-up pressure" mechanism adds nothing.
    assert result.finding("constant_schedule_slower")
    assert result.finding("worst_time_ratio_constant_over_adaptive") > 1.0
