"""Microbenchmark of the columnar election engine (ticks/sec vs object core).

Same workload as :mod:`bench_election_core` -- a small base activation
parameter stretches the idle-ticking phase, so throughput is dominated by
the per-round coin machinery the vectorization replaces: one uniform block
per activation round compared against the probability column instead of one
Python-level draw per idle node per tick.

``test_bench_vector_core_speedup_vs_object`` gates the vector core at
>= 3x the object core's default-path ticks/sec (``VECTOR_SPEEDUP_GATE``
overrides; CI sets it lower because shared runners are noisy).  The object
side runs its *fast* defaults (``batch_sampling``/``batch_ticks`` on), so
the gate measures the columnar engine against the best object-core
configuration, not a strawman.

The two engines draw from different random streams by design (see the
stream-migration note in ``tests/harness/differential.py``), so unlike the
legacy-replica benches there is no bit-identical precondition; the semantic
equivalence is covered by ``tests/test_property_vector_core.py``.

Run with ``pytest benchmarks/bench_vector_core.py --benchmark-disable``.
"""

from __future__ import annotations

import os
import time

from repro.core.runner import run_election
from repro.core.vector_core import run_vector_election

#: Same tuning as bench_election_core: a few tens of thousands of ticks per
#: run -- enough to dwarf construction, small enough for CI.
RING_SIZE = 64
A0 = 0.02
SEEDS = (1, 2, 3)


def _ticks_per_second(runner, **kwargs) -> float:
    ticks = 0
    elapsed = 0.0
    for seed in SEEDS:
        started = time.perf_counter()
        result = runner(RING_SIZE, a0=A0, seed=seed, **kwargs)
        elapsed += time.perf_counter() - started
        assert result.elected
        ticks += result.ticks
    return ticks / elapsed


def vector_ticks_per_second() -> float:
    return _ticks_per_second(run_vector_election)


def object_ticks_per_second() -> float:
    # Library defaults = the fast object path (batched sampling and ticks).
    return _ticks_per_second(run_election)


def test_bench_vector_core_invariants():
    """No timing is meaningful unless the engine elects correctly."""
    for seed in SEEDS:
        result = run_vector_election(RING_SIZE, a0=A0, seed=seed)
        assert result.elected
        assert result.leaders_elected == 1
        assert result.knockout_messages == RING_SIZE - 1
        assert result == run_vector_election(RING_SIZE, a0=A0, seed=seed)


def test_bench_vector_core_throughput(benchmark):
    result = benchmark.pedantic(vector_ticks_per_second, rounds=3, iterations=1)
    print(f"\nvector core: {result:,.0f} ticks/sec")
    assert result > 0


def test_bench_vector_core_speedup_vs_object():
    # Interleave the measurements so cache/frequency drift hits both equally.
    # The gate defaults to the ISSUE's 3x acceptance target; CI sets
    # VECTOR_SPEEDUP_GATE lower because shared runners are noisy.
    gate = float(os.environ.get("VECTOR_SPEEDUP_GATE", "3.0"))
    vector = []
    obj = []
    for _ in range(3):
        vector.append(vector_ticks_per_second())
        obj.append(object_ticks_per_second())
    speedup = max(vector) / max(obj)
    print(
        f"\nvector {max(vector):,.0f} ticks/sec vs object {max(obj):,.0f} "
        f"ticks/sec -> {speedup:.2f}x (gate {gate}x)"
    )
    assert speedup >= gate, (
        f"vector core regressed: only {speedup:.2f}x over the object core "
        f"(must stay >= {gate}x)"
    )
