"""Microbenchmark of the per-message hot path (tracing disabled).

A token circulates on a small ring: every delivery triggers exactly one
``transmit``, so the workload is pure ``transmit -> schedule -> _deliver ->
on_receive`` cycles -- the path every election message takes.  The same
workload runs on the real :class:`~repro.network.network.Network` (pooled
envelopes, handle-free ``schedule_call_at`` delivery, null tracer, plain
integer counters) and on the pre-optimization replica in
:mod:`legacy_message_path` (per-message envelope/lambda/Event/handle
allocations, disabled-but-called tracer with kwargs dicts, string-keyed
metric increments).

``test_bench_message_path_speedup_vs_legacy`` asserts the optimized path is
>= 2x the legacy replica's messages/sec (``MESSAGE_PATH_SPEEDUP_GATE``
overrides the gate; CI sets it lower because shared runners are noisy), so a
message-layer regression fails the benchmark suite rather than silently
slowing every experiment.

Run with ``pytest benchmarks/bench_message_path.py --benchmark-disable`` (the
file is not collected by the tier-1 suite, which only picks up ``test_*.py``
under ``tests/``).
"""

from __future__ import annotations

import os
import time
from typing import Any

from legacy_message_path import LegacyMessageNetwork

from repro.network.delays import ConstantDelay
from repro.network.network import Network, NetworkConfig
from repro.network.node import NodeProgram
from repro.network.topology import unidirectional_ring

#: Forwarded messages per measured run; enough to dwarf setup, small enough
#: to keep the suite laptop-friendly.
MESSAGES = 40_000
RING_SIZE = 4


class RelayProgram(NodeProgram):
    """Forwards every received token until the shared budget is exhausted."""

    def __init__(self, budget: dict, starter: bool = False) -> None:
        super().__init__()
        self.budget = budget
        self.starter = starter

    def on_start(self) -> None:
        if self.starter:
            self.send(0, "token")

    def on_receive(self, payload: Any, port: int) -> None:
        budget = self.budget
        if budget["remaining"] > 0:
            budget["remaining"] -= 1
            self.send(0, payload)


def optimized_messages_per_second(n_messages: int = MESSAGES) -> float:
    """Throughput of the relay workload on the real network stack."""
    budget = {"remaining": n_messages - 1}
    config = NetworkConfig(
        topology=unidirectional_ring(RING_SIZE),
        delay_model=ConstantDelay(1.0),
        seed=0,
        enable_trace=False,
    )
    network = Network(
        config, lambda uid: RelayProgram(budget, starter=(uid == 0))
    )
    started = time.perf_counter()
    network.run()
    elapsed = time.perf_counter() - started
    assert network.messages_sent() == n_messages, network.messages_sent()
    return n_messages / elapsed


def legacy_messages_per_second(n_messages: int = MESSAGES) -> float:
    """Throughput of the identical workload on the pre-optimization replica."""
    network = LegacyMessageNetwork(RING_SIZE, ConstantDelay(1.0), seed=0)
    started = time.perf_counter()
    sent = network.run_messages(n_messages)
    elapsed = time.perf_counter() - started
    assert sent == n_messages, sent
    return n_messages / elapsed


def test_bench_message_path_throughput(benchmark):
    result = benchmark.pedantic(optimized_messages_per_second, rounds=3, iterations=1)
    print(f"\noptimized message path: {result:,.0f} messages/sec")
    assert result > 0


def test_bench_message_path_speedup_vs_legacy():
    # Interleave the measurements so cache/frequency drift hits both equally.
    # The gate defaults to the documented 2x target; CI sets
    # MESSAGE_PATH_SPEEDUP_GATE lower because shared runners are noisy.
    gate = float(os.environ.get("MESSAGE_PATH_SPEEDUP_GATE", "2.0"))
    optimized = []
    legacy = []
    for _ in range(3):
        optimized.append(optimized_messages_per_second())
        legacy.append(legacy_messages_per_second())
    speedup = max(optimized) / max(legacy)
    print(
        f"\noptimized {max(optimized):,.0f} messages/sec vs "
        f"legacy {max(legacy):,.0f} messages/sec -> {speedup:.2f}x (gate {gate}x)"
    )
    assert speedup >= gate, (
        f"message hot path regressed: only {speedup:.2f}x over the legacy path "
        f"(must stay >= {gate}x)"
    )


def test_bench_envelope_pool_engages():
    """The relay workload must reach envelope-pool steady state (no leak of
    per-message allocations back into the path)."""
    budget = {"remaining": 499}
    config = NetworkConfig(
        topology=unidirectional_ring(RING_SIZE),
        delay_model=ConstantDelay(1.0),
        seed=0,
        enable_trace=False,
    )
    network = Network(config, lambda uid: RelayProgram(budget, starter=(uid == 0)))
    network.run()
    assert any(channel._envelope_pool for channel in network.channels)
