"""Benchmark / regeneration of experiment E7 (delay-family robustness)."""

from __future__ import annotations

from repro.experiments import e7_delay_robustness


def test_bench_e7_delay_robustness(experiment_runner):
    result = experiment_runner(
        lambda: e7_delay_robustness.run(n=32, trials=12, base_seed=77)
    )
    assert result.finding("all_runs_elected")
    # Identical expected delay => comparable cost, whatever the delay shape.
    assert result.finding("all_families_within_3x_messages")
    assert result.finding("all_families_within_3x_time")
