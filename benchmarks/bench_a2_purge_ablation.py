"""Benchmark / regeneration of ablation A2 (purging at active nodes)."""

from __future__ import annotations

from repro.experiments import a2_purge_ablation


def test_bench_a2_purge_ablation(experiment_runner):
    result = experiment_runner(
        lambda: a2_purge_ablation.run(sizes=(8, 16), trials=10, base_seed=202)
    )
    # The paper's variant is always safe and live ...
    assert result.finding("paper_variant_always_terminates")
    assert result.finding("paper_variant_always_single_leader")
    # ... and removing the purge rule visibly damages the algorithm.
    assert result.finding("no_purge_breaks_something")
