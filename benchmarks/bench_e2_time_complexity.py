"""Benchmark / regeneration of experiment E2 (time complexity is linear)."""

from __future__ import annotations

from repro.experiments import e2_time_complexity


def test_bench_e2_time_complexity(experiment_runner):
    result = experiment_runner(
        lambda: e2_time_complexity.run(sizes=(8, 16, 32, 64, 96), trials=15, base_seed=22)
    )
    assert result.finding("all_runs_elected"), "every trial must elect a leader"
    # Linear time: time per node stays bounded across the sweep and the fit
    # prefers a (near-)linear shape.
    assert result.finding("per_node_spread") < 3.0
    assert result.finding("best_growth_order") in ("n", "n log n")
