"""Shared helpers for the benchmark suite.

Every benchmark regenerates one experiment of EXPERIMENTS.md: it runs the
experiment harness once (pytest-benchmark measures that single run), prints
the resulting table -- the same rows EXPERIMENTS.md records -- and asserts the
experiment's key findings so a regression in the reproduced claim fails the
benchmark run, not just changes a number silently.

Benchmarks use reduced trial counts / sizes compared to the EXPERIMENTS.md
defaults so that ``pytest benchmarks/ --benchmark-only`` finishes in minutes
on a laptop; the experiment modules' default parameters regenerate the full
tables.
"""

from __future__ import annotations

import pytest

from repro.experiments.reporting import render_experiment
from repro.experiments.results import ExperimentResult


def run_experiment_once(benchmark, run_callable) -> ExperimentResult:
    """Run an experiment exactly once under pytest-benchmark and print it."""
    result = benchmark.pedantic(run_callable, rounds=1, iterations=1)
    print()
    print(render_experiment(result))
    return result


@pytest.fixture
def experiment_runner(benchmark):
    """Fixture exposing :func:`run_experiment_once` bound to the benchmark."""

    def runner(run_callable) -> ExperimentResult:
        return run_experiment_once(benchmark, run_callable)

    return runner
