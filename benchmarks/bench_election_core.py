"""Microbenchmark of the election-core hot loop (ticks/sec).

A small base activation parameter stretches the idle-ticking phase, so the
workload is dominated by exactly what the election-core refactor touched:
the per-tick coin flip (cached probability, prebound rng), the per-tick
counter bookkeeping (plain integers vs string-keyed metric increments) and
tick (re)scheduling (event reuse vs a fresh Event + handle per tick).  The
same elections run on the live core and on the faithful pre-refactor replica
in :mod:`legacy_election_core`; both sides are asserted bit-identical before
any timing is trusted.

``test_bench_election_core_speedup_vs_legacy`` gates the live core at
>= 1.5x the legacy replica's ticks/sec (``ELECTION_CORE_SPEEDUP_GATE``
overrides; CI sets it lower because shared runners are noisy).

``test_bench_batch_ticks_faster_than_per_node`` additionally checks that the
opt-in ``batch_ticks`` mode (one heap entry per activation round) does not
regress below the per-node layout on the same workload.

Run with ``pytest benchmarks/bench_election_core.py --benchmark-disable``.
"""

from __future__ import annotations

import os
import time

from legacy_election_core import legacy_run_election

from repro.core.runner import run_election

#: Ring size / activation parameter tuned so one run is a few tens of
#: thousands of ticks: enough to dwarf construction, small enough for CI.
RING_SIZE = 64
A0 = 0.02
SEEDS = (1, 2, 3)


def _ticks_per_second(runner, **kwargs) -> float:
    ticks = 0
    elapsed = 0.0
    for seed in SEEDS:
        started = time.perf_counter()
        result = runner(RING_SIZE, a0=A0, seed=seed, **kwargs)
        elapsed += time.perf_counter() - started
        assert result.elected
        ticks += result.ticks
    return ticks / elapsed


def live_ticks_per_second(**kwargs) -> float:
    # The legacy replica predates the fast defaults: measure the live core in
    # the replica's modes unless a caller opts a batch mode back in, so the
    # speedup isolates the election-core refactor itself.
    kwargs.setdefault("batch_sampling", False)
    kwargs.setdefault("batch_ticks", False)
    return _ticks_per_second(run_election, **kwargs)


def legacy_ticks_per_second() -> float:
    return _ticks_per_second(legacy_run_election)


def test_bench_election_core_bit_identical_to_legacy():
    """No timing is meaningful unless the two cores simulate identically."""
    for seed in SEEDS:
        live = run_election(
            RING_SIZE, a0=A0, seed=seed, batch_sampling=False, batch_ticks=False
        )
        legacy = legacy_run_election(RING_SIZE, a0=A0, seed=seed)
        assert live == legacy, f"live core diverged from legacy replica at seed {seed}"


def test_bench_election_core_throughput(benchmark):
    result = benchmark.pedantic(live_ticks_per_second, rounds=3, iterations=1)
    print(f"\nelection core: {result:,.0f} ticks/sec")
    assert result > 0


def test_bench_election_core_speedup_vs_legacy():
    # Interleave the measurements so cache/frequency drift hits both equally.
    # The gate defaults to the ISSUE's 1.5x acceptance target; CI sets
    # ELECTION_CORE_SPEEDUP_GATE lower because shared runners are noisy.
    gate = float(os.environ.get("ELECTION_CORE_SPEEDUP_GATE", "1.5"))
    live = []
    legacy = []
    for _ in range(3):
        live.append(live_ticks_per_second())
        legacy.append(legacy_ticks_per_second())
    speedup = max(live) / max(legacy)
    print(
        f"\nlive {max(live):,.0f} ticks/sec vs legacy {max(legacy):,.0f} ticks/sec "
        f"-> {speedup:.2f}x (gate {gate}x)"
    )
    assert speedup >= gate, (
        f"election core regressed: only {speedup:.2f}x over the legacy replica "
        f"(must stay >= {gate}x)"
    )


def test_bench_batch_ticks_faster_than_per_node():
    """The shared round driver must not be slower than per-node ticking."""
    per_node = []
    batched = []
    for _ in range(3):
        per_node.append(live_ticks_per_second())
        batched.append(live_ticks_per_second(batch_ticks=True))
    ratio = max(batched) / max(per_node)
    print(f"\nbatch_ticks: {ratio:.2f}x vs per-node tick processes")
    # Generous floor: the win is modest on small rings, but a real
    # regression (driver overhead exceeding the saved heap traffic) fails.
    assert ratio >= 0.9, f"batch_ticks mode is {ratio:.2f}x of per-node ticking"
