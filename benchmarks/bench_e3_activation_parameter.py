"""Benchmark / regeneration of experiment E3 (the A0 trade-off)."""

from __future__ import annotations

from repro.experiments import e3_activation_parameter


def test_bench_e3_activation_parameter(experiment_runner):
    result = experiment_runner(
        lambda: e3_activation_parameter.run(n=32, trials=12, base_seed=33)
    )
    # Larger A0 floods the ring with candidates, so messages must increase.
    assert result.finding("messages_increase_with_a0")
    # The recommended A0 (one expected activation per traversal) is close to
    # the empirical sweet spot of the combined cost.
    assert result.finding("best_multiplier_at_recommended_scale")
    assert result.finding("recommended_within_4x_of_best")
