"""Benchmark / regeneration of experiment E8 (clock-drift robustness)."""

from __future__ import annotations

from repro.experiments import e8_clock_drift


def test_bench_e8_clock_drift(experiment_runner):
    result = experiment_runner(
        lambda: e8_clock_drift.run(n=32, trials=12, base_seed=88)
    )
    # Definition 1(2) is enough: correctness survives drift within the bounds.
    assert result.finding("always_elected")
    assert result.finding("always_unique_leader")
    assert result.finding("degradation_within_3x")
