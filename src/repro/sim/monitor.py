"""Metric collection for simulated executions.

The experiment harness needs to count messages, measure completion times and
record time series (e.g. number of active nodes over time) without polluting
algorithm code with bookkeeping.  :class:`MetricsCollector` is a small
container of named :class:`Counter` and :class:`TimeSeries` objects that
algorithms and network components write into; experiments read it afterwards.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Tuple

__all__ = ["Counter", "TimeSeries", "MetricsCollector"]


@dataclass
class Counter:
    """A monotonically increasing named counter."""

    name: str
    value: float = 0.0

    def increment(self, amount: float = 1.0) -> None:
        """Add ``amount`` (default 1) to the counter.

        Raises
        ------
        ValueError
            If ``amount`` is negative; counters are monotone by contract.
        """
        if amount < 0:
            raise ValueError(f"counter increments must be non-negative, got {amount}")
        self.value += amount

    def __int__(self) -> int:
        return int(self.value)

    def __float__(self) -> float:
        return float(self.value)


@dataclass
class TimeSeries:
    """A sequence of ``(time, value)`` samples recorded during a run."""

    name: str
    samples: List[Tuple[float, float]] = field(default_factory=list)

    def record(self, time: float, value: float) -> None:
        """Append a sample.  Times need not be distinct but must not decrease."""
        if self.samples and time < self.samples[-1][0]:
            raise ValueError(
                f"time series '{self.name}' received out-of-order sample at {time}"
            )
        self.samples.append((time, value))

    def times(self) -> List[float]:
        """All sample times, in order."""
        return [t for t, _ in self.samples]

    def values(self) -> List[float]:
        """All sample values, in order."""
        return [v for _, v in self.samples]

    def last(self) -> Optional[Tuple[float, float]]:
        """The most recent sample, or ``None`` if empty."""
        return self.samples[-1] if self.samples else None

    def value_at(self, time: float) -> Optional[float]:
        """The last recorded value at or before ``time`` (step interpolation)."""
        best: Optional[float] = None
        for t, v in self.samples:
            if t <= time:
                best = v
            else:
                break
        return best

    def __len__(self) -> int:
        return len(self.samples)


class MetricsCollector:
    """Registry of named counters and time series for one simulated execution."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._series: Dict[str, TimeSeries] = {}
        self._marks: Dict[str, float] = {}
        self._external: Dict[str, Callable[[], float]] = {}
        # Summed external bindings: name -> [(source, getter), ...].  The
        # aggregate getter for each name also lives in ``_external`` so the
        # read paths below treat both binding styles uniformly.
        self._external_sums: Dict[str, List[Tuple[object, Callable[[], float]]]] = {}

    # --------------------------------------------------------------- counters

    def counter(self, name: str) -> Counter:
        """Return the counter called ``name``, creating it at zero if needed."""
        if name in self._external:
            raise ValueError(
                f"counter {name!r} is externally backed and cannot be written "
                "through the collector"
            )
        counter = self._counters.get(name)
        if counter is None:
            counter = Counter(name)
            self._counters[name] = counter
        return counter

    def increment(self, name: str, amount: float = 1.0) -> None:
        """Shorthand for ``collector.counter(name).increment(amount)``."""
        self.counter(name).increment(amount)

    def bind_external(self, name: str, getter: Callable[[], float]) -> None:
        """Expose an externally maintained monotone counter under ``name``.

        The message hot path keeps its counts as plain integer attributes
        (:class:`~repro.network.network.Network` increments them with a single
        ``+= 1``); binding them here keeps :meth:`count`, :meth:`counters` and
        :meth:`summary` working unchanged for readers.  A bound name becomes
        read-only through the collector -- incrementing it raises, because the
        write path lives elsewhere.
        """
        if name in self._counters:
            raise ValueError(
                f"counter {name!r} already has collector-owned state; bind it "
                "before the first increment"
            )
        if name in self._external_sums:
            raise ValueError(
                f"counter {name!r} is already bound via bind_external_sum; "
                "mixed binding styles for one name are not supported"
            )
        self._external[name] = getter

    def bind_external_sum(
        self, name: str, source: object, getter: Callable[[], float]
    ) -> None:
        """Accumulate an externally maintained plain counter under ``name``.

        The election hot loop keeps its counts as plain integer attributes on
        a *shared* status object that every per-node program holds.  Each
        program binds that object here on :meth:`~repro.network.node.NodeProgram.bind`;
        re-binding the **same** ``source`` is a no-op, so n programs sharing
        one status register exactly one getter without coordinating.  Distinct
        sources under one name (e.g. two :class:`~repro.network.faults.FaultInjector`
        instances on one network) are summed, matching what repeated
        collector-owned increments used to produce.

        Unlike :meth:`bind_external` bindings, a summed counter appears in
        :meth:`counters`/:meth:`summary` only while its value is non-zero --
        exactly when the string-keyed ``increment`` calls it replaces would
        have created the counter.  :meth:`count` works regardless.
        """
        if name in self._counters:
            raise ValueError(
                f"counter {name!r} already has collector-owned state; bind it "
                "before the first increment"
            )
        group = self._external_sums.get(name)
        if group is None:
            if name in self._external:
                raise ValueError(
                    f"counter {name!r} is already bound via bind_external; "
                    "mixed binding styles for one name are not supported"
                )
            group = []
            self._external_sums[name] = group
            self._external[name] = lambda: sum(read() for _, read in group)
        for existing, _ in group:
            if existing is source:
                return
        group.append((source, getter))

    def count(self, name: str) -> float:
        """Current value of counter ``name`` (0 if never incremented)."""
        getter = self._external.get(name)
        if getter is not None:
            return float(getter())
        counter = self._counters.get(name)
        return counter.value if counter is not None else 0.0

    def counters(self) -> Dict[str, float]:
        """Snapshot of all counters (collector-owned and external) as a dict."""
        snapshot = {name: c.value for name, c in self._counters.items()}
        sums = self._external_sums
        for name, getter in self._external.items():
            value = float(getter())
            if value == 0.0 and name in sums:
                # Summed bindings mirror increment-created counters: a name
                # nobody has counted yet does not exist in the snapshot.
                continue
            snapshot[name] = value
        return snapshot

    # ------------------------------------------------------------ time series

    def series(self, name: str) -> TimeSeries:
        """Return the time series called ``name``, creating it if needed."""
        series = self._series.get(name)
        if series is None:
            series = TimeSeries(name)
            self._series[name] = series
        return series

    def record(self, name: str, time: float, value: float) -> None:
        """Shorthand for ``collector.series(name).record(time, value)``."""
        self.series(name).record(time, value)

    def all_series(self) -> Dict[str, TimeSeries]:
        """All time series keyed by name."""
        return dict(self._series)

    # ----------------------------------------------------------------- marks

    def mark(self, name: str, time: float) -> None:
        """Record a named instant (e.g. ``"leader-elected"``).

        Re-marking overwrites; use distinct names for repeated milestones.
        """
        self._marks[name] = time

    def mark_time(self, name: str) -> Optional[float]:
        """The time of mark ``name`` or ``None``."""
        return self._marks.get(name)

    def marks(self) -> Dict[str, float]:
        """All marks as a plain dict."""
        return dict(self._marks)

    # ------------------------------------------------------------------ misc

    def merge_counters_from(self, other: "MetricsCollector") -> None:
        """Add every counter of ``other`` into this collector (used by sweeps)."""
        for name, value in other.counters().items():
            self.increment(name, value)

    def summary(self) -> Dict[str, float]:
        """A flat dict of counters and marks, convenient for result tables."""
        summary: Dict[str, float] = {}
        summary.update(self.counters())
        for name, time in self._marks.items():
            summary[f"mark:{name}"] = time
        return summary

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MetricsCollector(counters={len(self._counters)}, "
            f"series={len(self._series)}, marks={len(self._marks)})"
        )
