"""Event objects used by the discrete-event scheduler.

Events are ordered by ``(time, priority, sequence)``.  The sequence number is a
monotonically increasing counter assigned at scheduling time, which gives the
simulation a total, reproducible order even when many events share the same
timestamp -- a frequent situation in synchronous-round simulations where all
nodes act at integer times.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Optional


class EventKind(enum.Enum):
    """Classification of scheduler events, used by tracing and metrics.

    The kind does not influence scheduling order; it exists so that monitors
    can attribute simulation activity (e.g. "how many message deliveries
    happened before time t") without inspecting callback internals.
    """

    GENERIC = "generic"
    MESSAGE_DELIVERY = "message-delivery"
    CLOCK_TICK = "clock-tick"
    TIMER = "timer"
    PROCESS_STEP = "process-step"
    CONTROL = "control"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


_sequence_counter = itertools.count()


def next_sequence() -> int:
    """Return the next global scheduling sequence number.

    The counter is global (process wide) rather than per simulator: two
    simulators created in the same process therefore never share handles, and
    determinism within a single simulator is unaffected because its events
    still receive strictly increasing numbers in scheduling order.
    """

    return next(_sequence_counter)


@dataclass(order=True)
class Event:
    """A scheduled callback.

    Attributes
    ----------
    time:
        Absolute simulation time at which the callback fires.
    priority:
        Secondary ordering key; lower values fire first among events scheduled
        for the same time.  The default of ``0`` is almost always right --
        priorities are used by the synchronizers to guarantee that round
        bookkeeping runs after all deliveries of the round.
    sequence:
        Tie breaker assigned at scheduling time; guarantees a total order.
    callback:
        Zero-argument callable invoked when the event fires.
    kind:
        :class:`EventKind` tag used for tracing.
    payload:
        Arbitrary metadata stored alongside the event (e.g. the message being
        delivered); never interpreted by the engine itself.
    cancelled:
        Set via :meth:`EventHandle.cancel`; cancelled events are skipped.
    """

    time: float
    priority: int
    sequence: int
    callback: Callable[[], None] = field(compare=False)
    kind: EventKind = field(default=EventKind.GENERIC, compare=False)
    payload: Any = field(default=None, compare=False)
    cancelled: bool = field(default=False, compare=False)

    def fire(self) -> None:
        """Invoke the callback unless the event has been cancelled."""
        if not self.cancelled:
            self.callback()


class EventHandle:
    """Opaque handle returned by :meth:`Simulator.schedule`.

    The handle supports cancellation and simple introspection.  Cancellation
    is *lazy*: the event stays in the heap but is skipped when popped, which
    keeps cancellation O(1).
    """

    __slots__ = ("_event",)

    def __init__(self, event: Event) -> None:
        self._event = event

    @property
    def time(self) -> float:
        """Scheduled firing time of the underlying event."""
        return self._event.time

    @property
    def kind(self) -> EventKind:
        """The :class:`EventKind` of the underlying event."""
        return self._event.kind

    @property
    def payload(self) -> Any:
        """The payload attached at scheduling time."""
        return self._event.payload

    @property
    def cancelled(self) -> bool:
        """Whether :meth:`cancel` has been called."""
        return self._event.cancelled

    def cancel(self) -> bool:
        """Cancel the event.

        Returns ``True`` if the event was live and is now cancelled, ``False``
        if it had already been cancelled.  Cancelling an event that has already
        fired has no effect (and returns ``True`` the first time for
        simplicity); callers that care should track firing themselves.
        """
        if self._event.cancelled:
            return False
        self._event.cancelled = True
        return True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "live"
        return f"EventHandle(t={self.time:.6g}, kind={self.kind}, {state})"


def make_event(
    time: float,
    callback: Callable[[], None],
    *,
    priority: int = 0,
    kind: EventKind = EventKind.GENERIC,
    payload: Optional[Any] = None,
) -> Event:
    """Construct an :class:`Event` with a fresh sequence number."""

    return Event(
        time=time,
        priority=priority,
        sequence=next_sequence(),
        callback=callback,
        kind=kind,
        payload=payload,
    )
