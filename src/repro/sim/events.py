"""Event objects used by the discrete-event scheduler.

Events are ordered by ``(time, priority, sequence)``.  The sequence number is a
monotonically increasing counter assigned at scheduling time, which gives the
simulation a total, reproducible order even when many events share the same
timestamp -- a frequent situation in synchronous-round simulations where all
nodes act at integer times.

Performance note: :class:`Event` is a ``__slots__`` class whose ordering is a
single precomputed ``sort_key`` tuple comparison.  The scheduler itself goes
one step further and keeps ``(time, priority, sequence, event)`` tuples on its
heap, so the hot comparison path never enters Python-level ``__lt__`` at all;
the key on the event exists for API compatibility (events remain directly
comparable) and for code that sorts events outside the engine.

Lifecycle note: :class:`~repro.sim.engine.Simulator` recycles fired events
through a per-simulator free list, but only records whose exact reference
count proves that no :class:`EventHandle`, listener or callback kept a
reference.  Code that holds a handle (or the event itself) therefore always
observes stable, truthful ``fired``/``cancelled`` state; recycling is
invisible by construction.  Fire-and-forget work should prefer
:meth:`~repro.sim.engine.Simulator.schedule_call`, which bypasses
:class:`Event` construction entirely.
"""

from __future__ import annotations

import enum
import itertools
from typing import Any, Callable, Optional, Tuple


class EventKind(enum.Enum):
    """Classification of scheduler events, used by tracing and metrics.

    The kind does not influence scheduling order; it exists so that monitors
    can attribute simulation activity (e.g. "how many message deliveries
    happened before time t") without inspecting callback internals.
    """

    GENERIC = "generic"
    MESSAGE_DELIVERY = "message-delivery"
    CLOCK_TICK = "clock-tick"
    TIMER = "timer"
    PROCESS_STEP = "process-step"
    CONTROL = "control"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


_sequence_counter = itertools.count()


def next_sequence() -> int:
    """Return the next global scheduling sequence number.

    Used by :func:`make_event` for events constructed outside a simulator.
    :class:`~repro.sim.engine.Simulator` instead assigns sequence numbers from
    a per-instance counter, which keeps a simulation's event order independent
    of any other simulator living in the same process and avoids the global
    counter indirection on the scheduling hot path.
    """

    return next(_sequence_counter)


class Event:
    """A scheduled callback.

    Attributes
    ----------
    time:
        Absolute simulation time at which the callback fires.
    priority:
        Secondary ordering key; lower values fire first among events scheduled
        for the same time.  The default of ``0`` is almost always right --
        priorities are used by the synchronizers to guarantee that round
        bookkeeping runs after all deliveries of the round.
    sequence:
        Tie breaker assigned at scheduling time; guarantees a total order.
    callback:
        Zero-argument callable invoked when the event fires.
    kind:
        :class:`EventKind` tag used for tracing.
    payload:
        Arbitrary metadata stored alongside the event (e.g. the message being
        delivered); never interpreted by the engine itself.
    cancelled:
        Set via :meth:`EventHandle.cancel`; cancelled events are skipped.
    fired:
        Set by the scheduler once the callback has run; used so that
        cancelling an already-fired event reports failure.
    """

    __slots__ = (
        "time",
        "priority",
        "sequence",
        "callback",
        "kind",
        "payload",
        "cancelled",
        "fired",
    )

    def __init__(
        self,
        time: float,
        priority: int,
        sequence: int,
        callback: Callable[[], None],
        kind: EventKind = EventKind.GENERIC,
        payload: Any = None,
        cancelled: bool = False,
    ) -> None:
        self.time = time
        self.priority = priority
        self.sequence = sequence
        self.callback = callback
        self.kind = kind
        self.payload = payload
        self.cancelled = cancelled
        self.fired = False

    @property
    def sort_key(self) -> Tuple[float, int, int]:
        """The ``(time, priority, sequence)`` ordering tuple."""
        return (self.time, self.priority, self.sequence)

    # Ordering ---------------------------------------------------------------
    # Only the scheduling key participates; callback/kind/payload are ignored,
    # matching the old ``order=True`` dataclass semantics.

    def __lt__(self, other: "Event") -> bool:
        return self.sort_key < other.sort_key

    def __le__(self, other: "Event") -> bool:
        return self.sort_key <= other.sort_key

    def __gt__(self, other: "Event") -> bool:
        return self.sort_key > other.sort_key

    def __ge__(self, other: "Event") -> bool:
        return self.sort_key >= other.sort_key

    def fire(self) -> None:
        """Invoke the callback unless the event has been cancelled."""
        if not self.cancelled:
            self.fired = True
            self.callback()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else ("fired" if self.fired else "live")
        return (
            f"Event(t={self.time:.6g}, prio={self.priority}, "
            f"seq={self.sequence}, kind={self.kind}, {state})"
        )


class EventHandle:
    """Opaque handle returned by :meth:`Simulator.schedule`.

    The handle supports cancellation and simple introspection.  Cancellation
    is *lazy*: the event stays in the heap but is skipped when popped, which
    keeps cancellation O(1).
    """

    __slots__ = ("_event",)

    def __init__(self, event: Event) -> None:
        self._event = event

    @property
    def time(self) -> float:
        """Scheduled firing time of the underlying event."""
        return self._event.time

    @property
    def kind(self) -> EventKind:
        """The :class:`EventKind` of the underlying event."""
        return self._event.kind

    @property
    def payload(self) -> Any:
        """The payload attached at scheduling time."""
        return self._event.payload

    @property
    def cancelled(self) -> bool:
        """Whether :meth:`cancel` has been called."""
        return self._event.cancelled

    @property
    def fired(self) -> bool:
        """Whether the event's callback has already run."""
        return self._event.fired

    def cancel(self) -> bool:
        """Cancel the event.

        Returns ``True`` if the event was live and is now cancelled, ``False``
        if it had already been cancelled *or had already fired* -- a fired
        event cannot be retracted, so reporting success for it would mislead
        callers implementing timeout patterns.
        """
        event = self._event
        if event.cancelled or event.fired:
            return False
        event.cancelled = True
        return True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else ("fired" if self.fired else "live")
        return f"EventHandle(t={self.time:.6g}, kind={self.kind}, {state})"


def make_event(
    time: float,
    callback: Callable[[], None],
    *,
    priority: int = 0,
    kind: EventKind = EventKind.GENERIC,
    payload: Optional[Any] = None,
) -> Event:
    """Construct an :class:`Event` with a fresh global sequence number."""

    return Event(
        time=time,
        priority=priority,
        sequence=next_sequence(),
        callback=callback,
        kind=kind,
        payload=payload,
    )
