"""Local clocks with bounded drift.

Definition 1(2) of the ABE model requires that known bounds
``0 < s_low <= s_high`` on the speed of local clocks exist: for every node *A*
and real times ``t1 < t2``

    s_low * (t2 - t1)  <=  C_A(t2) - C_A(t1)  <=  s_high * (t2 - t1).

This module models such clocks.  A :class:`LocalClock` maps *real* (simulator)
time to *local* time through a piecewise-linear, strictly increasing function
whose slopes are produced by a :class:`ClockDriftModel` and always clamped to
``[s_low, s_high]``.  The clock can also answer the inverse question -- how
much real time corresponds to a local duration -- which the election algorithm
needs in order to schedule its next local clock tick.
"""

from __future__ import annotations

import abc
import math
import random
from dataclasses import dataclass
from typing import List, Optional, Tuple

__all__ = [
    "ClockDriftModel",
    "ConstantRateDrift",
    "RandomWalkDrift",
    "SinusoidalDrift",
    "LocalClock",
    "ClockBoundsViolation",
]


class ClockBoundsViolation(ValueError):
    """Raised when a drift model produces a rate outside ``[s_low, s_high]``.

    In normal operation this never happens because :class:`LocalClock` clamps
    rates; the exception exists for the strict-validation mode used in tests.
    """


class ClockDriftModel(abc.ABC):
    """Strategy producing the clock rate for each successive local segment.

    A drift model is queried once per *segment* (a stretch of real time during
    which the rate is constant).  Models must be deterministic given their
    constructor arguments and the :class:`random.Random` they are handed.
    """

    @abc.abstractmethod
    def next_rate(self, segment_index: int, rng: random.Random) -> float:
        """Return the clock rate for segment ``segment_index`` (0-based)."""

    def segment_length(self, segment_index: int, rng: random.Random) -> float:
        """Real-time length of segment ``segment_index``.

        The default of ``1.0`` re-samples the rate once per real time unit;
        subclasses may override for slower or faster drift dynamics.
        """
        return 1.0


class ConstantRateDrift(ClockDriftModel):
    """A clock that runs at a fixed rate forever (possibly != 1)."""

    def __init__(self, rate: float = 1.0) -> None:
        if rate <= 0:
            raise ValueError(f"clock rate must be positive, got {rate}")
        self.rate = float(rate)

    def next_rate(self, segment_index: int, rng: random.Random) -> float:
        return self.rate

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ConstantRateDrift(rate={self.rate})"


class RandomWalkDrift(ClockDriftModel):
    """Rate performs a bounded random walk: ``r_{k+1} = r_k + U(-step, step)``.

    The walk models slowly varying oscillator frequency (temperature drift in
    sensor-node crystals).  Rates are clamped to ``[low, high]`` by the clock.
    """

    def __init__(self, initial_rate: float = 1.0, step: float = 0.05) -> None:
        if initial_rate <= 0:
            raise ValueError("initial_rate must be positive")
        if step < 0:
            raise ValueError("step must be non-negative")
        self.initial_rate = float(initial_rate)
        self.step = float(step)
        self._current: Optional[float] = None

    def next_rate(self, segment_index: int, rng: random.Random) -> float:
        if segment_index == 0 or self._current is None:
            self._current = self.initial_rate
        else:
            self._current += rng.uniform(-self.step, self.step)
        return self._current

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RandomWalkDrift(initial={self.initial_rate}, step={self.step})"


class SinusoidalDrift(ClockDriftModel):
    """Rate oscillates sinusoidally around a mean (periodic environmental drift)."""

    def __init__(
        self, mean_rate: float = 1.0, amplitude: float = 0.1, period: float = 50.0
    ) -> None:
        if mean_rate <= 0:
            raise ValueError("mean_rate must be positive")
        if amplitude < 0:
            raise ValueError("amplitude must be non-negative")
        if period <= 0:
            raise ValueError("period must be positive")
        self.mean_rate = float(mean_rate)
        self.amplitude = float(amplitude)
        self.period = float(period)

    def next_rate(self, segment_index: int, rng: random.Random) -> float:
        phase = 2.0 * math.pi * segment_index / self.period
        return self.mean_rate + self.amplitude * math.sin(phase)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SinusoidalDrift(mean={self.mean_rate}, amplitude={self.amplitude}, "
            f"period={self.period})"
        )


@dataclass
class _Segment:
    """One piece of the piecewise-linear real->local time map."""

    real_start: float
    real_end: float
    local_start: float
    rate: float

    @property
    def local_end(self) -> float:
        return self.local_start + self.rate * (self.real_end - self.real_start)

    def local_at(self, real_time: float) -> float:
        return self.local_start + self.rate * (real_time - self.real_start)


class LocalClock:
    """A drifting local clock whose rate always lies in ``[s_low, s_high]``.

    Parameters
    ----------
    s_low, s_high:
        The known bounds on the clock speed (Definition 1(2)).  Must satisfy
        ``0 < s_low <= s_high``.
    drift_model:
        Strategy producing raw rates (clamped into the bounds); defaults to a
        perfect clock (rate 1 if ``s_low <= 1 <= s_high``, otherwise the
        midpoint of the admissible interval).
    rng:
        Random stream driving the drift model.
    start_real, start_local:
        Initial real and local times; both default to 0.

    Notes
    -----
    Segments are generated lazily and cached, so reading the clock at a real
    time far in the future is O(elapsed segments) the first time and O(log k)
    afterwards (binary search over cached segments).
    """

    def __init__(
        self,
        s_low: float = 1.0,
        s_high: float = 1.0,
        drift_model: Optional[ClockDriftModel] = None,
        rng: Optional[random.Random] = None,
        start_real: float = 0.0,
        start_local: float = 0.0,
    ) -> None:
        if s_low <= 0:
            raise ValueError(f"s_low must be positive, got {s_low}")
        if s_high < s_low:
            raise ValueError(f"s_high ({s_high}) must be >= s_low ({s_low})")
        self.s_low = float(s_low)
        self.s_high = float(s_high)
        if drift_model is None:
            default_rate = 1.0 if s_low <= 1.0 <= s_high else (s_low + s_high) / 2.0
            drift_model = ConstantRateDrift(default_rate)
        self.drift_model = drift_model
        self._rng = rng if rng is not None else random.Random(0)
        self._segments: List[_Segment] = []
        self._start_real = float(start_real)
        self._start_local = float(start_local)
        self._segment_index = 0
        # Identity fast path: a drift-free clock at rate exactly 1 starting at
        # (0, 0) maps real time to local time by the identity, *bit for bit*:
        # its segments are [k, k+1) with integer endpoints (sums of 1.0 are
        # exact), ``t - k`` is exact by Sterbenz's lemma for t in [k, k+1),
        # and ``k + (t - k)`` therefore rounds back to t.  The segment walk --
        # one segment per real time unit, plus a binary search per read --
        # dominated the election tick path, so the default configuration
        # (every experiment runs drift-free clocks) skips it entirely.  Rates
        # != 1, drifting models, clamping and non-zero starts keep the full
        # piecewise map.
        self._identity = (
            type(drift_model) is ConstantRateDrift
            and drift_model.rate == 1.0
            and self.s_low <= 1.0 <= self.s_high
            and self._start_real == 0.0
            and self._start_local == 0.0
        )

    # ------------------------------------------------------------ internals

    def _clamp(self, rate: float) -> float:
        return min(self.s_high, max(self.s_low, rate))

    def _extend_to(self, real_time: float) -> None:
        """Generate segments until the map covers ``real_time``."""
        if not self._segments:
            rate = self._clamp(self.drift_model.next_rate(0, self._rng))
            length = self.drift_model.segment_length(0, self._rng)
            self._segments.append(
                _Segment(
                    real_start=self._start_real,
                    real_end=self._start_real + length,
                    local_start=self._start_local,
                    rate=rate,
                )
            )
            self._segment_index = 1
        while self._segments[-1].real_end < real_time:
            last = self._segments[-1]
            rate = self._clamp(
                self.drift_model.next_rate(self._segment_index, self._rng)
            )
            length = self.drift_model.segment_length(self._segment_index, self._rng)
            self._segments.append(
                _Segment(
                    real_start=last.real_end,
                    real_end=last.real_end + length,
                    local_start=last.local_end,
                    rate=rate,
                )
            )
            self._segment_index += 1

    def _segment_for_real(self, real_time: float) -> _Segment:
        self._extend_to(real_time)
        lo, hi = 0, len(self._segments) - 1
        while lo < hi:
            mid = (lo + hi) // 2
            seg = self._segments[mid]
            if real_time < seg.real_start:
                hi = mid - 1
            elif real_time >= seg.real_end and mid < len(self._segments) - 1:
                lo = mid + 1
            else:
                return seg
        return self._segments[lo]

    # ----------------------------------------------------------------- reads

    def local_time(self, real_time: float) -> float:
        """Local clock reading ``C_A(real_time)``."""
        if real_time < self._start_real:
            raise ValueError(
                f"real_time {real_time} precedes the clock start {self._start_real}"
            )
        if self._identity:
            return real_time
        return self._segment_for_real(real_time).local_at(real_time)

    def elapsed_local(self, real_t1: float, real_t2: float) -> float:
        """Local time elapsed between two real times (``C(t2) - C(t1)``)."""
        if real_t2 < real_t1:
            raise ValueError("real_t2 must not precede real_t1")
        return self.local_time(real_t2) - self.local_time(real_t1)

    def real_time_for_local(self, local_time: float) -> float:
        """Inverse map: the real time at which the local clock reads ``local_time``."""
        if local_time < self._start_local:
            raise ValueError(
                f"local_time {local_time} precedes the clock start {self._start_local}"
            )
        if self._identity:
            return local_time
        # Extend until the cached map covers the requested local time.  Each
        # segment advances local time by at least s_low * length, so this
        # terminates.
        self._extend_to(self._start_real)
        while self._segments[-1].local_end < local_time:
            self._extend_to(self._segments[-1].real_end + 1.0)
        lo, hi = 0, len(self._segments) - 1
        while lo < hi:
            mid = (lo + hi) // 2
            seg = self._segments[mid]
            if local_time < seg.local_start:
                hi = mid - 1
            elif local_time > seg.local_end and mid < len(self._segments) - 1:
                lo = mid + 1
            else:
                return seg.real_start + (local_time - seg.local_start) / seg.rate
        seg = self._segments[lo]
        return seg.real_start + (local_time - seg.local_start) / seg.rate

    def real_duration_for_local(self, from_real: float, local_duration: float) -> float:
        """Real time needed, starting at ``from_real``, for the local clock to
        advance by ``local_duration``."""
        if local_duration < 0:
            raise ValueError("local_duration must be non-negative")
        if self._identity:
            # Exactly what the segment walk computes for the identity map --
            # including the float rounding of the round trip, which is why
            # this is written as two operations and not ``local_duration``.
            return (from_real + local_duration) - from_real
        target_local = self.local_time(from_real) + local_duration
        return self.real_time_for_local(target_local) - from_real

    # --------------------------------------------------------------- checks

    def verify_bounds(self, real_t1: float, real_t2: float) -> None:
        """Assert Definition 1(2) over ``[real_t1, real_t2]``.

        Raises :class:`ClockBoundsViolation` if the elapsed local time falls
        outside ``[s_low * dt, s_high * dt]`` (up to a small numerical slack).
        """
        if real_t2 <= real_t1:
            return
        dt = real_t2 - real_t1
        dc = self.elapsed_local(real_t1, real_t2)
        slack = 1e-9 * max(1.0, dt)
        if dc < self.s_low * dt - slack or dc > self.s_high * dt + slack:
            raise ClockBoundsViolation(
                f"clock advanced {dc} local units over {dt} real units; "
                f"bounds are [{self.s_low * dt}, {self.s_high * dt}]"
            )

    def rate_bounds(self) -> Tuple[float, float]:
        """Return ``(s_low, s_high)``."""
        return (self.s_low, self.s_high)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"LocalClock(s_low={self.s_low}, s_high={self.s_high}, "
            f"drift={self.drift_model!r})"
        )
