"""Named, reproducible random streams.

A distributed-system simulation draws randomness for many logically distinct
purposes: message delays on each channel, local coin flips at each node, clock
drift, adversary choices.  If all of them shared one generator, adding a node
or reordering a call would perturb every other stream and make experiments
impossible to compare across configurations.

:class:`RandomSource` solves this by deriving an independent
:class:`random.Random` (and, on demand, a :class:`numpy.random.Generator`)
per *name* from a single master seed using a stable hash.  The same
``(master_seed, name)`` pair always yields the same stream, regardless of
creation order.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict, Iterable, Optional

import numpy as np

__all__ = ["derive_seed", "RandomSource"]


def derive_seed(master_seed: int, name: str) -> int:
    """Derive a 63-bit child seed from ``master_seed`` and a stream name.

    The derivation uses SHA-256 over the decimal master seed and the UTF-8
    name, so it is stable across Python versions and processes (unlike
    ``hash``, which is salted).

    >>> derive_seed(42, "delay/ch0") == derive_seed(42, "delay/ch0")
    True
    >>> derive_seed(42, "delay/ch0") != derive_seed(42, "delay/ch1")
    True
    """

    digest = hashlib.sha256(f"{master_seed}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") & 0x7FFF_FFFF_FFFF_FFFF


class RandomSource:
    """Factory for named, independent, reproducible random streams.

    Parameters
    ----------
    master_seed:
        The single seed that determines every stream.
    namespace:
        Optional prefix applied to all stream names; used to give each trial
        of a Monte-Carlo sweep its own universe of streams
        (``RandomSource(seed, namespace=f"trial{i}")``).

    Examples
    --------
    >>> src = RandomSource(7)
    >>> a = src.stream("coin").random()
    >>> b = RandomSource(7).stream("coin").random()
    >>> a == b
    True
    """

    def __init__(self, master_seed: int, namespace: str = "") -> None:
        if not isinstance(master_seed, int):
            raise TypeError(f"master_seed must be an int, got {type(master_seed)!r}")
        self._master_seed = master_seed
        self._namespace = namespace
        self._streams: Dict[str, random.Random] = {}
        self._numpy_streams: Dict[str, np.random.Generator] = {}

    @property
    def master_seed(self) -> int:
        """The master seed this source was created with."""
        return self._master_seed

    @property
    def namespace(self) -> str:
        """The namespace prefix applied to stream names."""
        return self._namespace

    def _qualify(self, name: str) -> str:
        return f"{self._namespace}/{name}" if self._namespace else name

    def stream(self, name: str) -> random.Random:
        """Return the :class:`random.Random` for ``name`` (created on demand)."""
        qualified = self._qualify(name)
        rng = self._streams.get(qualified)
        if rng is None:
            rng = random.Random(derive_seed(self._master_seed, qualified))
            self._streams[qualified] = rng
        return rng

    def numpy_stream(self, name: str) -> np.random.Generator:
        """Return a :class:`numpy.random.Generator` for ``name`` (created on demand)."""
        qualified = self._qualify(name)
        gen = self._numpy_streams.get(qualified)
        if gen is None:
            gen = np.random.default_rng(derive_seed(self._master_seed, qualified + "#np"))
            self._numpy_streams[qualified] = gen
        return gen

    def child(self, sub_namespace: str) -> "RandomSource":
        """Return a new source whose streams live under an extended namespace.

        Useful for giving each node or each channel its own family of streams:
        ``source.child(f"node{i}").stream("coin")``.
        """
        combined = (
            f"{self._namespace}/{sub_namespace}" if self._namespace else sub_namespace
        )
        return RandomSource(self._master_seed, namespace=combined)

    def spawn_trial_sources(self, count: int) -> Iterable["RandomSource"]:
        """Yield ``count`` sources namespaced ``trial0 .. trial{count-1}``."""
        for index in range(count):
            yield self.child(f"trial{index}")

    def known_streams(self) -> Iterable[str]:
        """Names of all streams instantiated so far (qualified)."""
        return tuple(self._streams.keys())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        ns = f", namespace={self._namespace!r}" if self._namespace else ""
        return f"RandomSource(seed={self._master_seed}{ns})"


def fork_seed(master_seed: int, trial: int, salt: Optional[str] = None) -> int:
    """Convenience wrapper deriving a per-trial seed for external generators."""

    name = f"trial{trial}" if salt is None else f"{salt}/trial{trial}"
    return derive_seed(master_seed, name)
