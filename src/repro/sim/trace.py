"""Structured execution traces.

A trace is an ordered list of :class:`TraceEvent` records describing what
happened during a simulated execution: messages sent and delivered, node state
transitions, elections decided, synchronizer round boundaries.  Traces power
the execution checkers in :mod:`repro.core.verification` (safety and liveness
invariants are checked against the trace, not against ad-hoc flags) and the
human-readable replay in the examples.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional

__all__ = ["TraceEvent", "Tracer", "NullTracer", "NULL_TRACER"]


@dataclass(frozen=True)
class TraceEvent:
    """A single trace record.

    Attributes
    ----------
    time:
        Simulation time of the event.
    category:
        Coarse classification, e.g. ``"send"``, ``"deliver"``, ``"state"``,
        ``"decide"``, ``"round"``.
    subject:
        The entity the event is about (usually a node identifier).
    details:
        Free-form structured payload (message contents, old/new state, ...).
    """

    time: float
    category: str
    subject: Any
    details: Dict[str, Any] = field(default_factory=dict)

    def describe(self) -> str:
        """One-line human readable rendering used by the example scripts."""
        detail_str = ", ".join(f"{k}={v}" for k, v in sorted(self.details.items()))
        return f"[t={self.time:10.4f}] {self.category:<8} {self.subject!s:<12} {detail_str}"


class Tracer:
    """Collects :class:`TraceEvent` records during a run.

    Tracing can be disabled wholesale (``enabled=False``) to keep large
    Monte-Carlo sweeps cheap, or limited to a maximum number of events to
    bound memory.
    """

    def __init__(self, enabled: bool = True, max_events: Optional[int] = None) -> None:
        self.enabled = enabled
        self.max_events = max_events
        self._events: List[TraceEvent] = []
        self._dropped = 0

    def record(
        self,
        time: float,
        category: str,
        subject: Any,
        **details: Any,
    ) -> None:
        """Append a trace event (no-op when disabled or full)."""
        if not self.enabled:
            return
        if self.max_events is not None and len(self._events) >= self.max_events:
            self._dropped += 1
            return
        self._events.append(TraceEvent(time=time, category=category, subject=subject, details=details))

    @property
    def events(self) -> List[TraceEvent]:
        """All recorded events in chronological (recording) order."""
        return list(self._events)

    @property
    def dropped(self) -> int:
        """Number of events dropped because ``max_events`` was reached."""
        return self._dropped

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    # ---------------------------------------------------------------- queries

    def filter(
        self,
        category: Optional[str] = None,
        subject: Optional[Any] = None,
        predicate: Optional[Callable[[TraceEvent], bool]] = None,
    ) -> List[TraceEvent]:
        """Events matching the given category/subject/predicate filters."""
        result = []
        for event in self._events:
            if category is not None and event.category != category:
                continue
            if subject is not None and event.subject != subject:
                continue
            if predicate is not None and not predicate(event):
                continue
            result.append(event)
        return result

    def count(self, category: str) -> int:
        """Number of events with the given category."""
        return sum(1 for event in self._events if event.category == category)

    def first(self, category: str) -> Optional[TraceEvent]:
        """The earliest event of the given category, or ``None``."""
        for event in self._events:
            if event.category == category:
                return event
        return None

    def last(self, category: str) -> Optional[TraceEvent]:
        """The latest event of the given category, or ``None``."""
        found: Optional[TraceEvent] = None
        for event in self._events:
            if event.category == category:
                found = event
        return found

    def subjects(self) -> List[Any]:
        """Distinct subjects appearing in the trace, in first-appearance order."""
        seen: List[Any] = []
        for event in self._events:
            if event.subject not in seen:
                seen.append(event.subject)
        return seen

    # ----------------------------------------------------------------- export

    def to_dicts(self) -> List[Dict[str, Any]]:
        """Serialise the trace as a list of plain dictionaries."""
        return [
            {
                "time": event.time,
                "category": event.category,
                "subject": event.subject,
                **event.details,
            }
            for event in self._events
        ]

    def describe(self, limit: Optional[int] = None) -> str:
        """Multi-line human readable rendering (optionally truncated)."""
        events: Iterable[TraceEvent] = self._events
        if limit is not None:
            events = self._events[:limit]
        lines = [event.describe() for event in events]
        if limit is not None and len(self._events) > limit:
            lines.append(f"... ({len(self._events) - limit} more events)")
        return "\n".join(lines)


class NullTracer(Tracer):
    """A tracer that is disabled by construction and records nothing, ever.

    Used by :class:`~repro.network.network.Network` when tracing is off so
    that *incidental* trace calls (fault injection, ``program.trace``) remain
    valid no-ops, while the per-message hot path skips the tracer entirely
    (channels hold ``None`` instead of a disabled tracer, so neither the
    ``record`` call nor its kwargs dict is ever built).

    ``enabled`` is pinned to ``False``: flipping it on a shared
    :data:`NULL_TRACER` cannot silently couple unrelated networks.
    """

    def __init__(self) -> None:
        super().__init__(enabled=False, max_events=0)

    @property  # type: ignore[override]
    def enabled(self) -> bool:
        """Always ``False``; a null tracer cannot be switched on."""
        return False

    @enabled.setter
    def enabled(self, value: bool) -> None:
        if value:
            raise ValueError(
                "NullTracer cannot be enabled; build the Network with "
                "enable_trace=True instead"
            )

    def record(self, time, category, subject, **details) -> None:  # noqa: D102
        return None


#: Shared do-nothing tracer handed to every network built with tracing
#: disabled.  Safe to share because it never accumulates state.
NULL_TRACER = NullTracer()
