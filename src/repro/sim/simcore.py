"""Columnar (struct-of-arrays) pending-event store for the vector core.

The object engine keeps one Python :class:`~repro.sim.events.Event` record
per pending occurrence.  :class:`SimCore` is the columnar counterpart used by
:mod:`repro.core.vector_core`: the payload of every pending message arrival
lives in flat numpy columns (arrival time, hop counter, destination index)
addressed by an integer *slot*, and only a plain ``(time, seq, slot)`` tuple
rides the :mod:`heapq` heap.  Slots are recycled through a free list and the
columns grow by doubling, so a steady-state election allocates nothing per
message beyond the heap tuple.

Ordering contract
-----------------
Ties in ``time`` break by push order (the monotonically increasing ``seq``),
exactly like the object engine's shared sequence counter -- so a run is
deterministic for a fixed seed even when a discrete delay model lands two
arrivals on the same instant.

Batch pushes (:meth:`SimCore.push_batch`) write the columns vectorized and
only loop for the cheap per-entry ``heappush``; this is the path the vector
core's activation rounds use after drawing a whole round of delays in one
:meth:`~repro.network.delays.DelayDistribution.sample_array` call.

Inline entries
--------------
Scalar sends (one forwarded message at a time) skip the slot round-trip
entirely: :meth:`SimCore.push_inline` rides the payload in the heap tuple
itself as ``(time, seq, hop, dst)``.  Mixing 4-tuples with the columnar
``(time, seq, slot)`` entries is safe because ``seq`` is unique and strictly
increasing, so tuple comparison never reaches the third element; ordering
stays exactly push order within a time tie.  :meth:`SimCore.pop` returns the
same ``(time, hop, dst)`` view of either representation.
"""

from __future__ import annotations

import heapq
from typing import List, Optional, Tuple

import numpy as np

__all__ = ["SimCore"]


class SimCore:
    """Min-time store of pending message arrivals with columnar payloads.

    Parameters
    ----------
    capacity:
        Initial number of slots; the columns double whenever the free list
        runs dry, so this is a hint, not a limit.
    """

    __slots__ = (
        "_time",
        "_hop",
        "_dst",
        "_free",
        "_heap",
        "_seq",
        "pushed",
        "popped",
    )

    def __init__(self, capacity: int = 1024) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self._time = np.zeros(capacity, dtype=np.float64)
        self._hop = np.zeros(capacity, dtype=np.int64)
        self._dst = np.zeros(capacity, dtype=np.int64)
        # LIFO free list: slot reuse keeps the hot columns cache-resident.
        self._free: List[int] = list(range(capacity - 1, -1, -1))
        # Entries are (time, seq, slot) or inline (time, seq, hop, dst).
        self._heap: List[tuple] = []
        self._seq = 0
        self.pushed = 0
        self.popped = 0

    # ------------------------------------------------------------------ sizing

    @property
    def capacity(self) -> int:
        """Current number of slots (allocated, not necessarily occupied)."""
        return len(self._time)

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def _grow(self, need: int) -> None:
        old = len(self._time)
        new = max(old * 2, old + need)
        grown_time = np.zeros(new, dtype=np.float64)
        grown_time[:old] = self._time
        self._time = grown_time
        grown_hop = np.zeros(new, dtype=np.int64)
        grown_hop[:old] = self._hop
        self._hop = grown_hop
        grown_dst = np.zeros(new, dtype=np.int64)
        grown_dst[:old] = self._dst
        self._dst = grown_dst
        self._free.extend(range(new - 1, old - 1, -1))

    # ------------------------------------------------------------------- push

    def push(self, time: float, hop: int, dst: int) -> None:
        """Store one pending arrival ``<hop>`` at ``dst`` occurring at ``time``."""
        free = self._free
        if not free:
            self._grow(1)
            free = self._free
        slot = free.pop()
        self._time[slot] = time
        self._hop[slot] = hop
        self._dst[slot] = dst
        seq = self._seq
        self._seq = seq + 1
        heapq.heappush(self._heap, (time, seq, slot))
        self.pushed += 1

    def push_batch(self, times: np.ndarray, hops, dsts: np.ndarray) -> None:
        """Store a whole batch of arrivals; columns are written vectorized.

        ``hops`` may be a scalar (every activation sends ``<1>``) or an array
        aligned with ``times``/``dsts``.  Heap order among the batch follows
        array order, matching ``len(times)`` sequential :meth:`push` calls.
        """
        count = len(times)
        if count == 0:
            return
        free = self._free
        if len(free) < count:
            self._grow(count - len(free))
            free = self._free
        slots = free[-count:]
        del free[-count:]
        index = np.asarray(slots, dtype=np.intp)
        self._time[index] = times
        self._hop[index] = hops
        self._dst[index] = dsts
        seq = self._seq
        heap = self._heap
        push = heapq.heappush
        for position in range(count):
            push(heap, (float(times[position]), seq, slots[position]))
            seq += 1
        self._seq = seq
        self.pushed += count

    def push_inline(self, time: float, hop: int, dst: int) -> None:
        """Store one arrival with the payload inline in the heap tuple.

        No slot is consumed, so this is the cheapest path for scalar sends;
        see the module docstring for why 4-tuples mix safely with columnar
        entries.
        """
        seq = self._seq
        self._seq = seq + 1
        heapq.heappush(self._heap, (time, seq, hop, dst))
        self.pushed += 1

    # -------------------------------------------------------------------- pop

    def peek_time(self) -> Optional[float]:
        """Earliest pending arrival time, or ``None`` when empty."""
        heap = self._heap
        return heap[0][0] if heap else None

    def pop(self) -> Tuple[float, int, int]:
        """Remove and return the earliest arrival as ``(time, hop, dst)``."""
        entry = heapq.heappop(self._heap)
        self.popped += 1
        if len(entry) == 4:
            return entry[0], entry[2], entry[3]
        time, _seq, slot = entry
        hop = int(self._hop[slot])
        dst = int(self._dst[slot])
        self._free.append(slot)
        return time, hop, dst
