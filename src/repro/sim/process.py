"""Periodic and tick-driven processes on top of the event engine.

The ABE election algorithm is clock-driven: "at every clock tick" an idle node
flips a coin.  :class:`TickProcess` schedules those ticks according to a
node's :class:`~repro.sim.clock.LocalClock`, translating local tick intervals
into real-time event delays.  :class:`PeriodicProcess` is the simpler
real-time-periodic variant used by synchronizers and monitors.

Hot-path notes
--------------
Ticks dominate the event count of every election (each node flips a coin per
local time unit), so the repeating processes here are allocation-free at
steady state: each keeps exactly one :class:`~repro.sim.events.Event` (via its
:class:`~repro.sim.events.EventHandle`) alive and re-arms it after every
firing through :meth:`~repro.sim.engine.Simulator.reschedule`, which reuses
the record and consumes the same shared sequence counter -- event ordering is
bit-identical to the schedule-per-tick code it replaced.

:class:`SharedTickProcess` goes one step further for the drift-free case:
when every node's clock runs at rate 1 and all share one tick period, their
ticks land at the same instants, so a *single* heap entry per round can drive
every node's callback in join order.  That changes the engine-level event
granularity (one event per round instead of one per node), which is why it is
opt-in -- see ``batch_ticks`` on :func:`repro.core.runner.build_election_network`
for the semantics contract.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.sim.clock import LocalClock
from repro.sim.engine import Simulator
from repro.sim.events import EventHandle, EventKind

__all__ = ["PeriodicProcess", "TickProcess", "SharedTickProcess", "SharedTickMembership"]


class PeriodicProcess:
    """Invoke a callback every ``period`` units of *real* simulation time.

    The callback receives the invocation count (0-based).  Returning ``False``
    from the callback stops the process; any other return value continues it.
    """

    def __init__(
        self,
        simulator: Simulator,
        period: float,
        callback: Callable[[int], Optional[bool]],
        *,
        start_delay: float = 0.0,
        kind: EventKind = EventKind.PROCESS_STEP,
    ) -> None:
        if period <= 0:
            raise ValueError(f"period must be positive, got {period}")
        if start_delay < 0:
            raise ValueError("start_delay must be non-negative")
        self._simulator = simulator
        self._period = float(period)
        self._callback = callback
        self._kind = kind
        self._count = 0
        self._stopped = False
        self._handle: Optional[EventHandle] = None
        self._handle = simulator.schedule(start_delay, self._fire, kind=kind)

    @property
    def invocations(self) -> int:
        """How many times the callback has run."""
        return self._count

    @property
    def stopped(self) -> bool:
        """Whether the process has been stopped (explicitly or by the callback)."""
        return self._stopped

    def stop(self) -> None:
        """Stop the process; the pending tick (if any) is cancelled."""
        self._stopped = True
        if self._handle is not None:
            self._handle.cancel()

    def _fire(self) -> None:
        if self._stopped:
            return
        result = self._callback(self._count)
        self._count += 1
        if result is False or self._stopped:
            self._stopped = True
            return
        # The handle's event has just fired, so its record can be re-armed in
        # place: no allocation, identical ordering semantics.
        self._simulator.reschedule(self._handle, self._period)


class TickProcess:
    """Clock ticks driven by a (possibly drifting) :class:`LocalClock`.

    Every ``local_period`` units of *local* time the callback fires.  Because
    the local clock may speed up or slow down within the bounds
    ``[s_low, s_high]``, consecutive real-time gaps between ticks vary; this is
    exactly the behaviour Definition 1(2) of the ABE model permits, and the
    election algorithm must remain correct under it.
    """

    def __init__(
        self,
        simulator: Simulator,
        clock: LocalClock,
        callback: Callable[[int], Optional[bool]],
        *,
        local_period: float = 1.0,
        kind: EventKind = EventKind.CLOCK_TICK,
    ) -> None:
        if local_period <= 0:
            raise ValueError(f"local_period must be positive, got {local_period}")
        self._simulator = simulator
        self._clock = clock
        self._callback = callback
        self._local_period = float(local_period)
        self._kind = kind
        self._count = 0
        self._stopped = False
        self._handle: Optional[EventHandle] = None
        self._schedule_next()

    @property
    def ticks(self) -> int:
        """Number of ticks delivered so far."""
        return self._count

    @property
    def stopped(self) -> bool:
        """Whether the process has been stopped."""
        return self._stopped

    def stop(self) -> None:
        """Stop ticking; the pending tick (if any) is cancelled."""
        self._stopped = True
        if self._handle is not None:
            self._handle.cancel()

    def _schedule_next(self) -> None:
        now = self._simulator.now
        real_delay = self._clock.real_duration_for_local(now, self._local_period)
        # Guard against a zero delay caused by floating point rounding: a zero
        # delay would livelock the simulator at a single instant.
        real_delay = max(real_delay, 1e-12)
        handle = self._handle
        if handle is not None and handle.fired:
            # Steady state: re-arm the one event record this process owns.
            self._simulator.reschedule(handle, real_delay)
        else:
            self._handle = self._simulator.schedule(
                real_delay, self._fire, kind=self._kind
            )

    def _fire(self) -> None:
        if self._stopped:
            return
        result = self._callback(self._count)
        self._count += 1
        if result is False or self._stopped:
            self._stopped = True
            return
        self._schedule_next()


class SharedTickMembership:
    """One callback's slot in a :class:`SharedTickProcess`.

    Duck-types the :class:`TickProcess` surface the election program uses
    (``stop()``, ``stopped``, ``ticks``), so a program can hold either
    interchangeably.
    """

    __slots__ = ("callback", "count", "stopped", "_driver")

    def __init__(self, driver: "SharedTickProcess", callback: Callable[[int], Optional[bool]]) -> None:
        self._driver = driver
        self.callback = callback
        self.count = 0
        self.stopped = False

    @property
    def ticks(self) -> int:
        """Number of ticks delivered to this member so far."""
        return self.count

    def stop(self) -> None:
        """Deregister from the driver; no further ticks are delivered."""
        if self.stopped:
            return
        self.stopped = True
        self._driver._member_stopped()


class SharedTickProcess:
    """One heap entry per tick round, shared by every joined callback.

    All members tick on the driver's **shared round grid** -- every
    ``period`` from the (re)arming join -- in join order; a callback
    returning ``False`` or an explicit ``membership.stop()`` removes the
    member, and the driver cancels its pending event once nobody is left,
    keeping the queue small.

    For members that join at the instant the driver arms (the election
    runner's case: every ``on_start`` runs at time 0, before the first
    round), this is semantically equivalent to one :class:`TickProcess` per
    member **when every member's clock is drift-free at rate 1 and all share
    one period** -- the per-node processes would tick at the same instants,
    in the same (uid) order.  A member joining *between* rounds instead
    first ticks at the already-armed next grid round, which can be sooner
    than the full period a fresh :class:`TickProcess` would wait: a private
    per-member offset grid is exactly what sharing one heap entry gives up.

    What changes is engine-level accounting: the simulator processes one
    event per *round* instead of one per *node and round*, so
    ``events_processed`` differs from the per-node layout (all simulation
    outcomes -- states, messages, times, metric counts -- are preserved for
    delay models that never land a delivery exactly on a tick instant; see
    the ``batch_ticks`` documentation in :mod:`repro.core.runner`).  Callers
    are responsible for validating the drift-free clock requirement.
    """

    def __init__(
        self,
        simulator: Simulator,
        *,
        period: float = 1.0,
        kind: EventKind = EventKind.CLOCK_TICK,
    ) -> None:
        if period <= 0:
            raise ValueError(f"period must be positive, got {period}")
        self._simulator = simulator
        self._period = float(period)
        self._kind = kind
        self._members: List[SharedTickMembership] = []
        self._live = 0
        self._rounds = 0
        self._in_fire = False
        self._handle: Optional[EventHandle] = None

    @property
    def rounds(self) -> int:
        """Number of tick rounds fired so far."""
        return self._rounds

    @property
    def live_members(self) -> int:
        """Number of members still receiving ticks."""
        return self._live

    def join(self, callback: Callable[[int], Optional[bool]]) -> SharedTickMembership:
        """Register ``callback``; its first tick is the next grid round.

        If the driver is idle (first join, or everyone had left), that round
        is armed one period from now.  If a round is already pending, the
        member rides it -- see the class docstring for why a join between
        rounds therefore waits *less* than a full period.  A member joining
        mid-round (from another member's callback) is not swept in the
        current round; its first tick is the round after.
        """
        membership = SharedTickMembership(self, callback)
        self._members.append(membership)
        self._live += 1
        if not self._in_fire:
            self._arm()
        return membership

    def _arm(self) -> None:
        handle = self._handle
        if handle is not None and handle.fired:
            self._simulator.reschedule(handle, self._period)
        elif handle is None or handle.cancelled:
            # First arm, or the previous pending event was cancelled when the
            # last member left (the stale entry is skipped at pop).
            self._handle = self._simulator.schedule(
                self._period, self._fire, kind=self._kind
            )

    def _member_stopped(self) -> None:
        self._live -= 1
        if self._live == 0 and not self._in_fire and self._handle is not None:
            self._handle.cancel()

    def _fire(self) -> None:
        members = self._members
        self._rounds += 1
        self._in_fire = True
        try:
            # Bounded sweep: members joining during the round are appended
            # behind this snapshot length and first tick next round.
            for index in range(len(members)):
                member = members[index]
                if member.stopped:
                    continue
                result = member.callback(member.count)
                member.count += 1
                if result is False and not member.stopped:
                    member.stopped = True
                    self._live -= 1
        finally:
            self._in_fire = False
        if self._live == 0:
            return  # the fired handle is re-armed by the next join, if any
        if len(members) > 2 * self._live:
            self._members = [m for m in members if not m.stopped]
        self._arm()
