"""Periodic and tick-driven processes on top of the event engine.

The ABE election algorithm is clock-driven: "at every clock tick" an idle node
flips a coin.  :class:`TickProcess` schedules those ticks according to a
node's :class:`~repro.sim.clock.LocalClock`, translating local tick intervals
into real-time event delays.  :class:`PeriodicProcess` is the simpler
real-time-periodic variant used by synchronizers and monitors.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.sim.clock import LocalClock
from repro.sim.engine import Simulator
from repro.sim.events import EventHandle, EventKind

__all__ = ["PeriodicProcess", "TickProcess"]


class PeriodicProcess:
    """Invoke a callback every ``period`` units of *real* simulation time.

    The callback receives the invocation count (0-based).  Returning ``False``
    from the callback stops the process; any other return value continues it.
    """

    def __init__(
        self,
        simulator: Simulator,
        period: float,
        callback: Callable[[int], Optional[bool]],
        *,
        start_delay: float = 0.0,
        kind: EventKind = EventKind.PROCESS_STEP,
    ) -> None:
        if period <= 0:
            raise ValueError(f"period must be positive, got {period}")
        if start_delay < 0:
            raise ValueError("start_delay must be non-negative")
        self._simulator = simulator
        self._period = float(period)
        self._callback = callback
        self._kind = kind
        self._count = 0
        self._stopped = False
        self._handle: Optional[EventHandle] = None
        self._handle = simulator.schedule(start_delay, self._fire, kind=kind)

    @property
    def invocations(self) -> int:
        """How many times the callback has run."""
        return self._count

    @property
    def stopped(self) -> bool:
        """Whether the process has been stopped (explicitly or by the callback)."""
        return self._stopped

    def stop(self) -> None:
        """Stop the process; the pending tick (if any) is cancelled."""
        self._stopped = True
        if self._handle is not None:
            self._handle.cancel()

    def _fire(self) -> None:
        if self._stopped:
            return
        result = self._callback(self._count)
        self._count += 1
        if result is False or self._stopped:
            self._stopped = True
            return
        self._handle = self._simulator.schedule(self._period, self._fire, kind=self._kind)


class TickProcess:
    """Clock ticks driven by a (possibly drifting) :class:`LocalClock`.

    Every ``local_period`` units of *local* time the callback fires.  Because
    the local clock may speed up or slow down within the bounds
    ``[s_low, s_high]``, consecutive real-time gaps between ticks vary; this is
    exactly the behaviour Definition 1(2) of the ABE model permits, and the
    election algorithm must remain correct under it.
    """

    def __init__(
        self,
        simulator: Simulator,
        clock: LocalClock,
        callback: Callable[[int], Optional[bool]],
        *,
        local_period: float = 1.0,
        kind: EventKind = EventKind.CLOCK_TICK,
    ) -> None:
        if local_period <= 0:
            raise ValueError(f"local_period must be positive, got {local_period}")
        self._simulator = simulator
        self._clock = clock
        self._callback = callback
        self._local_period = float(local_period)
        self._kind = kind
        self._count = 0
        self._stopped = False
        self._handle: Optional[EventHandle] = None
        self._schedule_next()

    @property
    def ticks(self) -> int:
        """Number of ticks delivered so far."""
        return self._count

    @property
    def stopped(self) -> bool:
        """Whether the process has been stopped."""
        return self._stopped

    def stop(self) -> None:
        """Stop ticking; the pending tick (if any) is cancelled."""
        self._stopped = True
        if self._handle is not None:
            self._handle.cancel()

    def _schedule_next(self) -> None:
        now = self._simulator.now
        real_delay = self._clock.real_duration_for_local(now, self._local_period)
        # Guard against a zero delay caused by floating point rounding: a zero
        # delay would livelock the simulator at a single instant.
        real_delay = max(real_delay, 1e-12)
        self._handle = self._simulator.schedule(real_delay, self._fire, kind=self._kind)

    def _fire(self) -> None:
        if self._stopped:
            return
        result = self._callback(self._count)
        self._count += 1
        if result is False or self._stopped:
            self._stopped = True
            return
        self._schedule_next()
