"""Periodic and tick-driven processes on top of the event engine.

The ABE election algorithm is clock-driven: "at every clock tick" an idle node
flips a coin.  :class:`TickProcess` schedules those ticks according to a
node's :class:`~repro.sim.clock.LocalClock`, translating local tick intervals
into real-time event delays.  :class:`PeriodicProcess` is the simpler
real-time-periodic variant used by synchronizers and monitors.

Hot-path notes
--------------
Ticks dominate the event count of every election (each node flips a coin per
local time unit), so the repeating processes here are allocation-free at
steady state: each keeps exactly one :class:`~repro.sim.events.Event` (via its
:class:`~repro.sim.events.EventHandle`) alive and re-arms it after every
firing through :meth:`~repro.sim.engine.Simulator.reschedule`, which reuses
the record and consumes the same shared sequence counter -- event ordering is
bit-identical to the schedule-per-tick code it replaced.

:class:`SharedTickProcess` goes one step further: members' ticks are
*bucketed per instant*, so every group of ticks landing at the same simulated
time rides a single heap entry.  Each member keeps its own (possibly
drifting) clock and computes its next tick exactly like a private
:class:`TickProcess` would, so tick *times* are bit-identical to the per-node
layout for arbitrary clocks; with drift-free unit-rate clocks all members
share every instant and the driver degenerates to one heap entry per
activation round.  What changes is engine-level event granularity (one event
per occupied instant instead of one per node), which is why ``batch_ticks``
on :func:`repro.core.runner.build_election_network` documents the semantics
contract.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.sim.clock import LocalClock
from repro.sim.engine import Simulator
from repro.sim.events import EventHandle, EventKind

__all__ = ["PeriodicProcess", "TickProcess", "SharedTickProcess", "SharedTickMembership"]


class PeriodicProcess:
    """Invoke a callback every ``period`` units of *real* simulation time.

    The callback receives the invocation count (0-based).  Returning ``False``
    from the callback stops the process; any other return value continues it.
    """

    def __init__(
        self,
        simulator: Simulator,
        period: float,
        callback: Callable[[int], Optional[bool]],
        *,
        start_delay: float = 0.0,
        kind: EventKind = EventKind.PROCESS_STEP,
    ) -> None:
        if period <= 0:
            raise ValueError(f"period must be positive, got {period}")
        if start_delay < 0:
            raise ValueError("start_delay must be non-negative")
        self._simulator = simulator
        self._period = float(period)
        self._callback = callback
        self._kind = kind
        self._count = 0
        self._stopped = False
        self._handle: Optional[EventHandle] = None
        self._handle = simulator.schedule(start_delay, self._fire, kind=kind)

    @property
    def invocations(self) -> int:
        """How many times the callback has run."""
        return self._count

    @property
    def stopped(self) -> bool:
        """Whether the process has been stopped (explicitly or by the callback)."""
        return self._stopped

    def stop(self) -> None:
        """Stop the process; the pending tick (if any) is cancelled."""
        self._stopped = True
        if self._handle is not None:
            self._handle.cancel()

    def _fire(self) -> None:
        if self._stopped:
            return
        result = self._callback(self._count)
        self._count += 1
        if result is False or self._stopped:
            self._stopped = True
            return
        # The handle's event has just fired, so its record can be re-armed in
        # place: no allocation, identical ordering semantics.
        self._simulator.reschedule(self._handle, self._period)


class TickProcess:
    """Clock ticks driven by a (possibly drifting) :class:`LocalClock`.

    Every ``local_period`` units of *local* time the callback fires.  Because
    the local clock may speed up or slow down within the bounds
    ``[s_low, s_high]``, consecutive real-time gaps between ticks vary; this is
    exactly the behaviour Definition 1(2) of the ABE model permits, and the
    election algorithm must remain correct under it.
    """

    def __init__(
        self,
        simulator: Simulator,
        clock: LocalClock,
        callback: Callable[[int], Optional[bool]],
        *,
        local_period: float = 1.0,
        kind: EventKind = EventKind.CLOCK_TICK,
    ) -> None:
        if local_period <= 0:
            raise ValueError(f"local_period must be positive, got {local_period}")
        self._simulator = simulator
        self._clock = clock
        self._callback = callback
        self._local_period = float(local_period)
        self._kind = kind
        self._count = 0
        self._stopped = False
        self._handle: Optional[EventHandle] = None
        self._schedule_next()

    @property
    def ticks(self) -> int:
        """Number of ticks delivered so far."""
        return self._count

    @property
    def stopped(self) -> bool:
        """Whether the process has been stopped."""
        return self._stopped

    def stop(self) -> None:
        """Stop ticking; the pending tick (if any) is cancelled."""
        self._stopped = True
        if self._handle is not None:
            self._handle.cancel()

    def _schedule_next(self) -> None:
        now = self._simulator.now
        real_delay = self._clock.real_duration_for_local(now, self._local_period)
        # Guard against a zero delay caused by floating point rounding: a zero
        # delay would livelock the simulator at a single instant.
        real_delay = max(real_delay, 1e-12)
        handle = self._handle
        if handle is not None and handle.fired:
            # Steady state: re-arm the one event record this process owns.
            self._simulator.reschedule(handle, real_delay)
        else:
            self._handle = self._simulator.schedule(
                real_delay, self._fire, kind=self._kind
            )

    def _fire(self) -> None:
        if self._stopped:
            return
        result = self._callback(self._count)
        self._count += 1
        if result is False or self._stopped:
            self._stopped = True
            return
        self._schedule_next()


class SharedTickMembership:
    """One callback's slot in a :class:`SharedTickProcess`.

    Duck-types the :class:`TickProcess` surface the election program uses
    (``stop()``, ``stopped``, ``ticks``), so a program can hold either
    interchangeably.
    """

    __slots__ = ("callback", "clock", "period", "count", "stopped", "_driver", "_bucket")

    def __init__(
        self,
        driver: "SharedTickProcess",
        callback: Callable[[int], Optional[bool]],
        clock: Optional[LocalClock],
        period: float,
    ) -> None:
        self._driver = driver
        self._bucket: Optional[_TickBucket] = None
        self.callback = callback
        self.clock = clock
        self.period = period
        self.count = 0
        self.stopped = False

    @property
    def ticks(self) -> int:
        """Number of ticks delivered to this member so far."""
        return self.count

    def stop(self) -> None:
        """Deregister from the driver; no further ticks are delivered."""
        if self.stopped:
            return
        self.stopped = True
        self._driver._member_stopped(self)


class _TickBucket:
    """Every member whose next tick lands at one instant, plus its heap entry.

    ``members`` is a pre-sized slot array filled up to ``size`` (slots beyond
    ``size`` are stale or ``None``), so the steady-state round of a drift-free
    ring never grows a list member by member.  Buckets are recycled by the
    driver, so the slot array is allocated once and reused every round.
    """

    __slots__ = ("time", "members", "size", "live", "handle")

    def __init__(self, time: float, handle: EventHandle, capacity: int) -> None:
        self.time = time
        self.members: List[Optional[SharedTickMembership]] = [None] * capacity
        self.size = 0
        self.live = 0
        self.handle = handle


class SharedTickProcess:
    """Tick driver sharing one heap entry per *instant* across its members.

    Each member keeps its own :class:`~repro.sim.clock.LocalClock` and local
    period, and its next tick time is computed exactly as a private
    :class:`TickProcess` would compute it (``real_duration_for_local`` from
    the previous tick's instant, clamped away from zero) -- so the sequence
    of tick *times* each member observes is bit-identical to the per-node
    layout, for arbitrary (also drifting) clocks.  Members whose next ticks
    land at the same instant are *bucketed*: the whole bucket rides a single
    engine event and fires in bucket-append order, which for members joined
    in uid order at time 0 is exactly the per-node firing order.

    With drift-free unit-rate clocks every member computes the same next
    instant, so the driver degenerates to one heap entry per activation
    round -- the fast path the election runner relies on.  With drifting
    clocks instants mostly diverge and the driver approaches one entry per
    member tick, i.e. it never does worse than per-node ticking.

    What changes against per-node ticking is engine-level accounting: the
    simulator processes one event per occupied instant, so
    ``events_processed`` differs, and at an instant shared by a tick bucket
    and a message delivery the *relative* order of the bucket's later
    members and the delivery can differ from the per-node interleaving.
    All simulation outcomes are preserved for delay models that never land
    a delivery exactly on a tick instant (continuous delays; see the
    ``batch_ticks`` documentation in :mod:`repro.core.runner`).

    A callback returning ``False`` or an explicit ``membership.stop()``
    removes the member; a bucket whose members all stopped cancels its
    pending event, keeping the queue small.  Fired event records *and* their
    buckets are parked on driver-local spare lists: records are re-armed
    through :meth:`~repro.sim.engine.Simulator.reschedule`, and recycled
    buckets keep their member slot arrays (``expected_members`` hints the
    initial capacity, e.g. the ring size), so the steady-state round fills
    pre-sized slots instead of growing a list member by member -- measurable
    at n >= 10^4 where every activation round re-bucketed all n members.
    """

    def __init__(
        self,
        simulator: Simulator,
        *,
        period: float = 1.0,
        kind: EventKind = EventKind.CLOCK_TICK,
        expected_members: int = 0,
    ) -> None:
        if period <= 0:
            raise ValueError(f"period must be positive, got {period}")
        if expected_members < 0:
            raise ValueError("expected_members must be non-negative")
        self._simulator = simulator
        self._period = float(period)
        self._kind = kind
        self._expected_members = int(expected_members)
        self._buckets: Dict[float, _TickBucket] = {}
        self._spare_handles: List[EventHandle] = []
        self._spare_buckets: List[_TickBucket] = []
        self._live = 0
        self._rounds = 0

    @property
    def rounds(self) -> int:
        """Number of tick buckets fired so far."""
        return self._rounds

    @property
    def live_members(self) -> int:
        """Number of members still receiving ticks."""
        return self._live

    @property
    def pending_instants(self) -> int:
        """Number of distinct future instants currently armed."""
        return len(self._buckets)

    def join(
        self,
        callback: Callable[[int], Optional[bool]],
        *,
        clock: Optional[LocalClock] = None,
        period: Optional[float] = None,
    ) -> SharedTickMembership:
        """Register ``callback``; its first tick is one local period from now.

        ``clock`` translates the member's local ``period`` (default: the
        driver's period) into real-time delays exactly like a private
        :class:`TickProcess`; ``None`` means a drift-free unit-rate clock.
        A member joining from inside another member's tick callback is never
        swept in the firing bucket -- its first tick lies strictly in the
        future, exactly where a fresh :class:`TickProcess` would place it.
        """
        local_period = self._period if period is None else float(period)
        if local_period <= 0:
            raise ValueError(f"period must be positive, got {local_period}")
        membership = SharedTickMembership(self, callback, clock, local_period)
        self._live += 1
        self._schedule_next(membership)
        return membership

    # ------------------------------------------------------------- internals

    def _schedule_next(self, member: SharedTickMembership) -> None:
        now = self._simulator._now
        clock = member.clock
        if clock is None:
            delay = member.period
        else:
            delay = clock.real_duration_for_local(now, member.period)
            if delay < 1e-12:
                # Same guard as TickProcess: a zero delay caused by floating
                # point rounding would livelock the simulator at one instant.
                delay = 1e-12
        time = now + delay  # identical float to what the engine computes
        bucket = self._buckets.get(time)
        if bucket is None:
            spare = self._spare_handles
            if spare:
                handle = spare.pop()
                self._simulator.reschedule(handle, delay)
            else:
                handle = self._simulator.schedule(delay, self._fire, kind=self._kind)
            spare_buckets = self._spare_buckets
            if spare_buckets:
                # Recycled bucket: the slot array keeps its capacity, so the
                # steady-state round fills pre-sized slots instead of growing
                # a fresh list member by member.
                bucket = spare_buckets.pop()
                bucket.time = time
                bucket.handle = handle
                bucket.size = 0
                bucket.live = 0
            else:
                bucket = _TickBucket(time, handle, self._expected_members)
            self._buckets[time] = bucket
        members = bucket.members
        size = bucket.size
        if size < len(members):
            members[size] = member
        else:
            members.append(member)
        bucket.size = size + 1
        bucket.live += 1
        member._bucket = bucket

    def _member_stopped(self, member: SharedTickMembership) -> None:
        self._live -= 1
        bucket = member._bucket
        if bucket is None:
            return
        member._bucket = None
        bucket.live -= 1
        if bucket.live == 0 and self._buckets.get(bucket.time) is bucket:
            # Nobody left at this instant: drop the bucket and cancel its
            # event (the stale heap entry is skipped at pop).  A cancelled,
            # never-fired record cannot be re-armed, so it is not parked.
            del self._buckets[bucket.time]
            bucket.handle.cancel()
            # Stale slots beyond ``size`` keep references to stopped members;
            # memberships live for the whole run in election usage, so the
            # retention is harmless and zeroing them would cost O(n) per round.
            self._spare_buckets.append(bucket)

    def _fire(self) -> None:
        now = self._simulator._now
        bucket = self._buckets.pop(now, None)
        if bucket is None:  # pragma: no cover - defensive; stop() cancels
            return
        self._rounds += 1
        # The fired record can be re-armed immediately (the engine marks it
        # fired before the callback runs), so rescheduling inside the member
        # loop below reuses it for the next instant.
        self._spare_handles.append(bucket.handle)
        members = bucket.members
        # Iterate by index: only the first ``size`` slots belong to this
        # round; re-bucketing inside the loop targets other buckets (the
        # firing bucket was popped above and is parked only after the loop).
        for index in range(bucket.size):
            member = members[index]
            if member.stopped:
                continue
            member._bucket = None
            result = member.callback(member.count)
            member.count += 1
            if result is False and not member.stopped:
                member.stopped = True
                self._live -= 1
                continue
            if member.stopped:  # the callback called stop() explicitly
                continue
            self._schedule_next(member)
        self._spare_buckets.append(bucket)
