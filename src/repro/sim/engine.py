"""The discrete-event simulation engine.

:class:`Simulator` is a minimal but complete event scheduler: a binary heap of
``(time, priority, sequence, event)`` tuples ordered lexicographically, which
matches the documented ``(time, priority, sequence)`` event order while keeping
heap comparisons in C (plain tuple comparison) instead of Python-level
``Event.__lt__``.  All higher layers (channels, clocks, synchronizers, the
election algorithm) are expressed as callbacks scheduled on a single simulator
instance, so an entire distributed execution is one totally ordered sequence
of events, reproducible from a seed.

Hot-path notes
--------------
The engine dominates the wall-clock time of every experiment (millions of
heap operations per election), so :meth:`Simulator.run`, :meth:`~Simulator.step`
and :meth:`~Simulator.schedule_at` deliberately trade a little readability for
speed:

* heap entries are tuples, so ordering never calls back into Python;
* the sequence counter is a per-simulator integer (no global
  ``itertools.count`` indirection, and two simulators in one process cannot
  perturb each other's event numbering);
* ``heapq.heappush``/``heappop`` and the queue list are bound to locals inside
  the loops;
* the listener loop is skipped entirely when no listeners are registered
  (the common case for experiment sweeps, which disable tracing);
* :meth:`~Simulator.schedule_call` / :meth:`~Simulator.schedule_call_at` are
  *handle-free* fast paths for fire-and-forget events: they push a plain
  ``(time, priority, sequence, fn, arg)`` tuple -- no :class:`Event`, no
  :class:`EventHandle`, no closure, no listener dispatch.  The message
  delivery path of :class:`~repro.network.channel.Channel` lives here;
* fired :class:`Event` records whose handles were discarded are recycled
  through a per-simulator free list, so timer/tick-heavy workloads reach a
  steady state with no per-event allocation.  Recycling is guarded by an
  exact ``sys.getrefcount`` check, so an event that is still observable
  anywhere (a live :class:`EventHandle`, a listener that stored it) is never
  reused and all handle semantics stay exact.

Because the fast-path entries carry no :class:`Event`, registered listeners
do not see them.  Components that must observe *every* event regardless of
how it was scheduled (e.g. :meth:`~repro.network.network.Network.stop_when`
predicates) use the :meth:`~Simulator.add_before_event` hooks, which the run
loop invokes before firing each entry of either kind.
"""

from __future__ import annotations

import heapq
import math
import sys
from typing import Any, Callable, Iterable, List, Optional, Tuple

from repro.sim.events import Event, EventHandle, EventKind

#: Heap entry layouts.  Regular events are ``(time, priority, sequence,
#: event)``; handle-free fast-path entries are ``(time, priority, sequence,
#: fn, arg)``.  The sequence is unique per simulator, so heap comparisons
#: never reach the trailing elements and the two layouts can share one heap.
QueueEntry = Tuple[float, int, int, Event]

# Module-level bindings: a global load is cheaper than attribute lookup on the
# per-event path, and these never change.
_heappush = heapq.heappush
_heappop = heapq.heappop
_heapify = heapq.heapify
_isfinite = math.isfinite
_INF = math.inf
_getrefcount = getattr(sys, "getrefcount", None)

#: Exact reference count of a just-fired event that nothing outside the run
#: loop can observe: the popped ``entry`` tuple, the ``event`` local, and the
#: ``getrefcount`` argument binding.  Anything above this means a handle,
#: listener or callback kept a reference, and the event must not be recycled.
_POOLABLE_REFS = 3

#: Upper bound on the per-simulator event free list; enough to cover every
#: concurrently pending timer of the largest experiment rings while keeping a
#: pathological burst from pinning memory.
_EVENT_POOL_LIMIT = 256


class SimulationError(RuntimeError):
    """Raised for invalid scheduler usage (negative delays, re-running, ...)."""


class SimulationDiverged(SimulationError):
    """A run exhausted its event or time budget with live work still pending.

    Raised by :meth:`Simulator.run` only when the caller opts in with
    ``raise_on_limit=True``; the default behaviour (truncate silently and
    return) is unchanged.  The exception distinguishes the three legitimate
    ways a run ends -- queue exhaustion, an explicit :meth:`Simulator.stop`
    (e.g. a satisfied ``stop_when`` predicate), and budget truncation -- and
    fires only for the last, so a simulation that *completed* within its
    budget never raises.

    Carries enough context to diagnose the divergence without re-running:
    ``events_processed``, the clock value ``now``, and the ``max_events`` /
    ``max_time`` budgets that were in force.  Picklable, so it crosses
    ``multiprocessing`` worker boundaries intact.
    """

    def __init__(
        self,
        message: str,
        events_processed: int = 0,
        now: float = 0.0,
        max_events: Optional[int] = None,
        max_time: Optional[float] = None,
    ) -> None:
        super().__init__(message)
        self.events_processed = events_processed
        self.now = now
        self.max_events = max_events
        self.max_time = max_time

    def __reduce__(self):
        # Default exception pickling replays only ``args``; replay the full
        # positional signature so worker-raised instances keep their context.
        return (
            type(self),
            (
                self.args[0] if self.args else "",
                self.events_processed,
                self.now,
                self.max_events,
                self.max_time,
            ),
        )


class Simulator:
    """Deterministic discrete-event scheduler.

    Parameters
    ----------
    start_time:
        Initial value of the simulation clock.  Defaults to ``0.0``.

    Notes
    -----
    The simulator is intentionally ignorant of networks, nodes and messages;
    it only knows about timed callbacks.  Determinism is guaranteed because

    * events are ordered by ``(time, priority, sequence)`` where the sequence
      is assigned in scheduling order (one shared counter across
      :meth:`schedule` and the handle-free :meth:`schedule_call` fast path,
      so the two interleave exactly like two ``schedule`` calls would), and
    * the engine itself never consults a random number generator.

    Examples
    --------
    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(2.0, lambda: fired.append("b"))
    >>> sim.schedule_call(1.0, fired.append, "a")
    >>> sim.run()
    >>> fired
    ['a', 'b']
    >>> sim.now
    2.0
    """

    def __init__(self, start_time: float = 0.0) -> None:
        self._now: float = float(start_time)
        self._queue: List[QueueEntry] = []
        self._running: bool = False
        self._stopped: bool = False
        self._events_processed: int = 0
        self._events_scheduled: int = 0
        self._sequence: int = 0
        self._listeners: List[Callable[[Event], None]] = []
        # Before-event hooks live in a list so run() can bind it once and
        # still observe hooks installed mid-run (same trick as the listener
        # list, which is captured but mutated in place).
        self._before_event: List[Callable[[], None]] = []
        self._free_events: List[Event] = []

    # ------------------------------------------------------------------ time

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events fired so far (excluding cancelled events)."""
        return self._events_processed

    @property
    def events_scheduled(self) -> int:
        """Number of events ever scheduled on this simulator."""
        return self._events_scheduled

    @property
    def pending(self) -> int:
        """Number of events currently in the queue (including cancelled ones)."""
        return len(self._queue)

    # ------------------------------------------------------------- scheduling

    def schedule(
        self,
        delay: float,
        callback: Callable[[], None],
        *,
        priority: int = 0,
        kind: EventKind = EventKind.GENERIC,
        payload: Optional[Any] = None,
    ) -> EventHandle:
        """Schedule ``callback`` to fire ``delay`` time units from now.

        Raises
        ------
        SimulationError
            If ``delay`` is negative or not a finite number.
        """
        # Inlined schedule_at: this is the hottest handle-returning entry
        # point (every timer and clock tick lands here), so the extra method
        # call is worth avoiding.  The chained comparison rejects NaN (fails
        # both bounds), +/-inf and negatives in one happy-path check.
        if not (0.0 <= delay < _INF):
            if not _isfinite(delay):
                raise SimulationError(f"delay must be finite, got {delay!r}")
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        time = self._now + delay
        sequence = self._sequence
        self._sequence = sequence + 1
        free = self._free_events
        if free:
            # Reuse a fired record from the free list: eight attribute stores
            # instead of an allocation (the run loop only parks events here
            # once their refcount proves no handle or listener kept them).
            event = free.pop()
            event.time = time
            event.priority = priority
            event.sequence = sequence
            event.callback = callback
            event.kind = kind
            event.payload = payload
            event.cancelled = False
            event.fired = False
        else:
            event = Event(time, priority, sequence, callback, kind, payload)
        _heappush(self._queue, (time, priority, sequence, event))
        self._events_scheduled += 1
        return EventHandle(event)

    def schedule_at(
        self,
        time: float,
        callback: Callable[[], None],
        *,
        priority: int = 0,
        kind: EventKind = EventKind.GENERIC,
        payload: Optional[Any] = None,
    ) -> EventHandle:
        """Schedule ``callback`` at an absolute simulation time.

        Raises
        ------
        SimulationError
            If ``time`` precedes the current simulation time or is NaN.
        """
        if not (time >= self._now):  # also rejects NaN, which fails every compare
            raise SimulationError(
                f"cannot schedule at {time} before current time {self._now}"
            )
        sequence = self._sequence
        self._sequence = sequence + 1
        free = self._free_events
        if free:
            event = free.pop()
            event.time = time
            event.priority = priority
            event.sequence = sequence
            event.callback = callback
            event.kind = kind
            event.payload = payload
            event.cancelled = False
            event.fired = False
        else:
            event = Event(time, priority, sequence, callback, kind, payload)
        _heappush(self._queue, (time, priority, sequence, event))
        self._events_scheduled += 1
        return EventHandle(event)

    def reschedule(self, handle: EventHandle, delay: float) -> None:
        """Re-arm a *fired* event's record ``delay`` time units from now.

        The zero-allocation sibling of :meth:`schedule` for self-repeating
        work: :class:`~repro.sim.process.TickProcess` and friends hold one
        :class:`EventHandle` for their whole lifetime and re-arm it after
        every firing, so steady-state ticking builds no Event, no handle and
        no closure.  Ordering is identical to a fresh :meth:`schedule` call --
        the entry consumes the same shared sequence counter -- and the
        handle's ``cancel``/``fired`` semantics are unchanged (priority and
        kind are preserved from the original scheduling).

        Raises
        ------
        SimulationError
            If the event has not fired (it would still be in the queue, and
            re-pushing it would corrupt the heap) or ``delay`` is invalid.
        """
        event = handle._event
        if not event.fired:
            raise SimulationError(
                "reschedule requires a handle whose event has already fired"
            )
        if not (0.0 <= delay < _INF):
            if not _isfinite(delay):
                raise SimulationError(f"delay must be finite, got {delay!r}")
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        time = self._now + delay
        sequence = self._sequence
        self._sequence = sequence + 1
        event.time = time
        event.sequence = sequence
        event.cancelled = False
        event.fired = False
        _heappush(self._queue, (time, event.priority, sequence, event))
        self._events_scheduled += 1

    def schedule_call(
        self, delay: float, fn: Callable[[Any], None], arg: Any = None, priority: int = 0
    ) -> None:
        """Handle-free fast path: call ``fn(arg)`` after ``delay`` time units.

        The fire-and-forget sibling of :meth:`schedule`: no :class:`Event` is
        built, no :class:`EventHandle` is returned (the call cannot be
        cancelled), and listeners are not dispatched.  Ordering is identical
        to :meth:`schedule` -- the entry consumes the same shared sequence
        counter, so fast-path and regular events interleave exactly by
        scheduling order at equal ``(time, priority)``.

        Passing the receiver as ``arg`` (typically a bound method plus its
        argument) is what lets the message path avoid allocating a closure
        per delivery.
        """
        if not (0.0 <= delay < _INF):
            if not _isfinite(delay):
                raise SimulationError(f"delay must be finite, got {delay!r}")
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        sequence = self._sequence
        self._sequence = sequence + 1
        _heappush(self._queue, (self._now + delay, priority, sequence, fn, arg))
        self._events_scheduled += 1

    def schedule_call_at(
        self, time: float, fn: Callable[[Any], None], arg: Any = None, priority: int = 0
    ) -> None:
        """Handle-free fast path: call ``fn(arg)`` at an absolute time.

        See :meth:`schedule_call`.  This is the entry point of every message
        delivery (:meth:`~repro.network.channel.Channel.transmit` computes the
        absolute delivery time from the sampled delay).
        """
        if not (time >= self._now):  # also rejects NaN
            raise SimulationError(
                f"cannot schedule at {time} before current time {self._now}"
            )
        sequence = self._sequence
        self._sequence = sequence + 1
        _heappush(self._queue, (time, priority, sequence, fn, arg))
        self._events_scheduled += 1

    def schedule_many(
        self,
        items: Iterable[Tuple[float, Callable[[], None]]],
        *,
        priority: int = 0,
        kind: EventKind = EventKind.GENERIC,
    ) -> List[EventHandle]:
        """Batch-schedule ``(delay, callback)`` pairs in one heap rebuild.

        Equivalent to calling :meth:`schedule` for each pair (sequence numbers
        are assigned in iteration order, so ties fire in list order) but costs
        one O(n) ``heapify`` instead of n O(log n) pushes.  Used by
        :class:`~repro.network.network.Network` to start every node program at
        once.
        """
        now = self._now
        sequence = self._sequence
        entries: List[QueueEntry] = []
        handles: List[EventHandle] = []
        # Build (and validate) everything locally first so a bad item mid-batch
        # leaves the simulator untouched.
        for delay, callback in items:
            if not (0.0 <= delay < _INF):
                if not _isfinite(delay):
                    raise SimulationError(f"delay must be finite, got {delay!r}")
                raise SimulationError(f"cannot schedule into the past (delay={delay})")
            time = now + delay
            event = Event(time, priority, sequence, callback, kind, None)
            entries.append((time, priority, sequence, event))
            sequence += 1
            handles.append(EventHandle(event))
        self._queue.extend(entries)
        self._sequence = sequence
        self._events_scheduled += len(handles)
        _heapify(self._queue)
        return handles

    def add_listener(self, listener: Callable[[Event], None]) -> None:
        """Register a hook invoked (with the event) just before each event fires.

        Listeners receive only regular :class:`Event` entries; the handle-free
        :meth:`schedule_call` fast path bypasses them by design.  Use
        :meth:`add_before_event` to observe every entry.
        """
        self._listeners.append(listener)

    def remove_listener(self, listener: Callable[[Event], None]) -> None:
        """Remove a previously registered listener (no-op if absent)."""
        try:
            self._listeners.remove(listener)
        except ValueError:
            pass

    def add_before_event(self, hook: Callable[[], None]) -> None:
        """Register an argument-less hook invoked before every entry fires.

        Hooks run immediately before *every* live entry -- regular events and
        handle-free fast-path calls alike -- after the clock has advanced to
        the entry's time, in registration order.  Unlike listeners they see
        no event object, which is what lets the fast path skip building one;
        :meth:`repro.network.network.Network.stop_when` multiplexes its
        predicates behind a single hook so the no-hook case costs one
        truthiness check per event.  Adding or removing a hook from a
        callback during :meth:`run` takes effect from the next event.
        """
        self._before_event.append(hook)

    def remove_before_event(self, hook: Callable[[], None]) -> None:
        """Remove a previously registered before-event hook (no-op if absent)."""
        try:
            self._before_event.remove(hook)
        except ValueError:
            pass

    # ---------------------------------------------------------------- running

    def step(self) -> bool:
        """Fire the single next live event.

        Returns ``True`` if an event was fired, ``False`` if the queue is
        empty (cancelled events are silently discarded without counting as a
        step).
        """
        queue = self._queue
        while queue:
            entry = _heappop(queue)
            if len(entry) == 5:
                self._now = entry[0]
                for hook in self._before_event:
                    hook()
                entry[3](entry[4])
                self._events_processed += 1
                return True
            event = entry[3]
            if event.cancelled:
                continue
            self._now = entry[0]
            for hook in self._before_event:
                hook()
            listeners = self._listeners
            if listeners:
                for listener in listeners:
                    listener(event)
            event.fire()
            self._events_processed += 1
            return True
        return False

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
        *,
        raise_on_limit: bool = False,
    ) -> float:
        """Run the simulation until exhaustion, a time horizon, or an event cap.

        Parameters
        ----------
        until:
            If given, stop once the next event would fire strictly after this
            time; the clock is advanced to ``until``.
        max_events:
            If given, stop after firing this many events (useful as a safety
            net against non-terminating algorithms).
        raise_on_limit:
            If ``True``, exhausting either budget while live events are still
            pending raises :class:`SimulationDiverged` instead of truncating
            silently -- the in-simulation divergence watchdog.  A run that
            ends by queue exhaustion or an explicit :meth:`stop` (a satisfied
            ``stop_when`` predicate) never raises.

        Returns
        -------
        float
            The simulation time when the run stopped.
        """
        if self._running:
            raise SimulationError("simulator is already running (re-entrant run())")
        self._running = True
        self._stopped = False
        truncated = False
        fired = 0
        limit = _INF if max_events is None else max_events
        queue = self._queue
        listeners = self._listeners  # the list object is never rebound
        free = self._free_events
        free_append = free.append
        refcount = _getrefcount
        pooling = refcount is not None
        pool_limit = _EVENT_POOL_LIMIT
        poolable_refs = _POOLABLE_REFS
        # The cell is bound once; in-place mutation keeps mid-run installs
        # visible, exactly like the listener list.
        before = self._before_event
        try:
            while queue and not self._stopped:
                if fired >= limit:
                    # Event cap: break (not the while-else) so the clock is NOT
                    # advanced to the horizon past still-pending events.
                    truncated = True
                    break
                if until is not None:
                    # Peek before popping: drain cancelled heads in one pass so
                    # the horizon check sees the next *live* event.  Fast-path
                    # entries (length 5) are never cancellable.
                    while queue:
                        head = queue[0]
                        if len(head) == 4 and head[3].cancelled:
                            _heappop(queue)
                        else:
                            break
                    if not queue:
                        continue  # loop condition fails; horizon handling below
                    if queue[0][0] > until:
                        self._now = until
                        truncated = True
                        break
                    entry = _heappop(queue)
                    is_event = len(entry) == 4
                else:
                    # No horizon: pop first, skip cancelled events as they come.
                    entry = _heappop(queue)
                    is_event = len(entry) == 4
                    if is_event and entry[3].cancelled:
                        continue
                self._now = entry[0]
                if before:
                    for hook in before:
                        hook()
                if is_event:
                    event = entry[3]
                    if listeners:
                        for listener in listeners:
                            listener(event)
                        if not event.cancelled:  # a listener may cancel mid-flight
                            event.fired = True
                            event.callback()
                        # No cancelled check before pooling: reuse overwrites
                        # every field (including cancelled), so even a
                        # listener-cancelled record is safe to park once the
                        # refcount proves nothing can still observe it.
                    else:
                        event.fired = True
                        event.callback()
                    # Recycle the fired record iff provably unobservable: the
                    # exact refcount (entry tuple + `event` local + getrefcount
                    # argument) proves no handle, listener or callback kept it,
                    # so reuse cannot change any observable handle state.
                    # Parked records keep their stale callback/payload refs --
                    # the pool is small and they are overwritten on reuse.
                    if (
                        pooling
                        and len(free) < pool_limit
                        and refcount(event) == poolable_refs
                    ):
                        free_append(event)
                else:
                    # Handle-free fast path: no Event, no listeners, one call.
                    entry[3](entry[4])
                # Matches step(): an event cancelled by a listener after being
                # popped live still counts as a processed step (its callback is
                # suppressed, like the seed engine's Event.fire()).
                self._events_processed += 1
                fired += 1
            else:
                if until is not None and not self._stopped:
                    # Queue exhausted before the horizon: advance to it anyway so
                    # that repeated run(until=...) calls behave like a clock.
                    self._now = max(self._now, until)
        finally:
            self._running = False
        if truncated and raise_on_limit and not self._stopped:
            # Only live pending work counts as divergence; a queue holding
            # nothing but cancelled records is a completed simulation.
            for entry in queue:
                if len(entry) == 5 or not entry[3].cancelled:
                    raise SimulationDiverged(
                        "simulation exhausted its budget with live events pending "
                        f"(events_processed={self._events_processed}, now={self._now:.6g}, "
                        f"max_events={max_events}, max_time={until})",
                        self._events_processed,
                        self._now,
                        max_events,
                        until,
                    )
        return self._now

    def stop(self) -> None:
        """Request that the current :meth:`run` stop after the current event."""
        self._stopped = True

    def clear(self) -> None:
        """Drop every pending event.  The clock is not reset."""
        self._queue.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Simulator(now={self._now:.6g}, pending={self.pending}, "
            f"processed={self._events_processed})"
        )
