"""The discrete-event simulation engine.

:class:`Simulator` is a minimal but complete event scheduler: a binary heap of
:class:`~repro.sim.events.Event` objects ordered by ``(time, priority,
sequence)``.  All higher layers (channels, clocks, synchronizers, the election
algorithm) are expressed as callbacks scheduled on a single simulator
instance, so an entire distributed execution is one totally ordered sequence
of events, reproducible from a seed.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional

from repro.sim.events import Event, EventHandle, EventKind, make_event


class SimulationError(RuntimeError):
    """Raised for invalid scheduler usage (negative delays, re-running, ...)."""


class Simulator:
    """Deterministic discrete-event scheduler.

    Parameters
    ----------
    start_time:
        Initial value of the simulation clock.  Defaults to ``0.0``.

    Notes
    -----
    The simulator is intentionally ignorant of networks, nodes and messages;
    it only knows about timed callbacks.  Determinism is guaranteed because

    * events are ordered by ``(time, priority, sequence)`` where the sequence
      is assigned in scheduling order, and
    * the engine itself never consults a random number generator.

    Examples
    --------
    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(2.0, lambda: fired.append("b"))
    >>> _ = sim.schedule(1.0, lambda: fired.append("a"))
    >>> sim.run()
    >>> fired
    ['a', 'b']
    >>> sim.now
    2.0
    """

    def __init__(self, start_time: float = 0.0) -> None:
        self._now: float = float(start_time)
        self._queue: List[Event] = []
        self._running: bool = False
        self._stopped: bool = False
        self._events_processed: int = 0
        self._events_scheduled: int = 0
        self._listeners: List[Callable[[Event], None]] = []

    # ------------------------------------------------------------------ time

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events fired so far (excluding cancelled events)."""
        return self._events_processed

    @property
    def events_scheduled(self) -> int:
        """Number of events ever scheduled on this simulator."""
        return self._events_scheduled

    @property
    def pending(self) -> int:
        """Number of events currently in the queue (including cancelled ones)."""
        return len(self._queue)

    # ------------------------------------------------------------- scheduling

    def schedule(
        self,
        delay: float,
        callback: Callable[[], None],
        *,
        priority: int = 0,
        kind: EventKind = EventKind.GENERIC,
        payload: Optional[Any] = None,
    ) -> EventHandle:
        """Schedule ``callback`` to fire ``delay`` time units from now.

        Raises
        ------
        SimulationError
            If ``delay`` is negative or not a finite number.
        """
        if not (delay == delay) or delay in (float("inf"), float("-inf")):
            raise SimulationError(f"delay must be finite, got {delay!r}")
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        return self.schedule_at(
            self._now + delay, callback, priority=priority, kind=kind, payload=payload
        )

    def schedule_at(
        self,
        time: float,
        callback: Callable[[], None],
        *,
        priority: int = 0,
        kind: EventKind = EventKind.GENERIC,
        payload: Optional[Any] = None,
    ) -> EventHandle:
        """Schedule ``callback`` at an absolute simulation time.

        Raises
        ------
        SimulationError
            If ``time`` precedes the current simulation time.
        """
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time} before current time {self._now}"
            )
        event = make_event(time, callback, priority=priority, kind=kind, payload=payload)
        heapq.heappush(self._queue, event)
        self._events_scheduled += 1
        return EventHandle(event)

    def add_listener(self, listener: Callable[[Event], None]) -> None:
        """Register a hook invoked (with the event) just before each event fires.

        Listeners are the integration point for :class:`~repro.sim.trace.Tracer`
        and :class:`~repro.sim.monitor.MetricsCollector`.
        """
        self._listeners.append(listener)

    def remove_listener(self, listener: Callable[[Event], None]) -> None:
        """Remove a previously registered listener (no-op if absent)."""
        try:
            self._listeners.remove(listener)
        except ValueError:
            pass

    # ---------------------------------------------------------------- running

    def step(self) -> bool:
        """Fire the single next live event.

        Returns ``True`` if an event was fired, ``False`` if the queue is
        empty (cancelled events are silently discarded without counting as a
        step).
        """
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self._now = event.time
            for listener in self._listeners:
                listener(event)
            event.fire()
            self._events_processed += 1
            return True
        return False

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> float:
        """Run the simulation until exhaustion, a time horizon, or an event cap.

        Parameters
        ----------
        until:
            If given, stop once the next event would fire strictly after this
            time; the clock is advanced to ``until``.
        max_events:
            If given, stop after firing this many events (useful as a safety
            net against non-terminating algorithms).

        Returns
        -------
        float
            The simulation time when the run stopped.
        """
        if self._running:
            raise SimulationError("simulator is already running (re-entrant run())")
        self._running = True
        self._stopped = False
        fired = 0
        try:
            while self._queue and not self._stopped:
                if max_events is not None and fired >= max_events:
                    break
                event = self._queue[0]
                if event.cancelled:
                    heapq.heappop(self._queue)
                    continue
                if until is not None and event.time > until:
                    self._now = until
                    break
                if self.step():
                    fired += 1
            else:
                if until is not None and not self._stopped:
                    # Queue exhausted before the horizon: advance to it anyway so
                    # that repeated run(until=...) calls behave like a clock.
                    self._now = max(self._now, until)
        finally:
            self._running = False
        return self._now

    def stop(self) -> None:
        """Request that the current :meth:`run` stop after the current event."""
        self._stopped = True

    def clear(self) -> None:
        """Drop every pending event.  The clock is not reset."""
        self._queue.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Simulator(now={self._now:.6g}, pending={self.pending}, "
            f"processed={self._events_processed})"
        )
