"""Discrete-event simulation substrate.

The :mod:`repro.sim` package provides the execution substrate that every other
part of the library is built on:

* :class:`~repro.sim.engine.Simulator` -- a deterministic, seedable
  discrete-event scheduler with a priority-queue core.
* :class:`~repro.sim.events.Event` / :class:`~repro.sim.events.EventHandle` --
  scheduled callbacks with stable, reproducible ordering.
* :class:`~repro.sim.clock.LocalClock` -- per-node local clocks whose rates are
  bounded between ``s_low`` and ``s_high`` as required by Definition 1(2) of
  the ABE model.
* :class:`~repro.sim.rng.RandomSource` -- named, reproducible random streams so
  that message delays, clock drift and algorithmic coin flips are independent
  yet fully determined by a single master seed.
* :class:`~repro.sim.monitor.MetricsCollector` and
  :class:`~repro.sim.trace.Tracer` -- observation hooks used by the experiment
  harness.

The engine is callback based (not coroutine based): every scheduled event is a
plain callable, events with equal timestamps are executed in scheduling order,
and the whole execution is a pure function of the master seed.  That property
is what makes the Monte-Carlo estimates in the experiment harness reproducible.
"""

from repro.sim.engine import SimulationDiverged, SimulationError, Simulator
from repro.sim.events import Event, EventHandle, EventKind
from repro.sim.clock import (
    ClockDriftModel,
    ConstantRateDrift,
    LocalClock,
    RandomWalkDrift,
    SinusoidalDrift,
)
from repro.sim.rng import RandomSource, derive_seed
from repro.sim.process import (
    PeriodicProcess,
    SharedTickMembership,
    SharedTickProcess,
    TickProcess,
)
from repro.sim.monitor import Counter, MetricsCollector, TimeSeries
from repro.sim.trace import TraceEvent, Tracer

__all__ = [
    "Simulator",
    "SimulationDiverged",
    "SimulationError",
    "Event",
    "EventHandle",
    "EventKind",
    "LocalClock",
    "ClockDriftModel",
    "ConstantRateDrift",
    "RandomWalkDrift",
    "SinusoidalDrift",
    "RandomSource",
    "derive_seed",
    "PeriodicProcess",
    "SharedTickProcess",
    "SharedTickMembership",
    "TickProcess",
    "Counter",
    "MetricsCollector",
    "TimeSeries",
    "TraceEvent",
    "Tracer",
]
