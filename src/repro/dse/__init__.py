"""Design-space exploration: cached, early-killing search over scenario spaces.

The paper fixes its constants (activation probability ``a0``, timeout and
retransmission policy) and reports behaviour for those choices; this package
*searches* that space instead.  A :class:`~repro.dse.spec.SearchSpec` file
declares the axes (:class:`~repro.dse.space.SearchSpace`), the method
(:data:`~repro.dse.strategies.STRATEGIES` -- grid, random,
successive halving) and the goal; the
:class:`~repro.dse.optimizer.Optimizer` evaluates every round through the
fingerprint-keyed :class:`~repro.store.service.StudyService`, so searches
are incremental: warm re-runs execute zero trials, rung promotions execute
only newly added seeds, widened searches only the genuinely new points.
Surface: ``abe-repro optimize <search.json>``; see ``docs/DSE.md``.
"""

from repro.dse.optimizer import Optimizer, run_search
from repro.dse.report import GroupOutcome, PointOutcome, RoundOutcome, SearchReport, comparison_svg
from repro.dse.space import (
    DIMENSIONS,
    CategoricalDimension,
    Dimension,
    IntRangeDimension,
    LogUniformDimension,
    SearchSpace,
    point_key,
    point_label,
)
from repro.dse.spec import SearchGroup, SearchSpec, load_search
from repro.dse.strategies import (
    STRATEGIES,
    GridSearch,
    RandomSearch,
    SearchRound,
    SuccessiveHalving,
    build_strategy,
)

__all__ = [
    "DIMENSIONS",
    "STRATEGIES",
    "CategoricalDimension",
    "Dimension",
    "GridSearch",
    "GroupOutcome",
    "IntRangeDimension",
    "LogUniformDimension",
    "Optimizer",
    "PointOutcome",
    "RandomSearch",
    "RoundOutcome",
    "SearchGroup",
    "SearchReport",
    "SearchRound",
    "SearchSpace",
    "SearchSpec",
    "SuccessiveHalving",
    "build_strategy",
    "comparison_svg",
    "load_search",
    "point_key",
    "point_label",
    "run_search",
]
