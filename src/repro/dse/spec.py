"""The search document: everything one ``abe-repro optimize`` run needs.

A :class:`SearchSpec` is the DSE counterpart of a
:class:`~repro.scenarios.spec.StudySpec`: a frozen, JSON-round-trippable
file declaring *the question* (metric + goal), *the space*
(:class:`~repro.dse.space.SearchSpace`), *the method* (a strategy node
resolved against :data:`~repro.dse.strategies.STRATEGIES`), *the groups*
(per-group base overrides -- "per topology family" in the flagship study),
and *the randomness* (one master seed; every stochastic choice in the search
derives from its named ``"dse"`` stream).  ``load_search(path)`` is the CLI
entry point.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional, Tuple

from repro.dse.space import SearchSpace
from repro.dse.strategies import build_strategy
from repro.scenarios.spec import ScenarioSpec, SpecNode

__all__ = ["SearchGroup", "SearchSpec", "load_search"]


@dataclass(frozen=True)
class SearchGroup:
    """One named family the search optimizes independently.

    ``overrides`` are top-level :class:`~repro.scenarios.spec.ScenarioSpec`
    fields merged into the space's base scenario -- e.g. ``{"topology":
    {"kind": "uniring", "params": {"n": 16}}}`` makes this group the 16-ring
    family while the dimensions keep varying activation and delay knobs.
    """

    label: str
    overrides: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not isinstance(self.label, str) or not self.label:
            raise ValueError(f"group label must be a non-empty string, got {self.label!r}")
        overrides = dict(self.overrides)
        known = {f.name for f in dataclasses.fields(ScenarioSpec)}
        unknown = set(overrides) - known
        if unknown:
            raise ValueError(
                f"group {self.label!r} overrides unknown scenario field(s) "
                f"{sorted(unknown)}; known fields: {sorted(known)}"
            )
        object.__setattr__(self, "overrides", overrides)

    def apply(self, base: ScenarioSpec) -> ScenarioSpec:
        """The group's base scenario: overrides merged and re-validated."""
        if not self.overrides:
            return base
        data = base.to_dict()
        data.update(self.overrides)
        return ScenarioSpec.from_dict(data)

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"label": self.label}
        if self.overrides:
            out["overrides"] = dict(self.overrides)
        return out


@dataclass(frozen=True)
class SearchSpec:
    """A complete, reproducible design-space search.

    Attributes
    ----------
    name:
        Identifier; names the output directory and report.
    space:
        The searchable axes over one base scenario.
    strategy:
        ``{"kind": ..., "params": {...}}`` node resolved against
        :data:`~repro.dse.strategies.STRATEGIES`.
    metric:
        Result field optimized (a key of each point's aggregate ``metrics``
        block, compared by mean).
    goal:
        ``"min"`` or ``"max"``.
    seed:
        Master seed; all search randomness derives from its ``"dse"``
        stream, so the whole search is one reproducible artifact.
    trials:
        Default per-point trial budget for strategies that do not set their
        own (grid, random).
    groups:
        Families optimized independently; empty means one group named after
        the search with no overrides.
    stopping:
        Optional :class:`~repro.experiments.runner.AdaptiveStopping`
        mapping; the optimizer re-caps it at each round's budget, so early
        killing composes with rung promotion.
    title:
        Presentation only.
    """

    name: str
    space: SearchSpace
    strategy: SpecNode
    metric: str = "election_time"
    goal: str = "min"
    seed: int = 1
    trials: int = 4
    groups: Tuple[SearchGroup, ...] = ()
    stopping: Optional[Any] = None  # AdaptiveStopping or mapping of its fields
    title: str = ""

    def __post_init__(self) -> None:
        if not isinstance(self.name, str) or not self.name:
            raise ValueError(f"search name must be a non-empty string, got {self.name!r}")
        if isinstance(self.space, Mapping):
            object.__setattr__(self, "space", SearchSpace.from_dict(self.space))
        strategy = self.strategy
        if not isinstance(strategy, SpecNode):
            strategy = SpecNode.from_dict(strategy)
        object.__setattr__(self, "strategy", strategy)
        build_strategy(strategy)  # fail fast on unknown kinds / bad params
        if self.goal not in ("min", "max"):
            raise ValueError(f"goal must be 'min' or 'max', got {self.goal!r}")
        if self.trials < 1:
            raise ValueError(f"trials must be >= 1, got {self.trials}")
        if not isinstance(self.metric, str) or not self.metric:
            raise ValueError(f"metric must be a non-empty string, got {self.metric!r}")
        groups = tuple(
            group if isinstance(group, SearchGroup) else SearchGroup(**group)
            for group in self.groups
        )
        labels = [group.label for group in groups]
        if len(set(labels)) != len(labels):
            raise ValueError(f"duplicate group label(s) in {labels}")
        object.__setattr__(self, "groups", groups)
        if self.stopping is not None:
            from repro.experiments.runner import AdaptiveStopping  # late: cycle

            if isinstance(self.stopping, Mapping):
                object.__setattr__(self, "stopping", AdaptiveStopping(**self.stopping))
            elif not isinstance(self.stopping, AdaptiveStopping):
                raise ValueError(
                    f"stopping must be an AdaptiveStopping or mapping, got {self.stopping!r}"
                )

    def resolved_groups(self) -> Tuple[SearchGroup, ...]:
        """The groups, or the implicit whole-search group when none declared."""
        if self.groups:
            return self.groups
        return (SearchGroup(label=self.name),)

    # ------------------------------------------------------------ round-trip

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "name": self.name,
            "space": self.space.to_dict(),
            "strategy": self.strategy.to_dict(),
            "metric": self.metric,
            "goal": self.goal,
            "seed": self.seed,
            "trials": self.trials,
        }
        if self.groups:
            out["groups"] = [group.to_dict() for group in self.groups]
        if self.stopping is not None:
            out["stopping"] = dataclasses.asdict(self.stopping)
        if self.title:
            out["title"] = self.title
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SearchSpec":
        if not isinstance(data, Mapping):
            raise ValueError(f"search spec must be a mapping, got {data!r}")
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                f"unknown search key(s) {sorted(unknown)}; known keys: {sorted(known)}"
            )
        if "space" not in data or "strategy" not in data:
            raise ValueError("a search spec needs 'space' and 'strategy'")
        return cls(**{key: data[key] for key in data})


def load_search(path: str) -> SearchSpec:
    """Parse one ``*.json`` search document from disk."""
    with open(path, "r", encoding="utf-8") as handle:
        try:
            data = json.load(handle)
        except json.JSONDecodeError as error:
            raise ValueError(f"{path}: not valid JSON ({error})") from None
    try:
        return SearchSpec.from_dict(data)
    except ValueError as error:
        raise ValueError(f"{path}: {error}") from None
