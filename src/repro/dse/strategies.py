"""Search strategies: round generators behind the :data:`STRATEGIES` registry.

A strategy decides *which points to evaluate at which trial budget*, one
:class:`SearchRound` at a time; it never executes anything.  The
:class:`~repro.dse.optimizer.Optimizer` drives the loop::

    round = strategy.first_round(space, rng, default_trials)
    while round is not None:
        losses = evaluate(round)            # via StudyService, cached
        round = strategy.next_round(space, rng, round, losses)

``losses`` align with ``round.points`` and are *lower-is-better* (the
optimizer negates maximization metrics before handing them over), so
strategies rank without knowing the metric.  Every random draw comes from
the ``rng`` the optimizer passes in -- a :class:`random.Random` seeded from
the search's named ``"dse"`` stream -- so a whole search is one reproducible
artifact: same seed, same rounds, same winner.

Three built-ins:

* ``grid`` -- exhaustive Cartesian product, one round;
* ``random`` -- ``samples`` distinct seeded draws, one round;
* ``successive-halving`` -- ASHA-style rungs: start wide at a small budget,
  promote the top ``1/eta`` fraction to an ``eta``-times larger budget,
  repeat.  Losers are killed after the cheap rung; survivors are re-submitted
  at the bigger budget, where the trials-independent store keys
  (:func:`~repro.store.fingerprint.spec_fingerprint`) make the promotion
  incremental -- only the *new* seeds execute.

Strategies resolve through :data:`STRATEGIES` (the same string-keyed
:class:`~repro.scenarios.registry.Registry` as topologies and delay models),
so a search file names its strategy as ``{"kind": "successive-halving",
"params": {...}}`` and third-party strategies plug in by registration.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.dse.space import SearchSpace, point_key
from repro.scenarios.registry import Registry
from repro.scenarios.spec import SpecNode

__all__ = [
    "STRATEGIES",
    "SearchRound",
    "GridSearch",
    "RandomSearch",
    "SuccessiveHalving",
    "build_strategy",
]

#: Ceiling on rejected duplicate draws per requested sample; a space smaller
#: than the requested sample count stops growing instead of spinning forever.
_MAX_DRAW_FACTOR = 64


@dataclass(frozen=True)
class SearchRound:
    """One batch of points to evaluate at one shared trial budget."""

    index: int
    budget: int
    points: Tuple[Dict[str, Any], ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "points", tuple(dict(point) for point in self.points))
        if self.budget < 1:
            raise ValueError(f"round budget must be >= 1, got {self.budget}")
        if not self.points:
            raise ValueError("a search round needs at least one point")


def _rank(
    points: Sequence[Mapping[str, Any]], losses: Sequence[float]
) -> List[Dict[str, Any]]:
    """Points ordered best-first; ties broken by canonical point key.

    The key tiebreak (not input order) keeps the ranking -- and therefore
    the winner -- invariant under point reordering, so two searches that
    enumerate the same set differently still agree.
    """
    paired = sorted(
        zip(points, losses), key=lambda pair: (pair[1], point_key(pair[0]))
    )
    return [dict(point) for point, _ in paired]


def _distinct_samples(space: SearchSpace, rng: Any, count: int) -> List[Dict[str, Any]]:
    """``count`` distinct draws (fewer if the space is smaller)."""
    seen: set = set()
    points: List[Dict[str, Any]] = []
    attempts = 0
    while len(points) < count and attempts < count * _MAX_DRAW_FACTOR:
        attempts += 1
        point = space.sample(rng)
        key = point_key(point)
        if key in seen:
            continue
        seen.add(key)
        points.append(point)
    return points


@dataclass(frozen=True)
class GridSearch:
    """Exhaustive search: every grid point, one round, one budget.

    ``trials=None`` defers to the search document's default budget.  On a
    non-exhaustive space (a log-uniform axis) the "grid" is the axis's
    geometric discretization -- still deterministic, no randomness consumed.
    """

    trials: Optional[int] = None
    kind = "grid"
    description = "exhaustive Cartesian grid, one round"

    def __post_init__(self) -> None:
        if self.trials is not None and self.trials < 1:
            raise ValueError(f"trials must be >= 1, got {self.trials}")

    def first_round(self, space: SearchSpace, rng: Any, default_trials: int) -> SearchRound:
        return SearchRound(
            index=0,
            budget=self.trials if self.trials is not None else default_trials,
            points=tuple(space.grid()),
        )

    def next_round(
        self,
        space: SearchSpace,
        rng: Any,
        previous: SearchRound,
        losses: Sequence[float],
    ) -> Optional[SearchRound]:
        return None


@dataclass(frozen=True)
class RandomSearch:
    """Seeded random search: ``samples`` distinct draws, one round."""

    samples: int = 8
    trials: Optional[int] = None
    kind = "random"
    description = "seeded random draws, one round"

    def __post_init__(self) -> None:
        if self.samples < 1:
            raise ValueError(f"samples must be >= 1, got {self.samples}")
        if self.trials is not None and self.trials < 1:
            raise ValueError(f"trials must be >= 1, got {self.trials}")

    def first_round(self, space: SearchSpace, rng: Any, default_trials: int) -> SearchRound:
        return SearchRound(
            index=0,
            budget=self.trials if self.trials is not None else default_trials,
            points=tuple(_distinct_samples(space, rng, self.samples)),
        )

    def next_round(
        self,
        space: SearchSpace,
        rng: Any,
        previous: SearchRound,
        losses: Sequence[float],
    ) -> Optional[SearchRound]:
        return None


@dataclass(frozen=True)
class SuccessiveHalving:
    """ASHA-style successive halving: wide and cheap, then narrow and deep.

    Rung ``r`` evaluates its configurations at ``base_trials * eta**r``
    trials; the top ``ceil(n / eta)`` (by loss, ties broken by canonical
    point key) are promoted to rung ``r + 1``.  Rung budgets therefore
    increase strictly, survivors are always a subset of the previous rung,
    and -- because store keys ignore the trial count -- a promoted
    configuration re-executes only the seeds its new budget adds.

    Attributes
    ----------
    candidates:
        Configurations in rung 0.  An exhaustive space no larger than this
        is enumerated outright (the strategy degrades gracefully to "grid
        with early killing"); otherwise ``candidates`` distinct random
        draws.
    eta:
        Promotion factor: keep ``1/eta`` of each rung, multiply the budget
        by ``eta``.
    base_trials:
        Rung-0 trial budget.
    rungs:
        Total rung count; ``None`` keeps halving until a single
        configuration remains (so the winner is always evaluated at the
        deepest budget alone).
    """

    candidates: int = 8
    eta: int = 2
    base_trials: int = 1
    rungs: Optional[int] = None
    kind = "successive-halving"
    description = "ASHA rungs: promote top 1/eta to eta-times the budget"

    def __post_init__(self) -> None:
        if self.candidates < 2:
            raise ValueError(f"candidates must be >= 2, got {self.candidates}")
        if self.eta < 2:
            raise ValueError(f"eta must be >= 2, got {self.eta}")
        if self.base_trials < 1:
            raise ValueError(f"base_trials must be >= 1, got {self.base_trials}")
        if self.rungs is not None and self.rungs < 1:
            raise ValueError(f"rungs must be >= 1, got {self.rungs}")

    def first_round(self, space: SearchSpace, rng: Any, default_trials: int) -> SearchRound:
        if space.exhaustive() and space.size() <= self.candidates:
            points = space.grid()
        else:
            points = _distinct_samples(space, rng, self.candidates)
        return SearchRound(index=0, budget=self.base_trials, points=tuple(points))

    def next_round(
        self,
        space: SearchSpace,
        rng: Any,
        previous: SearchRound,
        losses: Sequence[float],
    ) -> Optional[SearchRound]:
        if len(previous.points) <= 1:
            return None
        if self.rungs is not None and previous.index + 1 >= self.rungs:
            return None
        keep = max(1, math.ceil(len(previous.points) / self.eta))
        survivors = _rank(previous.points, losses)[:keep]
        return SearchRound(
            index=previous.index + 1,
            budget=previous.budget * self.eta,
            points=tuple(survivors),
        )


STRATEGIES = Registry("search strategy", "search strategies")
STRATEGIES.register("grid", GridSearch)
STRATEGIES.register("random", RandomSearch)
STRATEGIES.register("successive-halving", SuccessiveHalving)


def build_strategy(node: Any) -> Any:
    """Resolve a strategy from a :class:`SpecNode` (or its mapping form)."""
    if not isinstance(node, SpecNode):
        node = SpecNode.from_dict(node)
    return STRATEGIES.build(node)
