"""The search driver: strategy rounds executed through :class:`StudyService`.

The :class:`Optimizer` owns the loop the strategy modules only describe.
For each group it derives one named random stream
(``derive_seed(seed, "dse/<group>")``), asks the strategy for rounds, and
submits every round as a :class:`~repro.scenarios.spec.StudySpec` to a
:class:`~repro.store.service.StudyService` over the caller's
:class:`~repro.store.result_store.ResultStore`.  That one design decision
buys the whole caching story for free:

* every evaluated point is fingerprint-keyed, so re-running a search
  against a warm store executes **zero** trials and reproduces the report's
  deterministic block byte for byte;
* a successive-halving promotion re-submits a surviving configuration at a
  larger budget, and because store keys ignore the trial count
  (:func:`~repro.store.fingerprint.spec_fingerprint`), only the newly added
  seeds execute -- the rung is incremental, not from scratch;
* widening a search (more samples, more rungs, a new group) re-executes
  only the genuinely new points.

After the last round the group's winner is re-read from the final rung, and
the paper's fixed constants -- the group's base scenario, untouched -- are
evaluated at the same final budget as the ``baseline`` row, which is what
the winner table and comparison figure report against.
"""

from __future__ import annotations

import random
import time
from typing import Any, Callable, Dict, List, Optional

from repro.dse.report import GroupOutcome, PointOutcome, RoundOutcome, SearchReport
from repro.dse.space import SearchSpace, point_key
from repro.dse.spec import SearchGroup, SearchSpec
from repro.dse.strategies import SearchRound, build_strategy
from repro.scenarios.spec import ScenarioSpec, StudySpec
from repro.sim.rng import derive_seed
from repro.store.result_store import ResultStore
from repro.store.service import StudyService

__all__ = ["Optimizer", "run_search"]

_INFINITY = float("inf")


class Optimizer:
    """Run one :class:`~repro.dse.spec.SearchSpec` to a :class:`SearchReport`.

    Parameters
    ----------
    search:
        The search document.
    store:
        Persistent result store; every trial of every round is keyed here.
    workers:
        Worker processes for the shared pool (execution is bit-identical
        for any worker count -- :class:`AdaptiveStopping` batches and the
        per-seed store keys are both worker-independent).
    policy:
        Optional :class:`~repro.experiments.resilience.ExecutionPolicy`
        installed around execution.
    progress:
        ``callable(str)`` for one-line progress messages.
    """

    def __init__(
        self,
        search: SearchSpec,
        store: ResultStore,
        *,
        workers: int = 1,
        policy: Optional[Any] = None,
        progress: Optional[Callable[[str], None]] = None,
    ) -> None:
        self.search = search
        self.store = store
        self.workers = max(1, int(workers))
        self.policy = policy
        self.progress = progress or (lambda message: None)

    # ------------------------------------------------------------------- API

    def run(self) -> SearchReport:
        """Execute every group's search; returns the complete report."""
        search = self.search
        report = SearchReport(
            name=search.name,
            title=search.title,
            metric=search.metric,
            goal=search.goal,
            seed=search.seed,
            strategy=search.strategy.kind,
        )
        started = time.perf_counter()
        with StudyService(
            self.store,
            workers=self.workers,
            policy=self.policy,
            progress=self.progress,
        ) as service:
            for group in search.resolved_groups():
                report.groups.append(self._run_group(service, group))
                report.lookups = self.store.hits + self.store.misses
                report.hits = self.store.hits
        report.trials_executed = report.lookups - report.hits
        report.elapsed = time.perf_counter() - started
        return report

    # ----------------------------------------------------------- group search

    def _run_group(self, service: StudyService, group: SearchGroup) -> GroupOutcome:
        search = self.search
        space = search.space.with_base(group.apply(search.space.base))
        strategy = build_strategy(search.strategy)
        # The group's named stream: every random choice this group's search
        # makes derives from (master seed, "dse/<label>") -- independent of
        # other groups and stable under group reordering.
        rng = random.Random(derive_seed(search.seed, f"dse/{group.label}"))
        self.progress(f"group {group.label}: searching with {search.strategy.kind!r}")

        rounds: List[RoundOutcome] = []
        current = strategy.first_round(space, rng, search.trials)
        final: Optional[RoundOutcome] = None
        while current is not None:
            outcome = self._run_round(service, group, space, current)
            rounds.append(outcome)
            final = outcome
            losses = [self._loss(point.value) for point in outcome.points]
            current = strategy.next_round(space, rng, current, losses)

        assert final is not None  # strategies must yield at least one round
        winner = min(
            final.points, key=lambda outcome: (self._loss(outcome.value), point_key(outcome.point))
        )
        baseline = self._run_baseline(service, group, space, final.budget)
        self.progress(
            f"group {group.label}: winner {winner.label!r} "
            f"({search.metric} {winner.value!r} vs baseline {baseline.value!r})"
        )
        return GroupOutcome(label=group.label, rounds=rounds, winner=winner, baseline=baseline)

    def _run_round(
        self,
        service: StudyService,
        group: SearchGroup,
        space: SearchSpace,
        round_: SearchRound,
    ) -> RoundOutcome:
        specs = tuple(
            self._budgeted(space.materialize(point), round_.budget)
            for point in round_.points
        )
        study = StudySpec(
            name=f"{self.search.name}/{group.label}/rung{round_.index}",
            points=specs,
            metric=self.search.metric,
        )
        job = self._execute(service, study)
        outcomes = [
            PointOutcome(
                point=dict(point),
                label=spec.label,
                value=self._metric_mean(point_report.summary),
                trials=round_.budget,
            )
            for point, spec, point_report in zip(round_.points, specs, job.points)
        ]
        return RoundOutcome(index=round_.index, budget=round_.budget, points=outcomes)

    def _run_baseline(
        self,
        service: StudyService,
        group: SearchGroup,
        space: SearchSpace,
        budget: int,
    ) -> PointOutcome:
        spec = self._budgeted(space.base.replace(label="baseline"), budget)
        study = StudySpec(
            name=f"{self.search.name}/{group.label}/baseline",
            points=(spec,),
            metric=self.search.metric,
        )
        job = self._execute(service, study)
        return PointOutcome(
            point={},
            label="baseline",
            value=self._metric_mean(job.points[0].summary),
            trials=budget,
        )

    # -------------------------------------------------------------- mechanics

    def _budgeted(self, spec: ScenarioSpec, budget: int) -> ScenarioSpec:
        """A point spec at one rung's budget (stopping rule re-capped)."""
        changes: Dict[str, Any] = {"trials": budget}
        if self.search.stopping is not None:
            changes["stopping"] = self.search.stopping.with_budget(budget)
        return spec.replace(**changes)

    def _execute(self, service: StudyService, study: StudySpec) -> Any:
        job_id, _ = service.submit(study, source=f"dse:{self.search.name}")
        reports = service.run_pending()
        for job in reports:
            if job.job_id == job_id:
                return job
        # A coalesced duplicate of an already-queued study drains with the
        # original's id; the single queued entry is still the one we want.
        return reports[-1]

    def _metric_mean(self, summary: Dict[str, Any]) -> Optional[float]:
        stats = summary.get("metrics", {}).get(self.search.metric)
        if not isinstance(stats, dict):
            return None
        return stats.get("mean")

    def _loss(self, value: Optional[float]) -> float:
        """Lower-is-better ranking value; a missing metric never wins."""
        if value is None:
            return _INFINITY
        return -value if self.search.goal == "max" else value


def run_search(
    search: SearchSpec,
    store: ResultStore,
    *,
    workers: int = 1,
    policy: Optional[Any] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> SearchReport:
    """One-call convenience: :class:`Optimizer` construct-and-run."""
    return Optimizer(
        search, store, workers=workers, policy=policy, progress=progress
    ).run()
