"""Search outcomes: the report document, the winner table, the figure.

:class:`SearchReport` mirrors the :class:`~repro.store.service.JobReport`
export discipline: ``to_dict()`` keeps everything the search *computed*
(groups, rounds, per-point metric values, winners, baselines) in a
deterministic ``"groups"`` block, with cache statistics and timing in
separate blocks -- so a cold and a warm run of the same search produce
byte-identical ``"groups"`` (and byte-identical figures) while their
``"cache"`` blocks tell the zero-redundant-compute story.

:func:`comparison_svg` renders the flagship deliverable without any
plotting dependency: a grouped-bar SVG comparing the paper's fixed
constants (baseline) against each group's search winner.  All geometry is
formatted with fixed precision, so the file is reproducible byte for byte.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

__all__ = [
    "PointOutcome",
    "RoundOutcome",
    "GroupOutcome",
    "SearchReport",
    "comparison_svg",
]


def _value_dict(value: Optional[float]) -> Optional[float]:
    # Losses are +inf internally when a point never produced the metric;
    # JSON has no inf, so the exported value is null.
    if value is None or value != value or value in (float("inf"), float("-inf")):
        return None
    return value


@dataclass(frozen=True)
class PointOutcome:
    """One evaluated configuration at one budget: assignments and metric mean."""

    point: Dict[str, Any]
    label: str
    value: Optional[float]
    trials: int

    def to_dict(self) -> Dict[str, Any]:
        return {
            "point": dict(self.point),
            "label": self.label,
            "value": _value_dict(self.value),
            "trials": self.trials,
        }


@dataclass(frozen=True)
class RoundOutcome:
    """One strategy round: shared budget, outcomes in evaluation order."""

    index: int
    budget: int
    points: List[PointOutcome] = field(default_factory=list)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "index": self.index,
            "budget": self.budget,
            "points": [outcome.to_dict() for outcome in self.points],
        }


@dataclass(frozen=True)
class GroupOutcome:
    """One group's full search: every round, the winner, the paper baseline."""

    label: str
    rounds: List[RoundOutcome]
    winner: PointOutcome
    baseline: PointOutcome

    def evaluations(self) -> int:
        """Point evaluations across all rounds (baseline excluded)."""
        return sum(len(round_.points) for round_ in self.rounds)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "label": self.label,
            "rounds": [round_.to_dict() for round_ in self.rounds],
            "winner": self.winner.to_dict(),
            "baseline": self.baseline.to_dict(),
        }


@dataclass
class SearchReport:
    """Everything one ``abe-repro optimize`` run produced."""

    name: str
    title: str
    metric: str
    goal: str
    seed: int
    strategy: str
    groups: List[GroupOutcome] = field(default_factory=list)
    lookups: int = 0
    hits: int = 0
    trials_executed: int = 0
    elapsed: float = 0.0

    def to_dict(self) -> Dict[str, Any]:
        from repro.store.fingerprint import code_version

        return {
            "name": self.name,
            "title": self.title,
            "metric": self.metric,
            "goal": self.goal,
            "seed": self.seed,
            "strategy": self.strategy,
            "code_version": code_version(),
            # The deterministic block: compare two runs on ["groups"] to
            # check byte-identity of what the search concluded.
            "groups": [group.to_dict() for group in self.groups],
            "cache": {
                "lookups": self.lookups,
                "hits": self.hits,
                "misses": self.lookups - self.hits,
                "trials_executed": self.trials_executed,
            },
            "timing": {"elapsed_seconds": self.elapsed},
        }

    # ------------------------------------------------------------ winner table

    def winner_table(self) -> str:
        """Aligned per-group winner table for the terminal."""
        header = ["group", "winner", self.metric, "baseline", "change"]
        rows: List[List[str]] = [header]
        for group in self.groups:
            rows.append(
                [
                    group.label,
                    group.winner.label,
                    _format_value(group.winner.value),
                    _format_value(group.baseline.value),
                    _format_change(group.winner.value, group.baseline.value, self.goal),
                ]
            )
        widths = [max(len(row[col]) for row in rows) for col in range(len(header))]
        lines = []
        for index, row in enumerate(rows):
            lines.append("  ".join(cell.ljust(width) for cell, width in zip(row, widths)).rstrip())
            if index == 0:
                lines.append("  ".join("-" * width for width in widths))
        return "\n".join(lines)


def _format_value(value: Optional[float]) -> str:
    if _value_dict(value) is None:
        return "n/a"
    return format(value, ".6g")


def _format_change(
    winner: Optional[float], baseline: Optional[float], goal: str
) -> str:
    winner, baseline = _value_dict(winner), _value_dict(baseline)
    if winner is None or baseline is None or baseline == 0:
        return "n/a"
    delta = (winner - baseline) / abs(baseline) * 100.0
    sign = "+" if delta > 0 else ""
    return f"{sign}{format(delta, '.1f')}%"


# ------------------------------------------------------------------ the figure

#: Data-viz reference palette (light mode): categorical slots 1 and 2, chart
#: chrome inks.  Baseline wears slot 1, the search winner slot 2; all text
#: wears ink tokens, never a series color.
_SURFACE = "#fcfcfb"
_SERIES_BASELINE = "#2a78d6"
_SERIES_WINNER = "#eb6834"
_INK_PRIMARY = "#0b0b0b"
_INK_SECONDARY = "#52514e"
_INK_MUTED = "#898781"
_GRIDLINE = "#e1e0d9"
_AXIS = "#c3c2b7"
_FONT = 'font-family="system-ui, -apple-system, sans-serif"'


def _fmt(number: float) -> str:
    """Fixed-precision coordinate formatting: byte-identical across runs."""
    return format(number, ".2f")


def _rounded_bar(x: float, y: float, width: float, height: float, color: str) -> str:
    """A bar anchored to the baseline with a 4px-rounded top (mark spec)."""
    if height <= 0:
        return ""
    radius = min(4.0, width / 2.0, height / 2.0)
    return (
        f'<path d="M {_fmt(x)} {_fmt(y + height)} '
        f"L {_fmt(x)} {_fmt(y + radius)} "
        f"Q {_fmt(x)} {_fmt(y)} {_fmt(x + radius)} {_fmt(y)} "
        f"L {_fmt(x + width - radius)} {_fmt(y)} "
        f"Q {_fmt(x + width)} {_fmt(y)} {_fmt(x + width)} {_fmt(y + radius)} "
        f'L {_fmt(x + width)} {_fmt(y + height)} Z" fill="{color}"/>'
    )


def _nice_ticks(top: float, count: int = 4) -> List[float]:
    """``count`` evenly spaced ticks from 0 to a rounded-up "nice" top."""
    import math

    if top <= 0:
        return [0.0, 1.0]
    raw = top / count
    exponent = math.floor(math.log10(raw))
    base = raw / 10.0 ** exponent
    step = 10.0 * 10.0 ** exponent
    for nice in (1.0, 2.0, 2.5, 5.0):
        if base <= nice:
            step = nice * 10.0 ** exponent
            break
    return [step * index for index in range(count + 1)]


def comparison_svg(report: SearchReport, width: int = 680, height: int = 380) -> str:
    """Grouped-bar SVG: paper baseline vs search winner, one pair per group."""
    margin_left, margin_right, margin_top, margin_bottom = 64.0, 20.0, 64.0, 56.0
    plot_w = width - margin_left - margin_right
    plot_h = height - margin_top - margin_bottom
    groups = report.groups
    values: List[float] = []
    for group in groups:
        for outcome in (group.baseline, group.winner):
            value = _value_dict(outcome.value)
            if value is not None:
                values.append(value)
    ticks = _nice_ticks(max(values) if values else 1.0)
    top = ticks[-1]

    def y_of(value: float) -> float:
        return margin_top + plot_h * (1.0 - value / top)

    parts: List[str] = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" height="{height}" '
        f'viewBox="0 0 {width} {height}" role="img" '
        f'aria-label="{report.metric} per group: baseline vs search winner">',
        f'<rect width="{width}" height="{height}" fill="{_SURFACE}"/>',
        f'<text x="{_fmt(margin_left)}" y="24" {_FONT} font-size="15" '
        f'font-weight="600" fill="{_INK_PRIMARY}">'
        f"{report.title or report.name}</text>",
        f'<text x="{_fmt(margin_left)}" y="42" {_FONT} font-size="12" '
        f'fill="{_INK_SECONDARY}">mean {report.metric} -- paper constants vs '
        f"search winner ({report.strategy})</text>",
    ]
    # Gridlines + y-axis tick labels (hairline grid, muted ink).
    for tick in ticks:
        y = y_of(tick)
        parts.append(
            f'<line x1="{_fmt(margin_left)}" y1="{_fmt(y)}" '
            f'x2="{_fmt(margin_left + plot_w)}" y2="{_fmt(y)}" '
            f'stroke="{_GRIDLINE}" stroke-width="1"/>'
        )
        parts.append(
            f'<text x="{_fmt(margin_left - 8)}" y="{_fmt(y + 4)}" {_FONT} '
            f'font-size="11" text-anchor="end" fill="{_INK_MUTED}">'
            f"{format(tick, '.6g')}</text>"
        )
    # Bars: one baseline/winner pair per group, 2px surface gap inside a pair.
    slot = plot_w / max(len(groups), 1)
    bar_w = min(44.0, slot / 3.0)
    for index, group in enumerate(groups):
        center = margin_left + slot * (index + 0.5)
        for offset, outcome, color in (
            (-bar_w - 1.0, group.baseline, _SERIES_BASELINE),
            (1.0, group.winner, _SERIES_WINNER),
        ):
            value = _value_dict(outcome.value)
            x = center + offset
            if value is None:
                parts.append(
                    f'<text x="{_fmt(x + bar_w / 2)}" y="{_fmt(y_of(0) - 6)}" {_FONT} '
                    f'font-size="10" text-anchor="middle" fill="{_INK_MUTED}">n/a</text>'
                )
                continue
            y = y_of(value)
            parts.append(_rounded_bar(x, y, bar_w, y_of(0) - y, color))
            parts.append(
                f'<text x="{_fmt(x + bar_w / 2)}" y="{_fmt(y - 6)}" {_FONT} '
                f'font-size="10" text-anchor="middle" fill="{_INK_SECONDARY}">'
                f"{format(value, '.6g')}</text>"
            )
        parts.append(
            f'<text x="{_fmt(center)}" y="{_fmt(margin_top + plot_h + 18)}" {_FONT} '
            f'font-size="11" text-anchor="middle" fill="{_INK_SECONDARY}">'
            f"{group.label}</text>"
        )
    # Axis baseline.
    parts.append(
        f'<line x1="{_fmt(margin_left)}" y1="{_fmt(y_of(0))}" '
        f'x2="{_fmt(margin_left + plot_w)}" y2="{_fmt(y_of(0))}" '
        f'stroke="{_AXIS}" stroke-width="1"/>'
    )
    # Legend (two series: always present, text in ink).
    legend_x = width - margin_right - 200.0
    for offset, label, color in (
        (0.0, "paper constants", _SERIES_BASELINE),
        (110.0, "search winner", _SERIES_WINNER),
    ):
        parts.append(
            f'<rect x="{_fmt(legend_x + offset)}" y="16" width="10" height="10" '
            f'rx="2" fill="{color}"/>'
        )
        parts.append(
            f'<text x="{_fmt(legend_x + offset + 15)}" y="25" {_FONT} '
            f'font-size="11" fill="{_INK_SECONDARY}">{label}</text>'
        )
    parts.append("</svg>")
    return "\n".join(part for part in parts if part) + "\n"
