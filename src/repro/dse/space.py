"""Searchable parameter spaces over :class:`~repro.scenarios.spec.ScenarioSpec`.

A :class:`SearchSpace` is a frozen, JSON-round-trippable declaration of *which
knobs a search may turn*: one base scenario (the paper's fixed constants) plus
an ordered tuple of :class:`Dimension`\\ s, each naming a dotted path into the
scenario document (``"a0"``, ``"topology.params.n"``,
``"retransmission.success_probability"``, ``"delay"``) and the values that
path may take.  Three dimension kinds cover the spec surface:

* ``categorical`` -- an explicit choice list; values are arbitrary JSON
  (numbers, booleans, whole ``{"kind": ..., "params": ...}`` nodes, or
  ``null`` to mean "the spec default"), so delay models, schedules and
  retransmission policies are searchable wholesale;
* ``int-range`` -- an inclusive stepped integer range (ring sizes, rounds);
* ``log-uniform`` -- a positive real interval sampled log-uniformly
  (activation probabilities, timeout constants), with a geometric
  ``points``-value grid for exhaustive search.

``materialize(point)`` assigns one value per dimension into the base
scenario's canonical dict form and re-validates through
:meth:`~repro.scenarios.spec.ScenarioSpec.from_dict`, so an out-of-range or
ill-typed point fails with the spec layer's own error before any simulation
runs.  Dimension kinds are resolved through the string-keyed
:data:`DIMENSIONS` registry (the same
:class:`~repro.scenarios.registry.Registry` machinery as topologies and delay
models), so third-party code can register new kinds before loading a search
file.
"""

from __future__ import annotations

import dataclasses
import itertools
import json
import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Tuple

from repro.scenarios.registry import Registry
from repro.scenarios.spec import ScenarioSpec

__all__ = [
    "DIMENSIONS",
    "Dimension",
    "CategoricalDimension",
    "IntRangeDimension",
    "LogUniformDimension",
    "SearchSpace",
    "dimension_from_dict",
    "point_key",
    "point_label",
]


def _split_field(path: str) -> Tuple[str, ...]:
    parts = tuple(path.split("."))
    if not path or not all(parts):
        raise ValueError(f"dimension field must be a dotted path, got {path!r}")
    return parts


@dataclass(frozen=True)
class Dimension:
    """One searchable axis: a name, a spec field path, and a value set.

    Subclasses supply ``kind`` (the registry key), :meth:`values` (the
    exhaustive grid) and :meth:`sample` (one random draw).  ``exact`` tells
    strategies whether :meth:`values` enumerates the axis completely
    (categorical, int-range) or merely discretizes it (log-uniform).
    """

    name: str
    field: str
    kind = ""  # class attribute, overridden per subclass
    exact = True

    def __post_init__(self) -> None:
        if not isinstance(self.name, str) or not self.name:
            raise ValueError(f"dimension name must be a non-empty string, got {self.name!r}")
        top = _split_field(self.field)[0]
        known = {f.name for f in dataclasses.fields(ScenarioSpec)}
        if top not in known:
            raise ValueError(
                f"dimension {self.name!r} targets unknown scenario field {top!r} "
                f"(path {self.field!r}); known fields: {sorted(known)}"
            )

    # Subclass API -----------------------------------------------------------

    def values(self) -> List[Any]:
        raise NotImplementedError

    def sample(self, rng: Any) -> Any:
        raise NotImplementedError

    def _params(self) -> Dict[str, Any]:
        """Kind-specific parameters for :meth:`to_dict` (subclasses extend)."""
        raise NotImplementedError

    # Round-trip -------------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"name": self.name, "kind": self.kind, "field": self.field}
        out.update(self._params())
        return out


@dataclass(frozen=True)
class CategoricalDimension(Dimension):
    """An explicit, ordered choice list (JSON values, ``None`` allowed)."""

    choices: Tuple[Any, ...] = ()
    kind = "categorical"
    description = "explicit choice list (numbers, spec nodes, null)"

    def __post_init__(self) -> None:
        super().__post_init__()
        object.__setattr__(self, "choices", tuple(self.choices))
        if not self.choices:
            raise ValueError(f"dimension {self.name!r} needs at least one choice")

    def values(self) -> List[Any]:
        return list(self.choices)

    def sample(self, rng: Any) -> Any:
        return self.choices[rng.randrange(len(self.choices))]

    def _params(self) -> Dict[str, Any]:
        return {"choices": list(self.choices)}


@dataclass(frozen=True)
class IntRangeDimension(Dimension):
    """An inclusive stepped integer range ``low, low+step, ..., <= high``."""

    low: int = 0
    high: int = 0
    step: int = 1
    kind = "int-range"
    exact = True
    description = "inclusive stepped integer range"

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.step < 1:
            raise ValueError(f"dimension {self.name!r}: step must be >= 1, got {self.step}")
        if self.high < self.low:
            raise ValueError(
                f"dimension {self.name!r}: high ({self.high}) must be >= low ({self.low})"
            )

    def values(self) -> List[int]:
        return list(range(self.low, self.high + 1, self.step))

    def sample(self, rng: Any) -> int:
        count = (self.high - self.low) // self.step + 1
        return self.low + self.step * rng.randrange(count)

    def _params(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"low": self.low, "high": self.high}
        if self.step != 1:
            out["step"] = self.step
        return out


@dataclass(frozen=True)
class LogUniformDimension(Dimension):
    """A positive real interval sampled log-uniformly.

    :meth:`values` returns a geometric ``points``-value grid (endpoints
    included), which is the exhaustive-search discretization of the axis;
    random and successive-halving search draw fresh log-uniform samples
    instead.
    """

    low: float = 0.0
    high: float = 0.0
    points: int = 3
    kind = "log-uniform"
    exact = False
    description = "positive real interval, sampled log-uniformly"

    def __post_init__(self) -> None:
        super().__post_init__()
        if not (0.0 < self.low < self.high):
            raise ValueError(
                f"dimension {self.name!r}: need 0 < low < high, got "
                f"low={self.low}, high={self.high}"
            )
        if self.points < 2:
            raise ValueError(f"dimension {self.name!r}: points must be >= 2, got {self.points}")

    def values(self) -> List[float]:
        ratio = self.high / self.low
        return [
            self.low * ratio ** (index / (self.points - 1)) for index in range(self.points)
        ]

    def sample(self, rng: Any) -> float:
        return math.exp(rng.uniform(math.log(self.low), math.log(self.high)))

    def _params(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"low": self.low, "high": self.high}
        if self.points != 3:
            out["points"] = self.points
        return out


DIMENSIONS = Registry("dimension kind", "dimension kinds")
DIMENSIONS.register("categorical", CategoricalDimension)
DIMENSIONS.register("int-range", IntRangeDimension)
DIMENSIONS.register("log-uniform", LogUniformDimension)


def dimension_from_dict(data: Mapping[str, Any]) -> Dimension:
    """Build a dimension from its flat JSON form ``{"name", "kind", "field", ...}``."""
    if not isinstance(data, Mapping):
        raise ValueError(f"dimension must be a mapping, got {data!r}")
    if "kind" not in data:
        raise ValueError(f"dimension is missing its 'kind': {dict(data)!r}")
    params = {key: value for key, value in data.items() if key != "kind"}
    if "choices" in params:
        params["choices"] = tuple(params["choices"])
    factory = DIMENSIONS.get(data["kind"])
    try:
        return factory(**params)
    except TypeError as error:
        raise ValueError(
            f"bad parameters for dimension kind {data['kind']!r}: {error}"
        ) from None


# ------------------------------------------------------------------ points


def point_key(point: Mapping[str, Any]) -> str:
    """Canonical JSON key of one assignment dict (deterministic tie-breaker)."""
    return json.dumps(point, sort_keys=True, separators=(",", ":"))


def _format_value(value: Any) -> str:
    if isinstance(value, float):
        return format(value, ".6g")
    if isinstance(value, Mapping):
        kind = value.get("kind")
        if isinstance(kind, str):
            return kind
        return point_key(value)
    if value is None:
        return "default"
    return str(value)


def point_label(point: Mapping[str, Any]) -> str:
    """Human-readable, deterministic label of one assignment dict.

    Doubles as the materialized spec's ``label`` (the trial-seed family
    name), so it depends only on the assignments -- the same configuration
    carries the same label in every round, at every budget, which is what
    makes rung promotions cache hits.
    """
    return ",".join(
        f"{name}={_format_value(point[name])}" for name in sorted(point)
    )


def _assign(data: Dict[str, Any], path: Tuple[str, ...], value: Any, where: str) -> None:
    node = data
    for part in path[:-1]:
        child = node.get(part)
        if child is None:
            child = {}
            node[part] = child
        elif not isinstance(child, dict):
            raise ValueError(
                f"dimension {where!r}: path segment {part!r} is not a mapping "
                f"in the base scenario (found {child!r})"
            )
        node = child
    node[path[-1]] = value


# ------------------------------------------------------------------- space


@dataclass(frozen=True)
class SearchSpace:
    """One base scenario plus the dimensions a search may vary.

    ``base`` carries everything the search holds fixed -- including the
    paper's constants for every searched knob, which is what the optimizer's
    baseline evaluation runs unchanged.
    """

    base: ScenarioSpec
    dimensions: Tuple[Dimension, ...] = ()

    def __post_init__(self) -> None:
        base = self.base
        if isinstance(base, Mapping):
            base = ScenarioSpec.from_dict(base)
        object.__setattr__(self, "base", base)
        dims = tuple(
            dim if isinstance(dim, Dimension) else dimension_from_dict(dim)
            for dim in self.dimensions
        )
        object.__setattr__(self, "dimensions", dims)
        if not dims:
            raise ValueError("a search space needs at least one dimension")
        names = [dim.name for dim in dims]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate dimension name(s) in {names}")

    # ----------------------------------------------------------- enumeration

    def exhaustive(self) -> bool:
        """Whether :meth:`grid` enumerates the space exactly."""
        return all(dim.exact for dim in self.dimensions)

    def grid(self) -> List[Dict[str, Any]]:
        """The Cartesian product of per-dimension value grids, in axis order."""
        axes = [dim.values() for dim in self.dimensions]
        names = [dim.name for dim in self.dimensions]
        return [
            dict(zip(names, combo)) for combo in itertools.product(*axes)
        ]

    def size(self) -> int:
        """Number of grid points (exact space size iff :meth:`exhaustive`)."""
        total = 1
        for dim in self.dimensions:
            total *= len(dim.values())
        return total

    def sample(self, rng: Any) -> Dict[str, Any]:
        """One random point: an independent draw per dimension."""
        return {dim.name: dim.sample(rng) for dim in self.dimensions}

    # --------------------------------------------------------- materializing

    def materialize(self, point: Mapping[str, Any]) -> ScenarioSpec:
        """The scenario a point denotes; validated by the spec layer.

        ``point`` must assign exactly the declared dimensions.  The
        materialized spec's ``label`` is :func:`point_label`, so the same
        configuration keys the same trial-seed family in every round.
        """
        expected = {dim.name for dim in self.dimensions}
        if set(point) != expected:
            raise ValueError(
                f"point must assign exactly the dimensions {sorted(expected)}; "
                f"got {sorted(point)}"
            )
        data = self.base.to_dict()
        for dim in self.dimensions:
            _assign(data, _split_field(dim.field), point[dim.name], dim.name)
        data["label"] = point_label(point)
        return ScenarioSpec.from_dict(data)

    def with_base(self, base: ScenarioSpec) -> "SearchSpace":
        """The same dimensions over a different base (per-group overrides)."""
        return SearchSpace(base=base, dimensions=self.dimensions)

    # ------------------------------------------------------------ round-trip

    def to_dict(self) -> Dict[str, Any]:
        return {
            "base": self.base.to_dict(),
            "dimensions": [dim.to_dict() for dim in self.dimensions],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SearchSpace":
        if not isinstance(data, Mapping):
            raise ValueError(f"search space must be a mapping, got {data!r}")
        unknown = set(data) - {"base", "dimensions"}
        if unknown:
            raise ValueError(
                f"unknown search-space key(s) {sorted(unknown)}; "
                "expected 'base' and 'dimensions'"
            )
        return cls(
            base=ScenarioSpec.from_dict(data.get("base", {})),
            dimensions=tuple(data.get("dimensions", ())),
        )
