"""Command-line interface.

Installed as the ``abe-repro`` console script.  Eight sub-commands:

``abe-repro elect``
    Run one leader election on an ABE ring and print the outcome.

``abe-repro experiment <id>``
    Run one of the experiments (e1..e8, a1, a2) with optionally reduced trial
    counts and print its tables -- the same tables EXPERIMENTS.md records.

``abe-repro scenario <spec.json>``
    Run a declarative scenario (or study) spec file through
    :func:`repro.scenarios.runtime.run_scenario` -- any registered algorithm
    on any registered topology, no Python required.  See
    ``examples/scenarios/`` and ``docs/SCENARIOS.md``.

``abe-repro serve``
    The study service (``docs/SERVICE.md``): accept scenario/study spec
    files (arguments and/or a watched spool directory), dedupe them by
    fingerprint, run them against one warm worker pool with every trial
    keyed into a persistent sqlite result store, and export per-job JSON --
    re-submitting an experiment is a cache hit with zero redundant compute.

``abe-repro optimize <search.json>``
    Design-space exploration (``docs/DSE.md``): search a declared parameter
    space for the best-scoring configuration per group (grid, random, or
    successive halving), every evaluation cached in a persistent result
    store -- re-running or widening a search executes only new points.
    Prints the per-group winner table and writes the report JSON plus a
    comparison figure (SVG) against the paper's fixed constants.

``abe-repro export-store <store> --csv``
    Dump a sqlite result store as one CSV row per cached trial, for
    external analysis tooling.

``abe-repro migrate``
    One-shot migration of PR 6 JSONL checkpoint journals into a sqlite
    result store.

``abe-repro list``
    List the available experiments with their claims, plus the registered
    scenario algorithms, topologies, search strategies and dimension kinds.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from repro.core.analysis import recommended_a0
from repro.core.runner import run_election
from repro.experiments import ALL_EXPERIMENTS
from repro.experiments.reporting import render_experiment
from repro.experiments.resilience import active_policy
from repro.experiments.runner import add_execution_arguments, execution_from_args

__all__ = ["main", "build_parser"]


def _report_failures(policy) -> None:
    """Print the policy's structured trial-failure log to stderr."""
    if policy is None or not policy.failures:
        return
    print(
        f"warning: {len(policy.failures)} trial(s) failed and were recorded "
        "as structured failures:",
        file=sys.stderr,
    )
    for failure in policy.failures:
        where = failure.seed if failure.seed is not None else failure.item
        print(
            f"  - trial {where}: {failure.kind} after {failure.attempts} "
            f"attempt(s): {failure.error_type}: {failure.message}",
            file=sys.stderr,
        )


def build_parser() -> argparse.ArgumentParser:
    """Construct the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="abe-repro",
        description=(
            "Asynchronous Bounded Expected Delay networks -- reproduction of "
            "Bakhshi et al., PODC 2010"
        ),
    )
    subparsers = parser.add_subparsers(dest="command")

    elect = subparsers.add_parser("elect", help="run one election on an ABE ring")
    elect.add_argument("--n", type=int, default=32, help="ring size (default 32)")
    elect.add_argument(
        "--a0",
        type=float,
        default=None,
        help="base activation parameter (default: recommended for n)",
    )
    elect.add_argument("--seed", type=int, default=0, help="master seed (default 0)")
    elect.add_argument(
        "--delta", type=float, default=1.0, help="expected delay bound (default 1.0)"
    )
    elect.add_argument(
        "--core",
        choices=("object", "vector"),
        default="object",
        help=(
            "election engine: per-node reference ('object') or columnar numpy "
            "('vector'; own random streams, so a different sample path per seed)"
        ),
    )

    experiment = subparsers.add_parser("experiment", help="run one experiment")
    experiment.add_argument(
        "experiment_id", choices=sorted(ALL_EXPERIMENTS), help="experiment to run"
    )
    experiment.add_argument(
        "--trials", type=int, default=None, help="override the number of trials"
    )
    experiment.add_argument(
        "--seed", type=int, default=None, help="override the base seed"
    )
    add_execution_arguments(experiment)

    scenario = subparsers.add_parser(
        "scenario", help="run a declarative scenario spec file (JSON)"
    )
    scenario.add_argument(
        "spec_path", help="path to a ScenarioSpec (or StudySpec) JSON file"
    )
    scenario.add_argument(
        "--trials", type=int, default=None, help="override the spec's trial count"
    )
    scenario.add_argument(
        "--seed", type=int, default=None, help="override the spec's base seed"
    )
    add_execution_arguments(scenario)

    serve = subparsers.add_parser(
        "serve",
        help="run the study service: spec submissions, warm pool, result store",
    )
    serve.add_argument(
        "jobs",
        nargs="*",
        metavar="SPEC",
        help="scenario/study spec files (JSON) to submit immediately",
    )
    serve.add_argument(
        "--store",
        required=True,
        metavar="PATH",
        help=(
            "persistent result store (sqlite); every trial is keyed by "
            "(spec fingerprint, seed, code version), so re-submitted "
            "experiments are cache hits"
        ),
    )
    serve.add_argument(
        "--export",
        default=None,
        metavar="DIR",
        help="write each job's JSON report to DIR/<job>.json",
    )
    serve.add_argument(
        "--watch",
        default=None,
        metavar="DIR",
        help=(
            "after the argument specs, keep watching DIR and submit every "
            "*.json spec file dropped into it"
        ),
    )
    serve.add_argument(
        "--poll",
        type=float,
        default=2.0,
        metavar="SECONDS",
        help="watch-mode poll interval (default 2s)",
    )
    serve.add_argument(
        "--max-jobs",
        type=int,
        default=None,
        metavar="N",
        help="exit after N watched jobs (default: watch until interrupted)",
    )
    serve.add_argument(
        "--once",
        action="store_true",
        help="process the current --watch backlog, then exit instead of polling",
    )
    add_execution_arguments(serve, checkpoint=False)

    optimize = subparsers.add_parser(
        "optimize",
        help="search a declared parameter space for the best configuration",
    )
    optimize.add_argument(
        "search_path", help="path to a SearchSpec JSON file (see docs/DSE.md)"
    )
    optimize.add_argument(
        "--out",
        default=None,
        metavar="DIR",
        help="output directory (default dse_out/<search name>)",
    )
    optimize.add_argument(
        "--store",
        default=None,
        metavar="PATH",
        help=(
            "persistent result store (sqlite; default <out>/store.sqlite); "
            "re-running the same search against a warm store executes zero "
            "trials"
        ),
    )
    optimize.add_argument(
        "--seed", type=int, default=None, help="override the search's master seed"
    )
    add_execution_arguments(optimize, checkpoint=False)

    export_store = subparsers.add_parser(
        "export-store",
        help="dump a sqlite result store as CSV (one row per cached trial)",
    )
    export_store.add_argument("store", help="sqlite result store to export")
    export_store.add_argument(
        "--csv",
        default="-",
        metavar="PATH",
        help="destination CSV file (default '-' = stdout)",
    )
    export_store.add_argument(
        "--all-versions",
        action="store_true",
        help="include rows recorded under other code versions",
    )

    migrate = subparsers.add_parser(
        "migrate", help="migrate a JSONL checkpoint journal into a sqlite store"
    )
    migrate.add_argument("journal", help="source JSONL journal file")
    migrate.add_argument(
        "--store", required=True, metavar="PATH", help="destination sqlite store"
    )
    migrate.add_argument(
        "--assume-version",
        default=None,
        metavar="VERSION",
        help=(
            "stamp version-less (pre-store) journal lines with this code "
            "version instead of 'unversioned'; pass 'current' for the "
            "running code's version (only if you know the journal was "
            "written by behaviourally identical code)"
        ),
    )

    subparsers.add_parser("list", help="list experiments, algorithms and topologies")
    return parser


def _command_elect(args: argparse.Namespace) -> int:
    from repro.network.delays import ExponentialDelay

    a0 = args.a0 if args.a0 is not None else recommended_a0(args.n)
    result = run_election(
        args.n,
        a0=a0,
        delay=ExponentialDelay(mean=args.delta),
        seed=args.seed,
        core=args.core,
    )
    print(f"ring size          : {result.n}")
    print(f"engine core        : {args.core}")
    print(f"activation A0      : {a0:.6g}")
    print(f"leader elected     : {result.elected}")
    print(f"leader uid         : {result.leader_uid}")
    print(f"election time      : {result.election_time:.4f}" if result.election_time else "election time      : -")
    print(f"messages sent      : {result.messages_total}")
    print(f"activations        : {result.activations}")
    print(f"knockout messages  : {result.knockout_messages}")
    print(f"clock ticks        : {result.ticks}")
    return 0 if result.elected else 1


def _command_experiment(args: argparse.Namespace) -> int:
    import inspect

    module = ALL_EXPERIMENTS[args.experiment_id]
    supported = set(inspect.signature(module.run).parameters)
    kwargs = {}
    if args.trials is not None and "trials" in supported:
        kwargs["trials"] = args.trials
    if args.seed is not None and "base_seed" in supported:
        kwargs["base_seed"] = args.seed
    workers, adaptive, policy = execution_from_args(args)
    if workers is not None and "workers" in supported:
        kwargs["workers"] = workers
    if adaptive is not None:
        if "adaptive" not in supported:
            print(
                f"note: experiment {args.experiment_id} does not run Monte-Carlo "
                "trials; --ci-tol/--min-trials/--max-trials are ignored"
            )
        else:
            kwargs["adaptive"] = adaptive
    with active_policy(policy):
        result = module.run(**kwargs)
    print(render_experiment(result))
    _report_failures(policy)
    return 0


def _command_scenario(args: argparse.Namespace) -> int:
    from repro.scenarios import (
        ALGORITHMS,
        StudySpec,
        load_spec,
        render_scenario,
        render_study_scaling,
        run_scenario,
        run_study,
    )

    try:
        spec = load_spec(args.spec_path)
    except (OSError, ValueError) as error:
        raise SystemExit(str(error)) from None
    workers, adaptive, policy = execution_from_args(args)

    def adjust(point):
        if args.trials is not None and point.algorithm in ALGORITHMS:
            # One-shot workloads are a single evaluation per point; their
            # trial count is structural, not a knob.
            if not ALGORITHMS.get(point.algorithm).one_shot:
                point = point.replace(trials=max(1, args.trials))
        if args.seed is not None:
            point = point.replace(seed=args.seed)
        return point

    try:
        with active_policy(policy):
            if isinstance(spec, StudySpec):
                study = StudySpec(
                    name=spec.name,
                    title=spec.title,
                    metric=spec.metric,
                    points=tuple(adjust(point) for point in spec.points),
                )
                per_point = run_study(
                    study,
                    workers=workers if workers is not None else 1,
                    adaptive=adaptive,
                )
                print(f"== study: {study.name} ==")
                for point, results in zip(study.points, per_point):
                    print()
                    print(render_scenario(point, results))
                scaling = render_study_scaling(study, per_point)
                if scaling is not None:
                    print()
                    print(scaling)
            else:
                point = adjust(spec)
                results = run_scenario(point, workers=workers, adaptive=adaptive)
                print(render_scenario(point, results))
    except ValueError as error:
        raise SystemExit(str(error)) from None
    _report_failures(policy)
    return 0


def _render_job_report(report) -> str:
    """Compact per-point stdout table for one served job."""
    from repro.experiments.reporting import format_table
    from repro.experiments.results import ResultTable

    table = ResultTable(
        title=f"job {report.job_id}: {report.name} [{report.status}]",
        columns=["point", "algorithm", "trials", "failures", "cached", "executed", "metric_mean"],
    )
    for point in report.points:
        metrics = point.summary.get("metrics", {})
        mean = metrics.get(report.metric, {}).get("mean")
        table.add_row(
            point=point.label,
            algorithm=point.algorithm,
            trials=point.summary.get("trials"),
            failures=point.summary.get("failures"),
            cached=point.hits,
            executed=point.executed,
            metric_mean=mean,
        )
    lookups = report.lookups
    table.add_note(f"metric_mean targets {report.metric!r}")
    table.add_note(
        f"cache: {report.hits}/{lookups} hit(s), "
        f"{report.trials_executed} trial(s) executed, {report.elapsed:.2f}s"
    )
    if report.duplicate_of is not None:
        table.add_note(f"duplicate of job {report.duplicate_of} (not re-executed)")
    return format_table(table)


def _serve_drain(service, args) -> int:
    """Run pending jobs, print tables, export; returns the job count."""
    reports = service.run_pending()
    for report in reports:
        print(_render_job_report(report))
        if args.export is not None:
            path = service.export(report, args.export)
            print(f"exported: {path}")
    return len(reports)


def _command_serve(args: argparse.Namespace) -> int:
    import time

    from repro.scenarios import load_spec
    from repro.store.result_store import ResultStore
    from repro.store.service import StudyService

    if not args.jobs and args.watch is None:
        raise SystemExit("serve needs spec files to submit and/or --watch DIR")
    workers, adaptive, policy = execution_from_args(args)
    store = ResultStore(
        args.store, allow_stale=bool(getattr(args, "allow_stale_cache", False))
    )
    progress = lambda message: print(message, file=sys.stderr)  # noqa: E731

    def submit_file(service, path) -> bool:
        try:
            spec = load_spec(path)
            service.submit(spec, source=str(path))
            return True
        except (OSError, ValueError, TypeError) as error:
            print(f"error: {path}: {error}", file=sys.stderr)
            return False

    exit_code = 0
    processed = 0
    with store, StudyService(
        store,
        workers=workers if workers is not None else 1,
        adaptive=adaptive,
        policy=policy,
        progress=progress,
    ) as service:
        for path in args.jobs:
            if not submit_file(service, path):
                exit_code = 1
        processed += _serve_drain(service, args)
        if args.watch is not None:
            seen = set()
            try:
                while True:
                    try:
                        names = sorted(os.listdir(args.watch))
                    except OSError as error:
                        raise SystemExit(f"--watch {args.watch}: {error}") from None
                    for name in names:
                        if not name.endswith(".json") or name in seen:
                            continue
                        seen.add(name)
                        if not submit_file(service, os.path.join(args.watch, name)):
                            exit_code = 1
                    processed += _serve_drain(service, args)
                    if args.once:
                        break
                    if args.max_jobs is not None and processed >= args.max_jobs:
                        break
                    time.sleep(args.poll)
            except KeyboardInterrupt:
                print(f"interrupted after {processed} job(s)", file=sys.stderr)
    _report_failures(policy)
    return exit_code


def _command_optimize(args: argparse.Namespace) -> int:
    import dataclasses
    import json

    from repro.dse import comparison_svg, load_search, run_search
    from repro.store.result_store import ResultStore

    try:
        search = load_search(args.search_path)
    except (OSError, ValueError) as error:
        raise SystemExit(str(error)) from None
    workers, adaptive, policy = execution_from_args(args)
    if adaptive is not None:
        print(
            "note: a search declares its own stopping rule (the optimizer "
            "re-caps it per rung); --ci-tol/--min-trials/--max-trials are ignored",
            file=sys.stderr,
        )
    if args.seed is not None:
        search = dataclasses.replace(search, seed=args.seed)
    out_dir = args.out if args.out is not None else os.path.join("dse_out", search.name)
    store_path = args.store if args.store is not None else os.path.join(out_dir, "store.sqlite")
    os.makedirs(out_dir, exist_ok=True)
    progress = lambda message: print(message, file=sys.stderr)  # noqa: E731
    try:
        with ResultStore(
            store_path, allow_stale=bool(getattr(args, "allow_stale_cache", False))
        ) as store:
            with active_policy(policy):
                report = run_search(
                    search,
                    store,
                    workers=workers if workers is not None else 1,
                    policy=policy,
                    progress=progress,
                )
    except ValueError as error:
        raise SystemExit(str(error)) from None
    report_path = os.path.join(out_dir, "report.json")
    with open(report_path, "w", encoding="utf-8") as handle:
        json.dump(report.to_dict(), handle, indent=2, sort_keys=True)
        handle.write("\n")
    figure_path = os.path.join(out_dir, "comparison.svg")
    with open(figure_path, "w", encoding="utf-8") as handle:
        handle.write(comparison_svg(report))
    title = search.title or search.name
    print(f"== search: {title} ==")
    print(f"metric: {report.metric} ({report.goal}), strategy: {report.strategy}")
    print()
    print(report.winner_table())
    print()
    print(
        f"cache: {report.hits}/{report.lookups} hit(s), "
        f"{report.trials_executed} trial(s) executed, {report.elapsed:.2f}s"
    )
    print(f"report: {report_path}")
    print(f"figure: {figure_path}")
    _report_failures(policy)
    return 0


def _command_export_store(args: argparse.Namespace) -> int:
    from repro.store.export import write_store_csv
    from repro.store.result_store import ResultStore

    if not os.path.exists(args.store):
        raise SystemExit(f"{args.store}: no such store")
    with ResultStore(args.store, allow_stale=True) as store:
        if args.csv == "-":
            count = write_store_csv(store, sys.stdout, all_versions=args.all_versions)
        else:
            with open(args.csv, "w", encoding="utf-8", newline="") as handle:
                count = write_store_csv(store, handle, all_versions=args.all_versions)
            print(f"exported {count} row(s) to {args.csv}", file=sys.stderr)
    return 0


def _command_migrate(args: argparse.Namespace) -> int:
    from repro.store.fingerprint import code_version
    from repro.store.migrate import migrate_journal
    from repro.store.result_store import ResultStore

    assume = args.assume_version
    if assume == "current":
        assume = code_version()
    try:
        with ResultStore(args.store) as store:
            report = migrate_journal(args.journal, store, assume_version=assume)
    except OSError as error:
        raise SystemExit(str(error)) from None
    print(report.summary())
    return 0


def _command_list() -> int:
    from repro.dse import DIMENSIONS, STRATEGIES
    from repro.scenarios import ALGORITHMS, CHURN, CHURN_EVENTS, DELAYS, TOPOLOGIES

    for experiment_id in sorted(ALL_EXPERIMENTS):
        module = ALL_EXPERIMENTS[experiment_id]
        print(f"{experiment_id}: {module.TITLE}")
        print(f"    {module.CLAIM}")
    print()
    print("scenario algorithms (abe-repro scenario <spec.json>):")
    for key in ALGORITHMS.known():
        print(f"    {key}: {ALGORITHMS.get(key).description}")
    print(f"scenario topologies: {', '.join(TOPOLOGIES.known())}")
    print(f"scenario delay models: {', '.join(DELAYS.known())}")
    print(f"scenario churn scripts: {', '.join(CHURN.known())}")
    print(f"scenario churn events: {', '.join(CHURN_EVENTS.known())}")
    print()
    print("search strategies (abe-repro optimize <search.json>):")
    for key in STRATEGIES.known():
        print(f"    {key}: {STRATEGIES.get(key).description}")
    print("search dimension kinds:")
    for key in DIMENSIONS.known():
        print(f"    {key}: {DIMENSIONS.get(key).description}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point for the ``abe-repro`` console script."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "elect":
        return _command_elect(args)
    if args.command == "experiment":
        return _command_experiment(args)
    if args.command == "scenario":
        return _command_scenario(args)
    if args.command == "serve":
        return _command_serve(args)
    if args.command == "optimize":
        return _command_optimize(args)
    if args.command == "export-store":
        return _command_export_store(args)
    if args.command == "migrate":
        return _command_migrate(args)
    if args.command == "list":
        return _command_list()
    parser.print_help()
    return 0


if __name__ == "__main__":  # pragma: no cover - module execution guard
    sys.exit(main())
