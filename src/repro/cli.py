"""Command-line interface.

Installed as the ``abe-repro`` console script.  Four sub-commands:

``abe-repro elect``
    Run one leader election on an ABE ring and print the outcome.

``abe-repro experiment <id>``
    Run one of the experiments (e1..e8, a1, a2) with optionally reduced trial
    counts and print its tables -- the same tables EXPERIMENTS.md records.

``abe-repro scenario <spec.json>``
    Run a declarative scenario (or study) spec file through
    :func:`repro.scenarios.runtime.run_scenario` -- any registered algorithm
    on any registered topology, no Python required.  See
    ``examples/scenarios/`` and ``docs/SCENARIOS.md``.

``abe-repro list``
    List the available experiments with their claims, plus the registered
    scenario algorithms and topologies.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.core.analysis import recommended_a0
from repro.core.runner import run_election
from repro.experiments import ALL_EXPERIMENTS
from repro.experiments.reporting import render_experiment
from repro.experiments.resilience import active_policy
from repro.experiments.runner import add_execution_arguments, execution_from_args

__all__ = ["main", "build_parser"]


def _report_failures(policy) -> None:
    """Print the policy's structured trial-failure log to stderr."""
    if policy is None or not policy.failures:
        return
    print(
        f"warning: {len(policy.failures)} trial(s) failed and were recorded "
        "as structured failures:",
        file=sys.stderr,
    )
    for failure in policy.failures:
        where = failure.seed if failure.seed is not None else failure.item
        print(
            f"  - trial {where}: {failure.kind} after {failure.attempts} "
            f"attempt(s): {failure.error_type}: {failure.message}",
            file=sys.stderr,
        )


def build_parser() -> argparse.ArgumentParser:
    """Construct the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="abe-repro",
        description=(
            "Asynchronous Bounded Expected Delay networks -- reproduction of "
            "Bakhshi et al., PODC 2010"
        ),
    )
    subparsers = parser.add_subparsers(dest="command")

    elect = subparsers.add_parser("elect", help="run one election on an ABE ring")
    elect.add_argument("--n", type=int, default=32, help="ring size (default 32)")
    elect.add_argument(
        "--a0",
        type=float,
        default=None,
        help="base activation parameter (default: recommended for n)",
    )
    elect.add_argument("--seed", type=int, default=0, help="master seed (default 0)")
    elect.add_argument(
        "--delta", type=float, default=1.0, help="expected delay bound (default 1.0)"
    )
    elect.add_argument(
        "--core",
        choices=("object", "vector"),
        default="object",
        help=(
            "election engine: per-node reference ('object') or columnar numpy "
            "('vector'; own random streams, so a different sample path per seed)"
        ),
    )

    experiment = subparsers.add_parser("experiment", help="run one experiment")
    experiment.add_argument(
        "experiment_id", choices=sorted(ALL_EXPERIMENTS), help="experiment to run"
    )
    experiment.add_argument(
        "--trials", type=int, default=None, help="override the number of trials"
    )
    experiment.add_argument(
        "--seed", type=int, default=None, help="override the base seed"
    )
    add_execution_arguments(experiment)

    scenario = subparsers.add_parser(
        "scenario", help="run a declarative scenario spec file (JSON)"
    )
    scenario.add_argument(
        "spec_path", help="path to a ScenarioSpec (or StudySpec) JSON file"
    )
    scenario.add_argument(
        "--trials", type=int, default=None, help="override the spec's trial count"
    )
    scenario.add_argument(
        "--seed", type=int, default=None, help="override the spec's base seed"
    )
    add_execution_arguments(scenario)

    subparsers.add_parser("list", help="list experiments, algorithms and topologies")
    return parser


def _command_elect(args: argparse.Namespace) -> int:
    from repro.network.delays import ExponentialDelay

    a0 = args.a0 if args.a0 is not None else recommended_a0(args.n)
    result = run_election(
        args.n,
        a0=a0,
        delay=ExponentialDelay(mean=args.delta),
        seed=args.seed,
        core=args.core,
    )
    print(f"ring size          : {result.n}")
    print(f"engine core        : {args.core}")
    print(f"activation A0      : {a0:.6g}")
    print(f"leader elected     : {result.elected}")
    print(f"leader uid         : {result.leader_uid}")
    print(f"election time      : {result.election_time:.4f}" if result.election_time else "election time      : -")
    print(f"messages sent      : {result.messages_total}")
    print(f"activations        : {result.activations}")
    print(f"knockout messages  : {result.knockout_messages}")
    print(f"clock ticks        : {result.ticks}")
    return 0 if result.elected else 1


def _command_experiment(args: argparse.Namespace) -> int:
    import inspect

    module = ALL_EXPERIMENTS[args.experiment_id]
    supported = set(inspect.signature(module.run).parameters)
    kwargs = {}
    if args.trials is not None and "trials" in supported:
        kwargs["trials"] = args.trials
    if args.seed is not None and "base_seed" in supported:
        kwargs["base_seed"] = args.seed
    workers, adaptive, policy = execution_from_args(args)
    if workers is not None and "workers" in supported:
        kwargs["workers"] = workers
    if adaptive is not None:
        if "adaptive" not in supported:
            print(
                f"note: experiment {args.experiment_id} does not run Monte-Carlo "
                "trials; --ci-tol/--min-trials/--max-trials are ignored"
            )
        else:
            kwargs["adaptive"] = adaptive
    with active_policy(policy):
        result = module.run(**kwargs)
    print(render_experiment(result))
    _report_failures(policy)
    return 0


def _command_scenario(args: argparse.Namespace) -> int:
    from repro.scenarios import (
        ALGORITHMS,
        StudySpec,
        load_spec,
        render_scenario,
        render_study_scaling,
        run_scenario,
        run_study,
    )

    try:
        spec = load_spec(args.spec_path)
    except (OSError, ValueError) as error:
        raise SystemExit(str(error)) from None
    workers, adaptive, policy = execution_from_args(args)

    def adjust(point):
        if args.trials is not None and point.algorithm in ALGORITHMS:
            # One-shot workloads are a single evaluation per point; their
            # trial count is structural, not a knob.
            if not ALGORITHMS.get(point.algorithm).one_shot:
                point = point.replace(trials=max(1, args.trials))
        if args.seed is not None:
            point = point.replace(seed=args.seed)
        return point

    try:
        with active_policy(policy):
            if isinstance(spec, StudySpec):
                study = StudySpec(
                    name=spec.name,
                    title=spec.title,
                    metric=spec.metric,
                    points=tuple(adjust(point) for point in spec.points),
                )
                per_point = run_study(
                    study,
                    workers=workers if workers is not None else 1,
                    adaptive=adaptive,
                )
                print(f"== study: {study.name} ==")
                for point, results in zip(study.points, per_point):
                    print()
                    print(render_scenario(point, results))
                scaling = render_study_scaling(study, per_point)
                if scaling is not None:
                    print()
                    print(scaling)
            else:
                point = adjust(spec)
                results = run_scenario(point, workers=workers, adaptive=adaptive)
                print(render_scenario(point, results))
    except ValueError as error:
        raise SystemExit(str(error)) from None
    _report_failures(policy)
    return 0


def _command_list() -> int:
    from repro.scenarios import ALGORITHMS, TOPOLOGIES

    for experiment_id in sorted(ALL_EXPERIMENTS):
        module = ALL_EXPERIMENTS[experiment_id]
        print(f"{experiment_id}: {module.TITLE}")
        print(f"    {module.CLAIM}")
    print()
    print("scenario algorithms (abe-repro scenario <spec.json>):")
    for key in ALGORITHMS.known():
        print(f"    {key}: {ALGORITHMS.get(key).description}")
    print(f"scenario topologies: {', '.join(TOPOLOGIES.known())}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point for the ``abe-repro`` console script."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "elect":
        return _command_elect(args)
    if args.command == "experiment":
        return _command_experiment(args)
    if args.command == "scenario":
        return _command_scenario(args)
    if args.command == "list":
        return _command_list()
    parser.print_help()
    return 0


if __name__ == "__main__":  # pragma: no cover - module execution guard
    sys.exit(main())
