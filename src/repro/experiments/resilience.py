"""Resilient trial execution: supervision, timeouts, retries, checkpointing.

The ABE model is about making progress despite an adversarial network; this
module is the same idea applied to the *execution layer*.  Monte-Carlo studies
fan thousands of independent trials across ``fork`` workers, and three things
can go wrong in practice:

* a worker dies (OOM kill, segfault, operator ``kill -9``) and its in-flight
  task silently never completes -- a blocking ``pool.map`` then hangs forever;
* a trial itself diverges (a pathological scenario spec with heavy faults can
  leave the election waiting on messages that were dropped) and occupies a
  worker indefinitely;
* the whole study process is killed at trial 900/1000 and a restart pays for
  everything again.

Three cooperating pieces answer these failure modes:

:func:`supervised_map`
    The one ordered fan-out primitive behind
    :meth:`~repro.experiments.parallel.ParallelTrialRunner.map`,
    :meth:`~repro.experiments.parallel.ParallelTrialRunner.persistent_mapper`
    and :meth:`~repro.experiments.parallel.SweepPool.map`.  Without an active
    :class:`ExecutionPolicy` it is behaviourally the old ``pool.map`` (chunked
    dispatch, ordered gather, bit-identical results) except that it reacts to
    ``KeyboardInterrupt`` by terminating and joining the worker processes
    instead of leaking orphaned forks.  With a policy it dispatches trials
    individually, bounds each wait by the per-trial wall-clock timeout,
    rebuilds a broken pool with capped exponential backoff, re-runs only the
    failed seeds (trials are pure functions of their seeds, so retries are
    bit-identical), degrades to in-process serial execution when the pool
    itself keeps failing without progress, and records structured
    :class:`TrialFailure` entries instead of raising mid-study.

:class:`CheckpointJournal`
    A persistent result store keyed by ``(fingerprint, seed, code_version)``,
    consulted by every ``monte_carlo`` flavour through
    :func:`checkpointed_trials`: a resumed study skips completed trials and
    reproduces the aggregate results bit for bit, because the journal stores
    the exact trial results (dataclasses round-trip field-for-field through
    JSON) and the seed discipline makes the remaining trials independent of
    the ones already done.  The storage layer itself (append-only JSONL and
    sqlite backends, fingerprint discipline, code-version gating, the
    ``abe-repro serve`` study service) lives in :mod:`repro.store`; this
    module re-exports the journal and fingerprint names it introduced in
    PR 6 so existing imports keep working.

:class:`ExecutionPolicy` / :func:`active_policy`
    The ambient execution contract.  Entry points (``abe-repro experiment``,
    ``abe-repro scenario``, ``scripts/run_all_experiments.py``) build one
    policy from ``--trial-timeout``/``--retries``/``--checkpoint``/``--resume``
    and install it for the duration of the run; the mapping and Monte-Carlo
    layers consult :func:`current_policy` so no experiment module needed a
    signature change to become resilient.

The in-simulation counterpart -- the divergence watchdog that makes a
pathological trial *fail fast inside the worker* instead of only via an
external timeout -- is :class:`repro.sim.engine.SimulationDiverged`, raised by
``Simulator.run(raise_on_limit=True)`` and reachable declaratively through the
``on_budget="raise"`` field of a :class:`~repro.scenarios.spec.ScenarioSpec`.
See ``docs/ROBUSTNESS.md`` for the full failure model.
"""

from __future__ import annotations

import multiprocessing
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.store.codec import decode_result, encode_result
from repro.store.fingerprint import callable_fingerprint, spec_fingerprint
from repro.store.journal import JOURNAL_DISABLED, CheckpointJournal

__all__ = [
    "CheckpointJournal",
    "JOURNAL_DISABLED",
    "ExecutionPolicy",
    "ForkPoolManager",
    "TrialFailure",
    "active_policy",
    "callable_fingerprint",
    "checkpointed_trials",
    "current_policy",
    "decode_result",
    "encode_result",
    "resolve_checkpoint",
    "run_trial",
    "spec_fingerprint",
    "supervised_map",
]

#: Sentinel for "no result yet" slots (None is a legal trial result).
_MISSING = object()

#: Crash-safety granularity when a journal is active and the caller does not
#: pin one: results are recorded after every block of this many trials, so a
#: killed study loses at most one block per point.
DEFAULT_RECORD_BATCH = 16


# =============================================================== trial failure


@dataclass
class TrialFailure:
    """Structured record of one trial that could not produce a result.

    Instances take the place of the missing result in the ordered result
    list, so positional alignment with the seed list survives failures.
    Every *metric* attribute reads as ``None`` (see ``__getattr__``), which is
    the pre-existing "this run produced no value" convention -- adaptive
    stopping skips them, ``mean_of_attribute`` excludes them, and ``keep``
    filters written as ``lambda r: r.elected`` drop them.

    Attributes
    ----------
    seed:
        The trial seed (``None`` when the mapped item was not a seed).
    item:
        ``repr`` of the mapped item, for non-seed fan-outs.
    attempts:
        Executions consumed, including the first (``retries + 1`` when
        exhausted).
    kind:
        ``"timeout"`` (per-trial wall clock exceeded / worker lost) or
        ``"error"`` (the trial raised).
    error_type / message:
        The final exception's class name and text.
    """

    seed: Optional[int]
    item: str
    attempts: int
    kind: str
    error_type: str
    message: str

    def __getattr__(self, name: str) -> None:
        # Metric/result attributes read as None; private/dunder lookups must
        # fail normally or pickling and copying would break.
        if name.startswith("_"):
            raise AttributeError(name)
        return None


def _failure_from(item: Any, attempts: int, kind: str, error: BaseException) -> TrialFailure:
    return TrialFailure(
        seed=item if isinstance(item, int) else None,
        item=repr(item),
        attempts=attempts,
        kind=kind,
        error_type=type(error).__name__,
        message=str(error),
    )


# ============================================================ execution policy


@dataclass
class ExecutionPolicy:
    """How trial execution reacts to hangs, crashes and restarts.

    Attributes
    ----------
    trial_timeout:
        Per-trial wall-clock budget in seconds.  A trial whose result does not
        arrive within the budget is charged a failed attempt, the worker pool
        is rebuilt (the hung or dead worker cannot be recovered), and the seed
        is re-run.  ``None`` disables timeout supervision.
    retries:
        Re-executions granted per trial after its first failure.  Retries are
        bit-identical to first runs (trials are pure functions of their
        seeds), so a retry after a worker OOM kill reproduces exactly the
        result the lost worker would have returned.
    backoff_base / backoff_cap:
        Pool-rebuild backoff: rebuild ``k`` sleeps
        ``min(backoff_cap, backoff_base * 2**(k-1))`` seconds first.
    max_pool_rebuilds:
        Consecutive *unproductive* pool failures (a dispatch round that
        produced neither a result nor a charged attempt) tolerated before the
        supervisor degrades to in-process serial execution for the remaining
        trials.  Productive rounds -- even ones that time a trial out -- never
        trigger degradation; this bound only catches a pool that cannot run
        anything at all (e.g. ``fork`` itself failing repeatedly).
    checkpoint:
        Optional :class:`CheckpointJournal` consulted by every Monte-Carlo
        flavour; completed ``(fingerprint, seed)`` trials are skipped and
        fresh results are journaled as they complete.
    failures:
        Structured :class:`TrialFailure` log, appended to by the supervisor
        (shared across every map the policy supervises).
    """

    trial_timeout: Optional[float] = None
    retries: int = 0
    backoff_base: float = 0.25
    backoff_cap: float = 5.0
    max_pool_rebuilds: int = 3
    checkpoint: Optional["CheckpointJournal"] = None
    failures: List[TrialFailure] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.trial_timeout is not None and self.trial_timeout <= 0:
            raise ValueError(f"trial_timeout must be positive, got {self.trial_timeout}")
        if self.retries < 0:
            raise ValueError(f"retries must be >= 0, got {self.retries}")
        if self.backoff_base <= 0:
            raise ValueError(f"backoff_base must be positive, got {self.backoff_base}")
        if self.backoff_cap < self.backoff_base:
            raise ValueError("backoff_cap must be >= backoff_base")
        if self.max_pool_rebuilds < 0:
            raise ValueError(f"max_pool_rebuilds must be >= 0, got {self.max_pool_rebuilds}")

    @property
    def supervised(self) -> bool:
        """Whether maps must take the per-trial supervision path."""
        return self.trial_timeout is not None or self.retries > 0


#: The ambient policy entry points install around a run (None = legacy
#: behaviour: blocking gather, failures raise, no journal).
_ACTIVE_POLICY: Optional[ExecutionPolicy] = None


def current_policy() -> Optional[ExecutionPolicy]:
    """The ambient :class:`ExecutionPolicy`, or ``None`` outside any."""
    return _ACTIVE_POLICY


@contextmanager
def active_policy(policy: Optional[ExecutionPolicy]) -> Iterator[Optional[ExecutionPolicy]]:
    """Install ``policy`` as the ambient execution policy for the block.

    Forked workers inherit the installed policy, but all supervision happens
    in the parent -- workers only ever run the plain trial callable.
    ``active_policy(None)`` is a no-op block, which lets entry points wrap
    their run unconditionally.
    """
    global _ACTIVE_POLICY
    previous = _ACTIVE_POLICY
    _ACTIVE_POLICY = policy
    try:
        yield policy
    finally:
        _ACTIVE_POLICY = previous


# ======================================================== checkpoint resolution
#
# The journal/store machinery itself (codec, fingerprints, CheckpointJournal,
# ResultStore, migration, the serve-mode service) lives in ``repro.store``;
# the names historically defined here -- spec_fingerprint,
# callable_fingerprint, encode_result, decode_result, CheckpointJournal --
# are re-exported above.  What remains here is the execution-side funnel:
# which store and key a given Monte-Carlo call should consult.


def resolve_checkpoint(
    checkpoint: Optional[CheckpointJournal],
    checkpoint_key: Any,
    run_one: Any,
    base_seed: int,
    label: str,
) -> Tuple[Optional[CheckpointJournal], Optional[str]]:
    """The journal and key a Monte-Carlo call should use, or ``(None, None)``.

    Explicit arguments win; otherwise the ambient policy's journal applies
    with a :func:`callable_fingerprint` key.  Either piece missing disables
    journaling for the call (never guesses a key).  Callers that positively
    know their workload has no canonical fingerprint (``spec_fingerprint``
    returned ``None``) pass :data:`~repro.store.journal.JOURNAL_DISABLED` as
    the key, which disables journaling *without* falling back to a callable
    fingerprint -- the spec layer's refusal is authoritative.
    """
    if checkpoint_key is JOURNAL_DISABLED:
        return None, None
    journal = checkpoint
    if journal is None:
        policy = current_policy()
        journal = policy.checkpoint if policy is not None else None
    if journal is None:
        return None, None
    key = checkpoint_key
    if key is None:
        key = callable_fingerprint(run_one, base_seed, label)
    if key is None:
        return None, None
    return journal, key


def checkpointed_trials(
    seeds: Sequence[Any],
    execute: Callable[[Sequence[Any]], List[Any]],
    journal: Optional[CheckpointJournal],
    key: Optional[str],
    record_batch: Optional[int] = None,
) -> List[Any]:
    """Run ``seeds`` through ``execute``, skipping and journaling via ``journal``.

    The one checkpoint-consulting step shared by every Monte-Carlo flavour:
    already-completed seeds come straight from the journal, only the missing
    ones are executed (in blocks of ``record_batch``, journaled as each block
    completes, so a killed run loses at most one block), and the returned
    list is in the original seed order -- bit-identical to an uncheckpointed
    run because trials are pure functions of their seeds.
    :class:`TrialFailure` placeholders are returned but never journaled, so a
    resumed run re-attempts them.
    """
    seeds = list(seeds)
    if journal is None or key is None:
        return execute(seeds) if seeds else []
    cached = journal.lookup(key, seeds)
    missing = [seed for seed in seeds if seed not in cached]
    by_seed: Dict[Any, Any] = dict(cached)
    if missing:
        step = record_batch or DEFAULT_RECORD_BATCH
        for start in range(0, len(missing), step):
            block = missing[start : start + step]
            fresh = execute(block)
            pairs: List[Tuple[int, Any]] = []
            for seed, result in zip(block, fresh):
                by_seed[seed] = result
                if not isinstance(result, TrialFailure):
                    pairs.append((seed, result))
            journal.record_many(key, pairs)
    return [by_seed[seed] for seed in seeds]


# ============================================================ pool supervision


class ForkPoolManager:
    """Owns one rebuildable ``multiprocessing`` pool.

    The supervisor only ever talks to pools through this interface: ``get``
    creates lazily, ``rebuild`` tears down (killing hung or half-dead workers)
    and re-creates, ``shutdown`` terminates *and joins* so no orphaned fork
    outlives the map that spawned it.
    """

    def __init__(self, factory: Callable[[], Any]) -> None:
        self._factory = factory
        self.pool: Optional[Any] = None

    def get(self) -> Any:
        if self.pool is None:
            self.pool = self._factory()
        return self.pool

    def shutdown(self) -> None:
        pool, self.pool = self.pool, None
        if pool is not None:
            pool.terminate()
            pool.join()

    def rebuild(self) -> Any:
        self.shutdown()
        return self.get()


def _call_chunk(task: Callable[[Any], Any], block: List[Any]) -> List[Any]:
    """Worker-side chunk runner (module-level: must be picklable)."""
    return [task(item) for item in block]


def _get_result(handle: Any, timeout: Optional[float]) -> Any:
    """One waiting point for async results (tests monkeypatch this)."""
    if timeout is None:
        return handle.get()
    return handle.get(timeout)


def supervised_map(
    fn: Callable[[Any], Any],
    items: Sequence[Any],
    *,
    pools: ForkPoolManager,
    workers: int,
    chunk_size: Optional[int] = None,
    policy: Optional[ExecutionPolicy] = None,
    task: Optional[Callable[[Any], Any]] = None,
) -> List[Any]:
    """Ordered parallel map over a rebuildable pool; the one fan-out primitive.

    Parameters
    ----------
    fn:
        The in-parent trial callable (used directly for degraded serial
        execution).
    task:
        The picklable per-item callable shipped to workers; defaults to
        ``fn``.  Fork-inheritance callers pass their module-level trampoline
        here (the closure itself never crosses the process boundary).
    pools:
        The :class:`ForkPoolManager` owning the worker pool.  The caller
        remains responsible for final ``shutdown()`` of long-lived pools;
        this function shuts the pool down itself only on interrupt or
        degradation.
    policy:
        Explicit :class:`ExecutionPolicy`; defaults to the ambient one.  With
        no (supervising) policy the map is the historical chunked blocking
        gather -- bit-identical results, plus interrupt-safe teardown.
    """
    items = list(items)
    if not items:
        return []
    worker_task = task if task is not None else fn
    if policy is None:
        policy = current_policy()
    if policy is None or not policy.supervised:
        return _plain_pool_map(items, worker_task, pools, workers, chunk_size)
    return _resilient_pool_map(fn, items, worker_task, pools, policy)


def _plain_pool_map(
    items: List[Any],
    worker_task: Callable[[Any], Any],
    pools: ForkPoolManager,
    workers: int,
    chunk_size: Optional[int],
) -> List[Any]:
    """The unsupervised path: chunked dispatch, ordered blocking gather.

    Matches ``pool.map`` result-for-result (same chunking heuristic, same
    input order) but gathers chunk by chunk, so a ``KeyboardInterrupt`` in
    the parent can terminate and join the workers instead of leaking them.
    A worker exception propagates unchanged and leaves the pool usable, like
    ``pool.map`` always did.
    """
    chunk = chunk_size or max(1, len(items) // (workers * 4))
    pool = pools.get()
    handles = [
        pool.apply_async(_call_chunk, (worker_task, items[start : start + chunk]))
        for start in range(0, len(items), chunk)
    ]
    results: List[Any] = []
    try:
        for handle in handles:
            results.extend(_get_result(handle, None))
    except (KeyboardInterrupt, SystemExit):
        # Reap the forks before propagating: Ctrl-C must not leave orphaned
        # workers burning CPU behind a dead study.
        pools.shutdown()
        raise
    return results


def _try_rebuild(pools: ForkPoolManager) -> None:
    """Rebuild, tolerating a factory that cannot create a pool right now.

    A creation failure surfaces again at the next round's ``get()``, where it
    is charged as an unproductive round -- so repeated failure still bounds
    out into serial degradation instead of raising mid-study.
    """
    try:
        pools.rebuild()
    except (KeyboardInterrupt, SystemExit):
        raise
    except Exception:
        pools.pool = None


def _sleep_backoff(policy: ExecutionPolicy, rebuild_number: int) -> None:
    delay = min(policy.backoff_cap, policy.backoff_base * (2 ** max(0, rebuild_number - 1)))
    time.sleep(delay)


def _serial_attempts(
    fn: Callable[[Any], Any],
    item: Any,
    attempts_so_far: int,
    policy: ExecutionPolicy,
) -> Any:
    """Degraded-mode execution: in-process, retried, failure-capturing."""
    attempts = attempts_so_far
    while True:
        attempts += 1
        try:
            return fn(item)
        except (KeyboardInterrupt, SystemExit):
            raise
        except Exception as error:
            if attempts > policy.retries:
                failure = _failure_from(item, attempts, "error", error)
                policy.failures.append(failure)
                return failure


def run_trial(
    fn: Callable[[Any], Any], item: Any, policy: Optional[ExecutionPolicy] = None
) -> Any:
    """Run one trial under the (ambient) policy's retry/failure contract.

    The serial counterpart of :func:`supervised_map`: with no supervising
    policy it is exactly ``fn(item)``; with one, exceptions are retried
    bit-identically and an exhausted trial yields a :class:`TrialFailure`
    instead of raising, so ``--retries`` means the same thing at
    ``workers=1`` as on a pool.  (Wall-clock timeouts need a separate worker
    process to kill and so apply only to pool execution.)
    """
    if policy is None:
        policy = current_policy()
    if policy is None or not policy.supervised:
        return fn(item)
    return _serial_attempts(fn, item, 0, policy)


def _resilient_pool_map(
    fn: Callable[[Any], Any],
    items: List[Any],
    worker_task: Callable[[Any], Any],
    pools: ForkPoolManager,
    policy: ExecutionPolicy,
) -> List[Any]:
    """The supervised path: per-trial dispatch, timeouts, retries, rebuilds.

    Trials are dispatched individually (``apply_async``) and gathered in
    order; each wait is bounded by ``policy.trial_timeout``.  A timeout means
    the worker holding that trial is hung or dead, so the round harvests
    whatever already finished, the pool is rebuilt (with capped exponential
    backoff) and every unfinished trial is re-dispatched -- re-runs are
    bit-identical because trials are pure functions of their seeds.  A trial
    that keeps failing past ``policy.retries`` is replaced by a structured
    :class:`TrialFailure` instead of raising, so one pathological seed cannot
    take down a thousand-trial study.  Rounds that make no progress at all
    count toward ``max_pool_rebuilds``; past it the remaining trials run
    serially in the parent as a last resort.
    """
    count = len(items)
    results: List[Any] = [_MISSING] * count
    attempts = [0] * count
    pending = list(range(count))
    timeout = policy.trial_timeout
    rebuilds = 0
    unproductive = 0
    degraded = False
    while pending:
        if degraded:
            for index in pending:
                results[index] = _serial_attempts(fn, items[index], attempts[index], policy)
            pending = []
            break
        failed: List[Tuple[int, str, BaseException]] = []
        still_pending: List[int] = []
        broken = False
        progressed = False
        try:
            pool = pools.get()
            handles = [
                (index, pool.apply_async(worker_task, (items[index],)))
                for index in pending
            ]
        except (KeyboardInterrupt, SystemExit):
            pools.shutdown()
            raise
        except Exception:
            # The pool itself is unusable (fork failure, closed state, ...):
            # an unproductive round by definition.
            handles = []
            still_pending = list(pending)
            broken = True
        try:
            for index, handle in handles:
                if broken:
                    # The pool is already condemned; harvest only what is
                    # provably finished, never wait on a doomed handle.
                    if handle.ready():
                        try:
                            value = _get_result(handle, 0)
                        except (KeyboardInterrupt, SystemExit):
                            pools.shutdown()
                            raise
                        except multiprocessing.TimeoutError:
                            still_pending.append(index)
                            continue
                        except Exception as error:
                            attempts[index] += 1
                            failed.append((index, "error", error))
                            continue
                        results[index] = value
                        progressed = True
                    else:
                        still_pending.append(index)
                    continue
                try:
                    value = _get_result(handle, timeout)
                except (KeyboardInterrupt, SystemExit):
                    pools.shutdown()
                    raise
                except multiprocessing.TimeoutError:
                    attempts[index] += 1
                    failed.append(
                        (
                            index,
                            "timeout",
                            TimeoutError(
                                f"trial result did not arrive within {timeout}s "
                                "(hung trial or lost worker)"
                            ),
                        )
                    )
                    broken = True
                except Exception as error:
                    attempts[index] += 1
                    failed.append((index, "error", error))
                else:
                    results[index] = value
                    progressed = True
        except (KeyboardInterrupt, SystemExit):
            pools.shutdown()
            raise
        for index, kind, error in failed:
            progressed = True  # a charged attempt is progress toward termination
            if attempts[index] > policy.retries:
                failure = _failure_from(items[index], attempts[index], kind, error)
                policy.failures.append(failure)
                results[index] = failure
            else:
                still_pending.append(index)
        pending = sorted(still_pending)
        if broken and pending:
            if not progressed:
                unproductive += 1
                if unproductive > policy.max_pool_rebuilds:
                    pools.shutdown()
                    degraded = True
                    continue
            else:
                unproductive = 0
            rebuilds += 1
            _sleep_backoff(policy, rebuilds)
            _try_rebuild(pools)
        elif broken:
            # Everything resolved despite the broken pool; replace it so the
            # next map starts from a healthy state.
            rebuilds += 1
            _try_rebuild(pools)
    return results
