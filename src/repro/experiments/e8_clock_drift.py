"""E8 -- robustness to clock drift within the (s_low, s_high) bounds.

Definition 1(2) only assumes *bounds* on the local clock rates; individual
clocks may drift arbitrarily within them.  The election algorithm's clock
ticks therefore arrive at irregular real-time intervals, and nodes with fast
clocks flip their activation coins more often than nodes with slow clocks.

The experiment runs the election with increasingly loose clock-rate bounds
(drift ratio ``s_high / s_low`` from 1 up to 8, with per-node random-walk
drift) and checks that a unique leader is still always elected and that the
average cost degrades only mildly -- the algorithm never relies on clock
agreement, only on each node ticking at a bounded rate.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.core.analysis import recommended_a0
from repro.experiments.parallel import SweepPool
from repro.experiments.results import ExperimentResult, ResultTable
from repro.experiments.runner import AdaptiveStopping
from repro.experiments.workloads import election_spec
from repro.scenarios.runtime import run_study
from repro.scenarios.spec import SpecNode, StudySpec
from repro.sim.clock import RandomWalkDrift
from repro.stats.confidence import confidence_interval

EXPERIMENT_ID = "e8"
TITLE = "Election cost under bounded clock drift"
CLAIM = (
    "Known bounds (s_low, s_high) on clock rates suffice: the algorithm stays "
    "correct under drift and its average cost degrades gracefully."
)

__all__ = ["EXPERIMENT_ID", "TITLE", "CLAIM", "run"]

DEFAULT_BOUNDS: Sequence[Tuple[float, float]] = (
    (1.0, 1.0),
    (0.9, 1.1),
    (0.75, 1.5),
    (0.5, 2.0),
    (0.25, 2.0),
)


def _batch_ticks_active(bounds: Tuple[float, float]) -> bool:
    """Whether this experiment's election networks really batch their ticks.

    The drift-tolerant :class:`~repro.sim.process.SharedTickProcess` must
    drive every node even at the loosest clock bounds -- the old driver
    rejected drifting clocks, silently forcing this experiment back onto
    per-node ticking.  Asserted as a finding so a regression shows up in the
    experiment report, not just in unit tests.  The probe ring is tiny: the
    driver wiring is size-independent, only the clock configuration matters.
    """
    from repro.core.runner import build_election_network

    s_low, s_high = bounds
    network, _ = build_election_network(
        4,
        seed=0,
        clock_bounds=bounds,
        clock_drift_factory=lambda uid: RandomWalkDrift(
            initial_rate=(s_low + s_high) / 2.0, step=(s_high - s_low) / 10.0
        ),
    )
    return all(node.program.tick_driver is not None for node in network.nodes)


def build_study(
    n: int = 32,
    clock_bounds: Sequence[Tuple[float, float]] = DEFAULT_BOUNDS,
    trials: int = 20,
    base_seed: int = 88,
) -> StudySpec:
    """The E8 battery: the same ring under increasingly loose clock bounds.

    Each point carries a ``random-walk`` drift node; the runtime builds one
    fresh :class:`~repro.sim.clock.RandomWalkDrift` per node, exactly like
    the per-uid factory closures this module used to hand-write.
    """
    a0 = recommended_a0(n)
    points = []
    for s_low, s_high in clock_bounds:
        drift_step = 0.0 if s_low == s_high else (s_high - s_low) / 10.0
        points.append(
            election_spec(
                n,
                trials,
                base_seed,
                a0=a0,
                label=f"drift-{s_low}-{s_high}",
                clock_bounds=(s_low, s_high),
                drift=SpecNode(
                    "random-walk",
                    {"initial_rate": (s_low + s_high) / 2.0, "step": drift_step},
                ),
            )
        )
    return StudySpec(
        name=EXPERIMENT_ID, title=TITLE, metric="messages_total", points=tuple(points)
    )


def run(
    n: int = 32,
    clock_bounds: Sequence[Tuple[float, float]] = DEFAULT_BOUNDS,
    trials: int = 20,
    base_seed: int = 88,
    workers: int = 1,
    pool: SweepPool = None,
    adaptive: Optional[AdaptiveStopping] = None,
) -> ExperimentResult:
    """Run the clock-drift sweep and return the E8 result."""
    if adaptive is not None:
        adaptive = adaptive.resolved("messages_total")
    table = ResultTable(
        title=f"E8: election cost on a ring of n={n} under clock drift",
        columns=[
            "s_low",
            "s_high",
            "drift_ratio",
            "messages_mean",
            "messages_ci95",
            "time_mean",
            "time_ci95",
            "all_elected",
            "unique_leader_always",
        ],
    )
    baseline_messages = None
    baseline_time = None
    worst_message_factor = 1.0
    worst_time_factor = 1.0
    study = build_study(n=n, clock_bounds=clock_bounds, trials=trials, base_seed=base_seed)
    per_bounds = run_study(study, pool=pool, workers=workers, adaptive=adaptive)
    for (s_low, s_high), results in zip(clock_bounds, per_bounds):
        elected = [r for r in results if r.elected]
        messages = confidence_interval([float(r.messages_total) for r in elected])
        times = confidence_interval(
            [float(r.election_time) for r in elected if r.election_time is not None]
        )
        if baseline_messages is None:
            baseline_messages = messages.estimate
            baseline_time = times.estimate
        worst_message_factor = max(
            worst_message_factor, messages.estimate / baseline_messages
        )
        worst_time_factor = max(worst_time_factor, times.estimate / baseline_time)
        table.add_row(
            s_low=s_low,
            s_high=s_high,
            drift_ratio=s_high / s_low,
            messages_mean=messages.estimate,
            messages_ci95=messages.half_width,
            time_mean=times.estimate,
            time_ci95=times.half_width,
            all_elected=len(elected) == len(results),
            unique_leader_always=all(r.leaders_elected == 1 for r in elected),
        )
    findings = {
        "batch_ticks_active": _batch_ticks_active(clock_bounds[-1]),
        "always_elected": all(table.column("all_elected")),
        "always_unique_leader": all(table.column("unique_leader_always")),
        "worst_message_factor_vs_driftfree": worst_message_factor,
        "worst_time_factor_vs_driftfree": worst_time_factor,
        "degradation_within_3x": worst_message_factor <= 3.0 and worst_time_factor <= 3.0,
    }
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        claim=CLAIM,
        tables=[table],
        findings=findings,
        parameters={
            "n": n,
            "clock_bounds": tuple(clock_bounds),
            "trials": trials,
            "base_seed": base_seed,
        },
    )
