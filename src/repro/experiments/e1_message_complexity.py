"""E1 -- average message complexity of the ABE election is linear in ``n``.

Paper claim (Sections 1 and 3): the election algorithm for anonymous,
unidirectional ABE rings of known size has *average linear message
complexity*, beating the Omega(n log n) lower bound that holds for
asynchronous rings (randomisation over an ABE network is what makes this
possible).

The experiment sweeps the ring size, runs many independent elections per size
with the recommended activation parameter, and reports the mean message count
with a confidence interval, the per-node cost, and the best-fitting growth
order among {n, n log n, n^2}.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.core.analysis import async_ring_message_lower_bound, recommended_a0
from repro.experiments.parallel import SweepPool
from repro.experiments.results import ExperimentResult, ResultTable
from repro.experiments.runner import AdaptiveStopping, adaptive_parameters
from repro.experiments.workloads import DEFAULT_RING_SIZES, DEFAULT_TRIALS, election_spec
from repro.scenarios.runtime import run_study
from repro.scenarios.spec import StudySpec
from repro.stats.complexity_fit import best_growth_order
from repro.stats.confidence import confidence_interval

EXPERIMENT_ID = "e1"
TITLE = "Average message complexity of the ABE election"
CLAIM = (
    "The election algorithm has average linear message complexity on anonymous "
    "unidirectional ABE rings of known size n."
)

__all__ = ["EXPERIMENT_ID", "TITLE", "CLAIM", "build_study", "run"]


def build_study(
    sizes: Sequence[int] = DEFAULT_RING_SIZES,
    trials: int = DEFAULT_TRIALS,
    base_seed: int = 11,
    election_overrides: Optional[Dict] = None,
) -> StudySpec:
    """The E1 battery: the default election at every ring size."""
    overrides = election_overrides or {}
    return StudySpec(
        name=EXPERIMENT_ID,
        title=TITLE,
        metric="messages_total",
        points=tuple(
            election_spec(n, trials, base_seed, **overrides) for n in sizes
        ),
    )


def run(
    sizes: Sequence[int] = DEFAULT_RING_SIZES,
    trials: int = DEFAULT_TRIALS,
    base_seed: int = 11,
    workers: int = 1,
    pool: SweepPool = None,
    adaptive: Optional[AdaptiveStopping] = None,
    election_overrides: Optional[Dict] = None,
) -> ExperimentResult:
    """Run the message-complexity sweep and return the E1 result.

    The sweep itself is declarative (:func:`build_study` +
    :func:`~repro.scenarios.runtime.run_study`); this function is the thin
    analysis callback over the per-size result lists.  ``workers`` fans each
    size's trials across one shared
    :class:`~repro.experiments.parallel.SweepPool` (created by ``run_study``
    unless an external ``pool`` is passed in); results are bit-identical to
    serial.  ``adaptive`` stops each size's trials once the message-count CI
    is tight enough (``trials`` becomes the budget); ``election_overrides``
    forwards extra :func:`~repro.core.runner.run_election` keywords (e.g.
    ``batch_sampling=False`` to reproduce the pre-fast-default streams).
    """
    if adaptive is not None:
        adaptive = adaptive.resolved("messages_total")
    table = ResultTable(
        title="E1: messages to elect a leader (mean over trials)",
        columns=[
            "n",
            "a0",
            "messages_mean",
            "messages_ci95",
            "messages_per_node",
            "nlogn_reference",
            "all_elected",
        ],
    )
    sizes = list(sizes)
    means = []
    study = build_study(
        sizes=sizes, trials=trials, base_seed=base_seed, election_overrides=election_overrides
    )
    per_size = run_study(study, pool=pool, workers=workers, adaptive=adaptive)
    for n, results in zip(sizes, per_size):
        elected = [r for r in results if r.elected]
        message_counts = [float(r.messages_total) for r in elected]
        interval = confidence_interval(message_counts)
        means.append(interval.estimate)
        table.add_row(
            n=n,
            a0=recommended_a0(n),
            messages_mean=interval.estimate,
            messages_ci95=interval.half_width,
            messages_per_node=interval.estimate / n,
            nlogn_reference=async_ring_message_lower_bound(n),
            all_elected=len(elected) == len(results),
        )
    fits = best_growth_order(sizes, means)
    best_model = next(iter(fits))
    per_node = [mean / n for mean, n in zip(means, sizes)]
    table.add_note(
        f"best-fitting growth order: {best_model} "
        f"(relative error {fits[best_model].relative_error:.3f})"
    )
    findings = {
        "best_growth_order": best_model,
        "linear_is_best": best_model == "n",
        "max_messages_per_node": max(per_node),
        "min_messages_per_node": min(per_node),
        "per_node_spread": max(per_node) / min(per_node) if min(per_node) > 0 else float("inf"),
        "all_runs_elected": all(table.column("all_elected")),
    }
    parameters = adaptive_parameters(
        {"sizes": tuple(sizes), "trials": trials, "base_seed": base_seed},
        adaptive,
        per_size,
    )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        claim=CLAIM,
        tables=[table],
        findings=findings,
        parameters=parameters,
    )
