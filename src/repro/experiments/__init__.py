"""Experiment harness: regenerating the paper's quantitative claims.

The brief announcement contains no numbered tables or figures; its evaluation
is a set of stated claims (linear average complexity, the ``1/p``
retransmission expectation, the Theorem 1 synchronisation bound, comparability
with the classical baselines).  EXPERIMENTS.md maps each claim to one
experiment module here and one benchmark under ``benchmarks/``:

========  ==================================================================
E1        Average message complexity of the ABE election is linear in ``n``
E2        Average time complexity of the ABE election is linear in ``n``
E3        The activation parameter ``A0`` trades messages against time
E4        Lossy-channel retransmission: expected transmissions ``= 1/p``
E5        Theorem 1: correct synchronizers use >= n messages/round; the ABD
          synchronizer undercuts the bound but is unsound on ABE delays
E6        Comparison with Itai-Rodeh / Chang-Roberts / DKR / Franklin
E7        Complexity depends on the delay *mean*, not the delay family
E8        Robustness to clock drift within the (s_low, s_high) bounds
E9        Stabilization of the churn-aware election under leader churn
A1        Ablation: adaptive vs constant activation schedule
A2        Ablation: purging at active nodes vs forwarding
========  ==================================================================

Every module exposes ``run(...) -> ExperimentResult`` with conservative
defaults (full-size sweeps) and accepts smaller parameters for quick runs; the
benchmarks call them with reduced trial counts so the whole suite stays
laptop-friendly.
"""

from repro.experiments.results import ExperimentResult, ResultTable
from repro.experiments.runner import (
    AdaptiveStopping,
    adaptive_monte_carlo,
    monte_carlo,
    trial_seeds,
)
from repro.experiments.parallel import ParallelTrialRunner, SweepPool, parallel_map
from repro.experiments.reporting import format_table, render_experiment
from repro.experiments.resilience import (
    CheckpointJournal,
    ExecutionPolicy,
    TrialFailure,
    active_policy,
    spec_fingerprint,
)
from repro.experiments import (
    e1_message_complexity,
    e2_time_complexity,
    e3_activation_parameter,
    e4_retransmission,
    e5_synchronizer_lower_bound,
    e6_baseline_comparison,
    e7_delay_robustness,
    e8_clock_drift,
    e9_churn_stabilization,
    a1_schedule_ablation,
    a2_purge_ablation,
)

ALL_EXPERIMENTS = {
    "e1": e1_message_complexity,
    "e2": e2_time_complexity,
    "e3": e3_activation_parameter,
    "e4": e4_retransmission,
    "e5": e5_synchronizer_lower_bound,
    "e6": e6_baseline_comparison,
    "e7": e7_delay_robustness,
    "e8": e8_clock_drift,
    "e9": e9_churn_stabilization,
    "a1": a1_schedule_ablation,
    "a2": a2_purge_ablation,
}

__all__ = [
    "AdaptiveStopping",
    "adaptive_monte_carlo",
    "ExperimentResult",
    "ResultTable",
    "monte_carlo",
    "trial_seeds",
    "ParallelTrialRunner",
    "SweepPool",
    "parallel_map",
    "format_table",
    "render_experiment",
    "CheckpointJournal",
    "ExecutionPolicy",
    "TrialFailure",
    "active_policy",
    "spec_fingerprint",
    "ALL_EXPERIMENTS",
]
