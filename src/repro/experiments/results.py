"""Result containers for experiments.

A :class:`ResultTable` is a light-weight, ordered table of rows (dicts) with a
fixed column order -- the in-memory form of the tables printed into
EXPERIMENTS.md and by the benchmarks.  An :class:`ExperimentResult` bundles one
or more tables with the experiment's identity, the paper claim it checks, and
a dictionary of boolean/numeric *findings* that the tests assert on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

__all__ = ["ResultTable", "ExperimentResult"]


@dataclass
class ResultTable:
    """An ordered table of result rows."""

    title: str
    columns: List[str]
    rows: List[Dict[str, Any]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add_row(self, **values: Any) -> None:
        """Append a row; keys not in ``columns`` are rejected to catch typos."""
        unknown = set(values) - set(self.columns)
        if unknown:
            raise ValueError(f"unknown column(s) {sorted(unknown)}; table has {self.columns}")
        self.rows.append(values)

    def add_note(self, note: str) -> None:
        """Attach a free-form note rendered under the table."""
        self.notes.append(note)

    def column(self, name: str) -> List[Any]:
        """All values of one column, in row order (missing cells become ``None``)."""
        if name not in self.columns:
            raise KeyError(f"no column {name!r} in table {self.title!r}")
        return [row.get(name) for row in self.rows]

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)


@dataclass
class ExperimentResult:
    """The complete outcome of one experiment run."""

    experiment_id: str
    title: str
    claim: str
    tables: List[ResultTable] = field(default_factory=list)
    findings: Dict[str, Any] = field(default_factory=dict)
    parameters: Dict[str, Any] = field(default_factory=dict)

    def table(self, title: Optional[str] = None) -> ResultTable:
        """The first table (or the one with a matching title)."""
        if not self.tables:
            raise ValueError(f"experiment {self.experiment_id} produced no tables")
        if title is None:
            return self.tables[0]
        for table in self.tables:
            if table.title == title:
                return table
        raise KeyError(f"no table titled {title!r} in experiment {self.experiment_id}")

    def finding(self, key: str) -> Any:
        """A single named finding (raises ``KeyError`` when absent)."""
        return self.findings[key]
