"""E9 -- stabilization of the churn-aware election under dynamic faults.

The paper elects once on a static ring; this experiment asks the
self-stabilization question the dynamic-network arc opens: **after the leader
dies, how long until the ring has a unique leader again?**  Each point runs
the churn-aware election (:mod:`repro.core.churn_election`) under a
rate-driven crash-recover process (:class:`~repro.network.churn.PeriodicChurn`
targeting the current leader), sweeping the churn interval across ring sizes.

Two structural facts shape the expected numbers:

* a unidirectional ring with a node down is *partitioned*, so
  time-to-restabilize is bounded below by the remaining outage -- leader
  downtime cannot beat the scripted ``downtime`` unless the crash misses the
  leader entirely;
* faster churn (smaller interval) means more disruptions per run and more
  re-elections, but each re-election's cost stays in the same regime -- the
  per-disruption metrics, not the totals, are the stable observable.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.analysis import recommended_a0
from repro.experiments.parallel import SweepPool
from repro.experiments.results import ExperimentResult, ResultTable
from repro.experiments.runner import AdaptiveStopping
from repro.experiments.workloads import election_spec
from repro.scenarios.runtime import run_study
from repro.scenarios.spec import SpecNode, StudySpec
from repro.stats.confidence import confidence_interval

EXPERIMENT_ID = "e9"
TITLE = "Stabilization time of the churn-aware election vs churn rate"
CLAIM = (
    "Under scripted leader churn the election re-stabilizes to a unique live "
    "leader after every disruption, with leader-downtime governed by the "
    "scripted outage plus one re-election."
)

__all__ = ["EXPERIMENT_ID", "TITLE", "CLAIM", "build_study", "run"]

#: Mean gaps between leader crashes (simulated time) -- the churn-rate sweep.
DEFAULT_INTERVALS: Sequence[float] = (40.0, 80.0, 160.0)
#: Ring sizes crossed with the intervals (the topology dimension).
DEFAULT_SIZES: Sequence[int] = (8, 16)
#: Scripted outage per crash.
DEFAULT_DOWNTIME = 30.0
#: Leader crashes per trial.
DEFAULT_CRASHES = 2


def build_study(
    sizes: Sequence[int] = DEFAULT_SIZES,
    intervals: Sequence[float] = DEFAULT_INTERVALS,
    trials: int = 10,
    base_seed: int = 99,
    downtime: float = DEFAULT_DOWNTIME,
    crashes: int = DEFAULT_CRASHES,
) -> StudySpec:
    """The E9 battery: ring size x churn interval, leader-targeted churn.

    Each point carries a ``periodic`` churn node expanded per trial from the
    trial seed's ``"churn"`` stream, so the realized crash schedule varies
    across trials while staying a pure function of each derived seed.
    """
    points = []
    for n in sizes:
        a0 = recommended_a0(n)
        for interval in intervals:
            points.append(
                election_spec(
                    n,
                    trials,
                    base_seed,
                    a0=a0,
                    label=f"churn-n{n}-i{interval:g}",
                    churn=SpecNode(
                        "periodic",
                        {
                            "interval": interval,
                            "count": crashes,
                            "downtime": downtime,
                            "start": 10.0,
                            "target": "leader",
                        },
                    ),
                )
            )
    return StudySpec(
        name=EXPERIMENT_ID,
        title=TITLE,
        metric="time_to_restabilize",
        points=tuple(points),
    )


def run(
    sizes: Sequence[int] = DEFAULT_SIZES,
    intervals: Sequence[float] = DEFAULT_INTERVALS,
    trials: int = 10,
    base_seed: int = 99,
    downtime: float = DEFAULT_DOWNTIME,
    crashes: int = DEFAULT_CRASHES,
    workers: int = 1,
    pool: SweepPool = None,
    adaptive: Optional[AdaptiveStopping] = None,
) -> ExperimentResult:
    """Run the churn sweep and return the E9 result."""
    if adaptive is not None:
        adaptive = adaptive.resolved("time_to_restabilize")
    table = ResultTable(
        title="E9: stabilization under leader churn (downtime "
        f"{downtime:g}, {crashes} crashes/trial)",
        columns=[
            "n",
            "churn_interval",
            "stabilized_fraction",
            "re_elections_mean",
            "downtime_mean",
            "restabilize_mean",
            "restabilize_ci95",
            "messages_per_re_election",
            "suspicions_mean",
        ],
    )
    study = build_study(
        sizes=sizes,
        intervals=intervals,
        trials=trials,
        base_seed=base_seed,
        downtime=downtime,
        crashes=crashes,
    )
    per_point = run_study(study, pool=pool, workers=workers, adaptive=adaptive)
    grid = [(n, interval) for n in sizes for interval in intervals]
    all_stabilized = True
    unique_final_leader = True
    for (n, interval), results in zip(grid, per_point):
        ok = [r for r in results if r is not None and r.elected]
        stabilized = [r for r in ok if r.stabilized]
        all_stabilized = all_stabilized and len(stabilized) == len(results)
        unique_final_leader = unique_final_leader and all(
            r.leader_uid is not None for r in stabilized
        )
        restab = confidence_interval(
            [float(r.time_to_restabilize) for r in ok if r.re_elections > 0]
            or [0.0]
        )
        def _mean(values: Sequence[float]) -> float:
            return sum(values) / len(values) if values else 0.0

        table.add_row(
            n=n,
            churn_interval=interval,
            stabilized_fraction=(len(stabilized) / len(results)) if results else 0.0,
            re_elections_mean=_mean([float(r.re_elections) for r in ok]),
            downtime_mean=_mean([float(r.leader_downtime) for r in ok]),
            restabilize_mean=restab.estimate,
            restabilize_ci95=restab.half_width,
            messages_per_re_election=_mean(
                [r.messages_per_re_election for r in ok if r.re_elections > 0]
            ),
            suspicions_mean=_mean([float(r.suspicions) for r in ok]),
        )
    disrupted_rows = [
        row for row in table.rows if row["re_elections_mean"] > 0
    ]
    findings = {
        "always_stabilized": all_stabilized,
        "unique_final_leader": unique_final_leader,
        # The ring partition argument: a re-election after a leader crash can
        # only finish after the recovery, so mean restabilization time is at
        # least a nontrivial fraction of the scripted outage.
        "restabilize_reflects_outage": all(
            row["restabilize_mean"] > 0.0 for row in disrupted_rows
        ),
        "disrupted_points": len(disrupted_rows),
    }
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        claim=CLAIM,
        tables=[table],
        findings=findings,
        parameters={
            "sizes": tuple(sizes),
            "intervals": tuple(intervals),
            "trials": trials,
            "base_seed": base_seed,
            "downtime": downtime,
            "crashes": crashes,
        },
    )
