"""Plain-text rendering of experiment results.

The benchmarks and the CLI print experiment tables in a fixed-width layout so
that EXPERIMENTS.md, the benchmark output and ad-hoc CLI runs all show the
same rows in the same shape.
"""

from __future__ import annotations

from typing import Any, List

from repro.experiments.results import ExperimentResult, ResultTable

__all__ = ["format_cell", "format_table", "render_experiment"]


def format_cell(value: Any) -> str:
    """Render one cell: floats get 4 significant digits, booleans yes/no."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 10_000 or abs(value) < 0.001:
            return f"{value:.3e}"
        return f"{value:.4g}"
    if value is None:
        return "-"
    return str(value)


def format_table(table: ResultTable) -> str:
    """Fixed-width rendering of a :class:`ResultTable`."""
    header = list(table.columns)
    body: List[List[str]] = [
        [format_cell(row.get(column)) for column in header] for row in table.rows
    ]
    widths = [
        max(len(header[i]), *(len(line[i]) for line in body)) if body else len(header[i])
        for i in range(len(header))
    ]
    lines = [table.title, "-" * len(table.title)]
    lines.append("  ".join(header[i].ljust(widths[i]) for i in range(len(header))))
    lines.append("  ".join("-" * widths[i] for i in range(len(header))))
    for line in body:
        lines.append("  ".join(line[i].ljust(widths[i]) for i in range(len(header))))
    for note in table.notes:
        lines.append(f"  note: {note}")
    return "\n".join(lines)


def render_experiment(result: ExperimentResult) -> str:
    """Full plain-text report of one experiment (claim, tables, findings)."""
    lines = [
        f"== {result.experiment_id.upper()}: {result.title} ==",
        f"claim: {result.claim}",
        "",
    ]
    for table in result.tables:
        lines.append(format_table(table))
        lines.append("")
    if result.findings:
        lines.append("findings:")
        for key in sorted(result.findings):
            lines.append(f"  {key}: {format_cell(result.findings[key])}")
    if result.parameters:
        lines.append("parameters:")
        for key in sorted(result.parameters):
            lines.append(f"  {key}: {format_cell(result.parameters[key])}")
    return "\n".join(lines)
