"""E7 -- the ABE model abstracts the delay *shape*: only the mean bound matters.

Sections 1 and 2 motivate the ABE model with a list of real-world delay
sources -- queueing under load, dynamic routing, lossy-channel retransmission
-- all of which produce unbounded delays with bounded expectation.  The point
of Definition 1 is that an algorithm designed against the expected-delay bound
``delta`` works for *any* of these channels.

The experiment runs the election on the same ring with eight delay families of
identical mean (constant, uniform, exponential, geometric retransmission,
Pareto, lognormal, M/M/1 sojourn, dynamic routing) and reports the average
message and time cost per family.  The claim holds if the costs stay within a
small factor of the exponential-channel reference for every family.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.core.analysis import recommended_a0
from repro.experiments.parallel import SweepPool
from repro.experiments.results import ExperimentResult, ResultTable
from repro.experiments.runner import AdaptiveStopping
from repro.experiments.workloads import delay_family_specs, election_spec
from repro.models.base import classify_delay
from repro.scenarios.registry import build_delay
from repro.scenarios.runtime import run_study
from repro.scenarios.spec import StudySpec
from repro.stats.confidence import confidence_interval

EXPERIMENT_ID = "e7"
TITLE = "Election cost across delay families with identical expected delay"
CLAIM = (
    "The election algorithm's average cost depends on the expected-delay bound "
    "delta, not on the particular delay distribution producing it."
)

__all__ = ["EXPERIMENT_ID", "TITLE", "CLAIM", "build_study", "run"]


def _family_catalogue(
    mean_delay: float, families: Optional[Sequence[str]]
) -> Dict[str, object]:
    catalogue = delay_family_specs(mean_delay)
    if families is not None:
        unknown = set(families) - set(catalogue)
        if unknown:
            raise ValueError(f"unknown delay families {sorted(unknown)}")
        catalogue = {name: catalogue[name] for name in families}
    return catalogue


def build_study(
    n: int = 32,
    mean_delay: float = 1.0,
    trials: int = 20,
    base_seed: int = 77,
    families: Optional[Sequence[str]] = None,
) -> StudySpec:
    """The E7 battery: the same ring under every delay family of equal mean."""
    catalogue = _family_catalogue(mean_delay, families)
    a0 = recommended_a0(n)
    return StudySpec(
        name=EXPERIMENT_ID,
        title=TITLE,
        metric="messages_total",
        points=tuple(
            election_spec(
                n,
                trials,
                base_seed,
                a0=a0,
                delay=node,
                label=f"family-{name}",
                expected_delay_bound=max(build_delay(node).mean(), mean_delay),
            )
            for name, node in catalogue.items()
        ),
    )


def run(
    n: int = 32,
    mean_delay: float = 1.0,
    trials: int = 20,
    base_seed: int = 77,
    families: Optional[Sequence[str]] = None,
    workers: int = 1,
    pool: SweepPool = None,
    adaptive: Optional[AdaptiveStopping] = None,
) -> ExperimentResult:
    """Run the delay-robustness comparison and return the E7 result."""
    if adaptive is not None:
        adaptive = adaptive.resolved("messages_total")

    table = ResultTable(
        title=f"E7: election cost on a ring of n={n} under different delay families",
        columns=[
            "delay_family",
            "model_class",
            "expected_delay",
            "messages_mean",
            "messages_ci95",
            "time_mean",
            "time_ci95",
            "all_elected",
        ],
    )
    message_means: Dict[str, float] = {}
    time_means: Dict[str, float] = {}
    study = build_study(
        n=n, mean_delay=mean_delay, trials=trials, base_seed=base_seed, families=families
    )
    per_family = run_study(study, pool=pool, workers=workers, adaptive=adaptive)
    for point, results in zip(study.points, per_family):
        name = point.label[len("family-"):]
        delay = build_delay(point.delay)
        elected = [r for r in results if r.elected]
        messages = confidence_interval([float(r.messages_total) for r in elected])
        times = confidence_interval(
            [float(r.election_time) for r in elected if r.election_time is not None]
        )
        message_means[name] = messages.estimate
        time_means[name] = times.estimate
        table.add_row(
            delay_family=name,
            model_class=classify_delay(delay),
            expected_delay=delay.mean(),
            messages_mean=messages.estimate,
            messages_ci95=messages.half_width,
            time_mean=times.estimate,
            time_ci95=times.half_width,
            all_elected=len(elected) == len(results),
        )

    reference_messages = message_means.get("exponential", next(iter(message_means.values())))
    reference_time = time_means.get("exponential", next(iter(time_means.values())))
    message_spread = max(message_means.values()) / max(min(message_means.values()), 1e-12)
    time_spread = max(time_means.values()) / max(min(time_means.values()), 1e-12)
    findings = {
        "message_spread_across_families": message_spread,
        "time_spread_across_families": time_spread,
        "all_families_within_3x_messages": all(
            value <= 3.0 * reference_messages for value in message_means.values()
        ),
        "all_families_within_3x_time": all(
            value <= 3.0 * reference_time for value in time_means.values()
        ),
        "all_runs_elected": all(table.column("all_elected")),
    }
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        claim=CLAIM,
        tables=[table],
        findings=findings,
        parameters={
            "n": n,
            "mean_delay": mean_delay,
            "trials": trials,
            "base_seed": base_seed,
        },
    )
