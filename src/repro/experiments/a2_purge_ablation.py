"""A2 -- ablation: purging messages at active nodes vs forwarding them.

DESIGN.md design decision 4.  Rule (iii) of the election algorithm says an
active node hit by a message purges it (and either becomes leader or falls
back to idle).  Purging is what removes losing candidates' messages from the
ring; without it every message circulates until it happens to hit a node in
exactly the right state, the hop counters lose their meaning (``hop = n`` no
longer implies "all other nodes are passive"), and both the cost and the
safety of the algorithm degrade.

The ablation runs the paper's variant and the no-purging variant side by side
on small rings with a bounded event budget and reports message cost,
termination rate and -- crucially -- whether multiple leaders were ever
declared.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.analysis import recommended_a0
from repro.experiments.parallel import SweepPool
from repro.experiments.results import ExperimentResult, ResultTable
from repro.experiments.runner import AdaptiveStopping
from repro.experiments.workloads import election_spec
from repro.scenarios.runtime import run_study
from repro.scenarios.spec import StudySpec
from repro.stats.estimators import mean

EXPERIMENT_ID = "a2"
TITLE = "Ablation: purging at active nodes vs forwarding"
CLAIM = (
    "Purging messages at active nodes is essential: without it the algorithm "
    "loses its linear message complexity and its single-leader safety argument."
)

__all__ = ["EXPERIMENT_ID", "TITLE", "CLAIM", "build_study", "run"]

DEFAULT_SIZES: Sequence[int] = (8, 16)

#: Event budget per run for the (potentially non-terminating) no-purge variant.
EVENT_BUDGET_PER_NODE = 8_000

#: Purge variants compared per ring size, in report order.
PURGE_VARIANTS: Sequence[tuple] = (("purge (paper)", True), ("no purge", False))


def build_study(
    sizes: Sequence[int] = DEFAULT_SIZES,
    trials: int = 12,
    base_seed: int = 202,
) -> StudySpec:
    """The A2 battery: paper purging vs no purging, event-budget bounded."""
    points = []
    for n in sizes:
        a0 = recommended_a0(n)
        for variant, purge in PURGE_VARIANTS:
            points.append(
                election_spec(
                    n,
                    trials,
                    base_seed,
                    a0=a0,
                    purge_at_active=purge,
                    max_events=EVENT_BUDGET_PER_NODE * n,
                    label=f"{variant}-n{n}",
                )
            )
    return StudySpec(
        name=EXPERIMENT_ID, title=TITLE, metric="messages_total", points=tuple(points)
    )


def run(
    sizes: Sequence[int] = DEFAULT_SIZES,
    trials: int = 12,
    base_seed: int = 202,
    workers: int = 1,
    pool: SweepPool = None,
    adaptive: Optional[AdaptiveStopping] = None,
) -> ExperimentResult:
    """Run the purge ablation and return the A2 result."""
    if adaptive is not None:
        adaptive = adaptive.resolved("messages_total")
    table = ResultTable(
        title="A2: with vs without purging at active nodes",
        columns=[
            "n",
            "variant",
            "terminated_fraction",
            "messages_mean",
            "multi_leader_runs",
            "hop_overflow_runs",
        ],
    )
    purge_messages = {}
    nopurge_messages = {}
    nopurge_safety_violations = 0
    nopurge_nontermination = 0
    sizes = list(sizes)
    study = build_study(sizes=sizes, trials=trials, base_seed=base_seed)
    per_point = run_study(study, pool=pool, workers=workers, adaptive=adaptive)
    for size_index, n in enumerate(sizes):
        for variant_index, (variant, purge) in enumerate(PURGE_VARIANTS):
            outcomes = per_point[size_index * len(PURGE_VARIANTS) + variant_index]
            terminated = [o for o in outcomes if o.elected]
            message_counts = [float(o.messages_total) for o in outcomes]
            multi_leader = sum(1 for o in outcomes if o.leaders_elected > 1)
            overflow = sum(1 for o in outcomes if o.hop_overflows > 0)
            if purge:
                purge_messages[n] = mean(message_counts)
            else:
                nopurge_messages[n] = mean(message_counts)
                nopurge_safety_violations += multi_leader + overflow
                nopurge_nontermination += len(outcomes) - len(terminated)
            table.add_row(
                n=n,
                variant=variant,
                terminated_fraction=len(terminated) / len(outcomes),
                messages_mean=mean(message_counts),
                multi_leader_runs=multi_leader,
                hop_overflow_runs=overflow,
            )
    message_blowup = max(
        nopurge_messages[n] / purge_messages[n] for n in sizes if purge_messages[n] > 0
    )
    findings = {
        "paper_variant_always_terminates": all(
            row["terminated_fraction"] == 1.0
            for row in table
            if row["variant"] == "purge (paper)"
        ),
        "paper_variant_always_single_leader": all(
            row["multi_leader_runs"] == 0 for row in table if row["variant"] == "purge (paper)"
        ),
        "no_purge_message_blowup": message_blowup,
        "no_purge_breaks_something": (
            nopurge_safety_violations > 0
            or nopurge_nontermination > 0
            or message_blowup > 3.0
        ),
    }
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        claim=CLAIM,
        tables=[table],
        findings=findings,
        parameters={"sizes": tuple(sizes), "trials": trials, "base_seed": base_seed},
    )
