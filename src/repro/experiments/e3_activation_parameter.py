"""E3 -- the base activation parameter A0 trades messages against time.

Section 3 introduces the algorithm "parameterised by a base activation
parameter A0 in (0, 1)" and argues that the adaptive wake-up probability keeps
the overall wake-up pressure constant.  The constant that pressure is tuned to
matters: a large A0 floods the ring with competing candidates (many messages,
little waiting), a tiny A0 makes candidates rare (few messages, long idle
stretches).  The experiment sweeps A0 around the recommended value at a fixed
ring size and reports both costs, exposing the trade-off and showing the
recommended value sits near the knee.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.core.analysis import recommended_a0, ring_pressure_per_tick
from repro.experiments.parallel import SweepPool
from repro.experiments.results import ExperimentResult, ResultTable
from repro.experiments.runner import AdaptiveStopping, adaptive_parameters
from repro.experiments.workloads import election_spec
from repro.scenarios.runtime import run_study
from repro.scenarios.spec import StudySpec
from repro.stats.confidence import confidence_interval

EXPERIMENT_ID = "e3"
TITLE = "Effect of the base activation parameter A0"
CLAIM = (
    "A0 controls a messages-vs-time trade-off; the value that matches one "
    "expected activation per ring traversal (approximately 1/n^2) balances both."
)

__all__ = ["EXPERIMENT_ID", "TITLE", "CLAIM", "build_study", "run"]

#: Multipliers applied to the recommended A0 in the sweep.
DEFAULT_MULTIPLIERS: Sequence[float] = (0.25, 0.5, 1.0, 2.0, 4.0, 16.0, 64.0)


def build_study(
    n: int = 32,
    multipliers: Sequence[float] = DEFAULT_MULTIPLIERS,
    trials: int = 20,
    base_seed: int = 33,
    election_overrides: Optional[Dict] = None,
) -> StudySpec:
    """The E3 battery: one fixed-size election per A0 multiplier."""
    overrides = election_overrides or {}
    reference_a0 = recommended_a0(n)
    # One clamp, shared by the trial fan-out and the reported table rows.
    a0_values = [min(0.999, reference_a0 * multiplier) for multiplier in multipliers]
    return StudySpec(
        name=EXPERIMENT_ID,
        title=TITLE,
        metric="messages_total",
        points=tuple(
            election_spec(
                n, trials, base_seed, a0=a0, label=f"a0x{multiplier}", **overrides
            )
            for multiplier, a0 in zip(multipliers, a0_values)
        ),
    )


def run(
    n: int = 32,
    multipliers: Sequence[float] = DEFAULT_MULTIPLIERS,
    trials: int = 20,
    base_seed: int = 33,
    workers: int = 1,
    pool: SweepPool = None,
    adaptive: Optional[AdaptiveStopping] = None,
    election_overrides: Optional[Dict] = None,
) -> ExperimentResult:
    """Sweep A0 at fixed ring size ``n`` and return the E3 result.

    One shared :class:`~repro.experiments.parallel.SweepPool` serves every
    multiplier point; results are bit-identical for any worker count.
    ``adaptive`` stops each multiplier's trials once the message-count CI is
    tight enough; ``election_overrides`` forwards extra
    :func:`~repro.core.runner.run_election` keywords.
    """
    if adaptive is not None:
        adaptive = adaptive.resolved("messages_total")
    overrides = election_overrides or {}
    reference_a0 = recommended_a0(n)
    table = ResultTable(
        title=f"E3: A0 sweep on a ring of n={n} nodes",
        columns=[
            "a0",
            "a0_over_recommended",
            "ring_pressure_per_tick",
            "messages_mean",
            "messages_ci95",
            "time_mean",
            "time_ci95",
            "activations_mean",
        ],
    )
    rows = []
    study = build_study(
        n=n,
        multipliers=multipliers,
        trials=trials,
        base_seed=base_seed,
        election_overrides=overrides,
    )
    a0_values = [point.a0 for point in study.points]
    per_point = run_study(study, pool=pool, workers=workers, adaptive=adaptive)
    for multiplier, a0, results in zip(multipliers, a0_values, per_point):
        elected = [r for r in results if r.elected]
        messages = confidence_interval([float(r.messages_total) for r in elected])
        times = confidence_interval(
            [float(r.election_time) for r in elected if r.election_time is not None]
        )
        activations = sum(r.activations for r in elected) / len(elected)
        rows.append((multiplier, messages.estimate, times.estimate))
        table.add_row(
            a0=a0,
            a0_over_recommended=multiplier,
            ring_pressure_per_tick=ring_pressure_per_tick(a0, n),
            messages_mean=messages.estimate,
            messages_ci95=messages.half_width,
            time_mean=times.estimate,
            time_ci95=times.half_width,
            activations_mean=activations,
        )
    # Findings: messages grow with A0; the recommended value is competitive on
    # the combined cost (normalised product of messages and time).
    message_means = [row[1] for row in rows]
    time_means = [row[2] for row in rows]
    combined = [m * t for m, t in zip(message_means, time_means)]
    best_index = combined.index(min(combined))
    recommended_index = min(
        range(len(multipliers)), key=lambda i: abs(multipliers[i] - 1.0)
    )
    best_multiplier = multipliers[best_index]
    findings = {
        "messages_increase_with_a0": message_means[-1] > message_means[0],
        "best_multiplier": best_multiplier,
        # The empirical optimum of the combined (messages x time) cost sits at
        # the 1/n^2 scale: within a factor of 4 of the recommended value.
        "best_multiplier_at_recommended_scale": 0.25 <= best_multiplier <= 4.0,
        "recommended_within_4x_of_best": combined[recommended_index]
        <= 4.0 * combined[best_index],
        "recommended_a0": reference_a0,
    }
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        claim=CLAIM,
        tables=[table],
        findings=findings,
        parameters=adaptive_parameters(
            {
                "n": n,
                "multipliers": tuple(multipliers),
                "trials": trials,
                "base_seed": base_seed,
            },
            adaptive,
            per_point,
        ),
    )
