"""A1 -- ablation: the adaptive activation schedule vs a constant schedule.

DESIGN.md design decision 3.  The paper's schedule raises a node's activation
probability as its ``d`` grows (``1 - (1 - A0)^d``), keeping the ring-wide
wake-up pressure constant as nodes become passive.  The obvious simplification
-- activate with a fixed probability ``A0`` at every tick regardless of ``d``
-- loses that property: late in the election only a couple of candidates
remain and, with the small per-node ``A0`` that linear message complexity
requires, they dawdle for a long time before retrying, blowing up the time
complexity.  This ablation quantifies the gap.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.analysis import recommended_a0
from repro.experiments.parallel import SweepPool
from repro.experiments.results import ExperimentResult, ResultTable
from repro.experiments.runner import AdaptiveStopping
from repro.experiments.workloads import election_spec
from repro.scenarios.runtime import run_study
from repro.scenarios.spec import SpecNode, StudySpec
from repro.stats.confidence import confidence_interval

EXPERIMENT_ID = "a1"
TITLE = "Ablation: adaptive vs constant activation schedule"
CLAIM = (
    "The adaptive schedule 1-(1-A0)^d is required for linear *time* "
    "complexity; a constant-probability schedule pays a large time penalty at "
    "the same A0."
)

__all__ = ["EXPERIMENT_ID", "TITLE", "CLAIM", "build_study", "run"]

DEFAULT_SIZES: Sequence[int] = (8, 16, 32, 64)

#: Schedule variants compared per ring size, in report order.
SCHEDULE_VARIANTS: Sequence[str] = ("adaptive", "constant")


def build_study(
    sizes: Sequence[int] = DEFAULT_SIZES,
    trials: int = 25,
    base_seed: int = 101,
) -> StudySpec:
    """The A1 battery: adaptive vs constant schedule at every size."""
    points = []
    for n in sizes:
        a0 = recommended_a0(n)
        for variant in SCHEDULE_VARIANTS:
            points.append(
                election_spec(
                    n,
                    trials,
                    base_seed,
                    a0=a0,
                    schedule=SpecNode(variant, {"a0": a0}),
                    label=f"{variant}-n{n}",
                )
            )
    return StudySpec(
        name=EXPERIMENT_ID, title=TITLE, metric="election_time", points=tuple(points)
    )


def run(
    sizes: Sequence[int] = DEFAULT_SIZES,
    trials: int = 25,
    base_seed: int = 101,
    workers: int = 1,
    pool: SweepPool = None,
    adaptive: Optional[AdaptiveStopping] = None,
) -> ExperimentResult:
    """Run the schedule ablation and return the A1 result."""
    if adaptive is not None:
        adaptive = adaptive.resolved("election_time")
    table = ResultTable(
        title="A1: adaptive vs constant activation schedule (same A0 per size)",
        columns=[
            "n",
            "schedule",
            "a0",
            "messages_mean",
            "time_mean",
            "time_ci95",
            "activations_mean",
            "all_elected",
        ],
    )
    time_ratio_worst = 0.0
    sizes = list(sizes)
    study = build_study(sizes=sizes, trials=trials, base_seed=base_seed)
    per_point = run_study(study, pool=pool, workers=workers, adaptive=adaptive)
    for size_index, n in enumerate(sizes):
        a0 = recommended_a0(n)
        per_schedule_time = {}
        for variant_index, label in enumerate(SCHEDULE_VARIANTS):
            results = per_point[size_index * len(SCHEDULE_VARIANTS) + variant_index]
            elected = [r for r in results if r.elected]
            messages = confidence_interval([float(r.messages_total) for r in elected])
            times = confidence_interval(
                [float(r.election_time) for r in elected if r.election_time is not None]
            )
            activations = sum(r.activations for r in elected) / len(elected)
            per_schedule_time[label] = times.estimate
            table.add_row(
                n=n,
                schedule=label,
                a0=a0,
                messages_mean=messages.estimate,
                time_mean=times.estimate,
                time_ci95=times.half_width,
                activations_mean=activations,
                all_elected=len(elected) == len(results),
            )
        ratio = per_schedule_time["constant"] / per_schedule_time["adaptive"]
        time_ratio_worst = max(time_ratio_worst, ratio)
    table.add_note(
        "the constant schedule keeps the same per-node A0, so its early "
        "behaviour matches the adaptive schedule; the gap opens in the endgame "
        "when few idle candidates remain."
    )
    findings = {
        "constant_schedule_slower": time_ratio_worst > 1.0,
        "worst_time_ratio_constant_over_adaptive": time_ratio_worst,
        "adaptive_needed_for_linear_time": time_ratio_worst > 1.5,
    }
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        claim=CLAIM,
        tables=[table],
        findings=findings,
        parameters={"sizes": tuple(sizes), "trials": trials, "base_seed": base_seed},
    )
