"""E4 -- lossy-channel retransmission: expected transmissions equal ``1/p``.

Section 1, case (iii): a message over an unreliable physical channel succeeds
with probability ``p`` per transmission; the number of transmissions cannot be
bounded (with probability ``(1-p)^k`` more than ``k`` are needed) but its
expectation is ``k_avg = sum_k (k+1)(1-p)^k p = 1/p``, and with unit
transmission time the expected delay is ``1/p`` too.  This is the paper's
flagship example of a channel that is ABE but not ABD.

The experiment drives both the mechanistic attempt-by-attempt channel model
and the closed-form geometric delay distribution across a range of ``p`` and
compares the empirical means and tails against the formulas.
"""

from __future__ import annotations

from typing import Sequence

from repro.experiments.parallel import SweepPool
from repro.experiments.results import ExperimentResult, ResultTable
from repro.network.retransmission import expected_transmissions, tail_probability
from repro.scenarios.runtime import run_study
from repro.scenarios.spec import ScenarioSpec, StudySpec

EXPERIMENT_ID = "e4"
TITLE = "Retransmission over a lossy channel: k_avg = 1/p"
CLAIM = (
    "The number of transmissions needed is unbounded, but its expectation is "
    "1/p; with unit transmission time the expected delay is 1/p as well."
)

__all__ = ["EXPERIMENT_ID", "TITLE", "CLAIM", "build_study", "run"]

DEFAULT_PROBABILITIES: Sequence[float] = (0.1, 0.2, 0.3, 0.5, 0.7, 0.9)


def build_study(
    probabilities: Sequence[float] = DEFAULT_PROBABILITIES,
    messages: int = 20_000,
    tail_k: int = 5,
    base_seed: int = 44,
) -> StudySpec:
    """The E4 battery: one one-shot channel measurement per probability.

    Measurement streams are named per probability inside the runner
    (:func:`repro.scenarios.algorithms.measure_lossy_channel`), so fanning
    the points across workers is bit-identical to a serial loop.
    """
    return StudySpec(
        name=EXPERIMENT_ID,
        title=TITLE,
        metric="closed_form_mean_delay",
        points=tuple(
            ScenarioSpec(
                algorithm="lossy-channel",
                seed=base_seed,
                label=f"p{p}",
                params={"p": p, "messages": messages, "tail_k": tail_k},
            )
            for p in probabilities
        ),
    )


def run(
    probabilities: Sequence[float] = DEFAULT_PROBABILITIES,
    messages: int = 20_000,
    tail_k: int = 5,
    base_seed: int = 44,
    workers: int = 1,
    pool: SweepPool = None,
) -> ExperimentResult:
    """Measure the retransmission channel across success probabilities."""
    table = ResultTable(
        title="E4: expected transmissions and delay over a lossy channel",
        columns=[
            "p",
            "theory_1_over_p",
            "mechanistic_mean_attempts",
            "closed_form_mean_delay",
            "relative_error_mechanistic",
            "relative_error_closed_form",
            f"tail_P[K>{tail_k}]_theory",
            f"tail_P[K>{tail_k}]_measured",
        ],
    )

    study = build_study(
        probabilities=probabilities, messages=messages, tail_k=tail_k, base_seed=base_seed
    )
    measurements = [
        point_results[0]
        for point_results in run_study(study, pool=pool, workers=workers)
    ]
    max_relative_error = 0.0
    for p, (mechanistic, closed_form, tail_measured) in zip(probabilities, measurements):
        theory = expected_transmissions(p)
        error_mechanistic = abs(mechanistic - theory) / theory
        error_closed = abs(closed_form - theory) / theory
        max_relative_error = max(max_relative_error, error_mechanistic, error_closed)
        table.add_row(
            **{
                "p": p,
                "theory_1_over_p": theory,
                "mechanistic_mean_attempts": mechanistic,
                "closed_form_mean_delay": closed_form,
                "relative_error_mechanistic": error_mechanistic,
                "relative_error_closed_form": error_closed,
                f"tail_P[K>{tail_k}]_theory": tail_probability(p, tail_k),
                f"tail_P[K>{tail_k}]_measured": tail_measured,
            }
        )
    findings = {
        "max_relative_error": max_relative_error,
        "matches_1_over_p_within_5pct": max_relative_error < 0.05,
        "delay_is_unbounded": all(
            tail_probability(p, tail_k) > 0 for p in probabilities
        ),
    }
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        claim=CLAIM,
        tables=[table],
        findings=findings,
        parameters={
            "probabilities": tuple(probabilities),
            "messages": messages,
            "tail_k": tail_k,
            "base_seed": base_seed,
        },
    )
