"""Export experiment results to Markdown and CSV.

EXPERIMENTS.md is generated from the same :class:`~repro.experiments.results.ResultTable`
objects the benchmarks print, via :func:`table_to_markdown` /
:func:`experiment_to_markdown`; :func:`table_to_csv` exists for users who want
to post-process the raw numbers elsewhere.
"""

from __future__ import annotations

import csv
import io
from typing import Iterable

from repro.experiments.reporting import format_cell
from repro.experiments.results import ExperimentResult, ResultTable

__all__ = [
    "table_to_markdown",
    "table_to_csv",
    "experiment_to_markdown",
    "experiments_to_markdown",
]


def table_to_markdown(table: ResultTable) -> str:
    """Render a :class:`ResultTable` as a GitHub-flavoured Markdown table."""
    header = "| " + " | ".join(table.columns) + " |"
    separator = "| " + " | ".join("---" for _ in table.columns) + " |"
    lines = [f"**{table.title}**", "", header, separator]
    for row in table.rows:
        cells = [format_cell(row.get(column)) for column in table.columns]
        lines.append("| " + " | ".join(cells) + " |")
    for note in table.notes:
        lines.append("")
        lines.append(f"*Note: {note}*")
    return "\n".join(lines)


def table_to_csv(table: ResultTable) -> str:
    """Render a :class:`ResultTable` as CSV text (header + one line per row)."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(table.columns)
    for row in table.rows:
        writer.writerow([row.get(column, "") for column in table.columns])
    return buffer.getvalue()


def experiment_to_markdown(result: ExperimentResult) -> str:
    """Render one :class:`ExperimentResult` as a Markdown section."""
    lines = [
        f"### {result.experiment_id.upper()} -- {result.title}",
        "",
        f"*Claim:* {result.claim}",
        "",
    ]
    for table in result.tables:
        lines.append(table_to_markdown(table))
        lines.append("")
    if result.findings:
        lines.append("**Findings**")
        lines.append("")
        for key in sorted(result.findings):
            lines.append(f"- `{key}`: {format_cell(result.findings[key])}")
        lines.append("")
    if result.parameters:
        parameters = ", ".join(
            f"{key}={format_cell(value)}" for key, value in sorted(result.parameters.items())
        )
        lines.append(f"*Parameters:* {parameters}")
        lines.append("")
    return "\n".join(lines)


def experiments_to_markdown(results: Iterable[ExperimentResult]) -> str:
    """Render several experiments as one Markdown document body."""
    return "\n".join(experiment_to_markdown(result) for result in results)
