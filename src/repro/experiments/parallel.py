"""Parallel Monte-Carlo trial execution.

Every experiment is a set of *independent* trials: ``run_one(seed)`` is a pure
function of its derived seed (all simulation randomness flows from it through
:class:`~repro.sim.rng.RandomSource`), so trials can be fanned out across
``multiprocessing`` workers without any change to the results.  The runner
maps the exact same ``derive_seed(base, "trial{i}")`` seed list that the
serial path uses and preserves input order, so serial and parallel execution
are bit-identical per seed -- asserted by the determinism regression tests.

Implementation notes
--------------------
Experiment trial callables are closures (they capture the ring size, delay
model, ...), which the default pickler cannot ship to workers.  On platforms
with the ``fork`` start method the runner therefore publishes the callable in
a module-level slot *before* forking; workers inherit it through the forked
address space and only the (picklable) seeds and results cross the process
boundary.  Where ``fork`` is unavailable (e.g. Windows), the runner degrades
to in-process execution rather than imposing a picklability requirement on
every experiment.

All pool fan-outs funnel through
:func:`repro.experiments.resilience.supervised_map` over a rebuildable
:class:`~repro.experiments.resilience.ForkPoolManager`: without an active
:class:`~repro.experiments.resilience.ExecutionPolicy` that is the historical
chunked ordered gather (bit-identical results) plus interrupt-safe teardown
-- ``KeyboardInterrupt`` terminates and joins the workers instead of leaking
orphaned forks -- and with a policy it adds per-trial timeouts, retries and
pool rebuilding.  The Monte-Carlo entry points additionally consult the
policy's :class:`~repro.experiments.resilience.CheckpointJournal` so resumed
studies skip completed ``(fingerprint, seed)`` trials.
"""

from __future__ import annotations

import argparse
import multiprocessing
import os
from contextlib import contextmanager
from typing import Any, Callable, Iterator, List, Optional, Sequence, TypeVar

from repro.experiments.resilience import (
    ForkPoolManager,
    checkpointed_trials,
    resolve_checkpoint,
    run_trial,
    supervised_map,
)

__all__ = [
    "ParallelTrialRunner",
    "SweepPool",
    "parallel_map",
    "default_worker_count",
    "fork_available",
    "resolve_worker_count",
    "worker_count_argument",
]

T = TypeVar("T")
R = TypeVar("R")

#: Slot through which forked workers inherit the (unpicklable) trial callable.
_WORKER_FN: Optional[Callable[[Any], Any]] = None


def _invoke(item: Any) -> Any:
    """Top-level trampoline executed in workers (must be picklable itself)."""
    return _WORKER_FN(item)


def default_worker_count() -> int:
    """Worker count used for ``workers=None``: one per available CPU."""
    return os.cpu_count() or 1


def fork_available() -> bool:
    """Whether the ``fork`` start method (required for closures) exists."""
    return "fork" in multiprocessing.get_all_start_methods()


def resolve_worker_count(value: int) -> int:
    """Map the CLI convention for ``--workers`` to a concrete worker count.

    ``0`` means one worker per CPU; positive values pass through; negatives
    are rejected.
    """
    if value < 0:
        raise ValueError(f"workers must be >= 0 (0 = one per CPU), got {value}")
    return value if value > 0 else default_worker_count()


def worker_count_argument(text: str) -> int:
    """``argparse`` ``type=`` for ``--workers`` flags (non-negative int)."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"workers must be an integer, got {text!r}")
    if value < 0:
        raise argparse.ArgumentTypeError(
            f"workers must be >= 0 (0 = one per CPU), got {value}"
        )
    return value


def _adaptive_via(
    mapper: Optional[Callable],
    run_one: Callable[[int], Any],
    trials: int,
    base_seed: int,
    label: str,
    keep: Optional[Callable[[Any], bool]],
    adaptive: Any,
    stats_out: Optional[dict] = None,
    checkpoint: Optional[Any] = None,
    checkpoint_key: Optional[str] = None,
) -> List[Any]:
    """The one adaptive-dispatch forwarding point for every pool flavour."""
    from repro.experiments.runner import adaptive_monte_carlo  # late: avoids cycle

    return adaptive_monte_carlo(
        run_one,
        trials=trials,
        adaptive=adaptive,
        base_seed=base_seed,
        label=label,
        keep=keep,
        mapper=mapper,
        stats_out=stats_out,
        checkpoint=checkpoint,
        checkpoint_key=checkpoint_key,
    )


class ParallelTrialRunner:
    """Fans independent trials across ``multiprocessing`` workers.

    Parameters
    ----------
    workers:
        Number of worker processes.  ``1`` (the default) runs everything in
        process -- the exact serial code path, no pool is created.  ``None``
        means one worker per CPU.
    chunk_size:
        Trials handed to a worker per dispatch; defaults to an even split
        into about four chunks per worker, which balances scheduling overhead
        against tail latency from uneven trial durations.

    Notes
    -----
    Results are returned in input order, so ``run.map(f, seeds)`` equals
    ``[f(s) for s in seeds]`` element for element whenever ``f`` is a pure
    function of its argument -- the property the seed-derivation discipline
    guarantees for experiment trials.
    """

    def __init__(self, workers: Optional[int] = 1, chunk_size: Optional[int] = None) -> None:
        if workers is None:
            workers = default_worker_count()
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if chunk_size is not None and chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        self.workers = int(workers)
        self.chunk_size = chunk_size

    # ---------------------------------------------------------------- mapping

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> List[R]:
        """Apply ``fn`` to every item, in input order, possibly in parallel."""
        items = list(items)
        if self.workers == 1 or len(items) <= 1 or not fork_available():
            # Serial fallback honours the same retry/failure contract as the
            # pool (run_trial is fn(item) verbatim without a policy).
            return [run_trial(fn, item) for item in items]
        global _WORKER_FN
        context = multiprocessing.get_context("fork")
        processes = min(self.workers, len(items))
        previous = _WORKER_FN
        _WORKER_FN = fn
        # _WORKER_FN stays published for the whole map so a supervised pool
        # rebuild forks workers that inherit the same callable.
        pools = ForkPoolManager(lambda: context.Pool(processes=processes))
        try:
            return supervised_map(
                fn,
                items,
                task=_invoke,
                pools=pools,
                workers=processes,
                chunk_size=self.chunk_size,
            )
        finally:
            pools.shutdown()
            _WORKER_FN = previous

    @contextmanager
    def persistent_mapper(
        self, fn: Callable[[T], R]
    ) -> Iterator[Optional[Callable[[Callable[[T], R], Sequence[T]], List[R]]]]:
        """One long-lived fork pool serving many ``map`` calls over ``fn``.

        :meth:`map` forks (and tears down) a fresh pool per call, which is
        the right trade for one-shot fan-outs but makes a batched consumer
        -- adaptive stopping dispatches a small batch per convergence check
        -- pay the pool startup once per batch.  This context manager
        publishes ``fn`` once, forks a single pool whose workers inherit it,
        and yields a ``mapper(fn, items)`` usable any number of times; the
        mapper rejects any other callable, because only ``fn`` crossed the
        fork.  Yields ``None`` (caller runs serially) for one worker or
        where ``fork`` is unavailable.  Result order and content are
        identical to per-call :meth:`map`.
        """
        if self.workers == 1 or not fork_available():
            yield None
            return
        global _WORKER_FN
        previous = _WORKER_FN
        _WORKER_FN = fn
        context = multiprocessing.get_context("fork")
        pools = ForkPoolManager(lambda: context.Pool(processes=self.workers))
        pools.get()
        try:

            def mapper(mapped_fn: Callable[[T], R], items: Sequence[T]) -> List[R]:
                if mapped_fn is not fn:
                    raise ValueError(
                        "persistent_mapper serves exactly the callable its "
                        "workers inherited at fork time"
                    )
                # _WORKER_FN is still published here (restored only on block
                # exit), so supervised rebuilds re-fork with fn inherited.
                return supervised_map(
                    fn,
                    list(items),
                    task=_invoke,
                    pools=pools,
                    workers=self.workers,
                    chunk_size=self.chunk_size,
                )

            yield mapper
        finally:
            pools.shutdown()
            _WORKER_FN = previous

    # ------------------------------------------------------------ monte carlo

    def monte_carlo(
        self,
        run_one: Callable[[int], T],
        trials: int,
        base_seed: int = 0,
        label: str = "",
        keep: Optional[Callable[[T], bool]] = None,
        adaptive: Optional[Any] = None,
        stats_out: Optional[dict] = None,
        checkpoint: Optional[Any] = None,
        checkpoint_key: Optional[str] = None,
    ) -> List[T]:
        """Parallel equivalent of :func:`repro.experiments.runner.monte_carlo`.

        Seeds are derived with the identical ``derive_seed(base, "trial{i}")``
        discipline, and the ``keep`` filter is applied in the parent after the
        ordered gather, so the returned list is bit-identical to the serial
        runner's for any worker count.  ``adaptive`` (an
        :class:`~repro.experiments.runner.AdaptiveStopping`) dispatches whole
        batches to one long-lived fork pool (:meth:`persistent_mapper`, not a
        fresh pool per batch) and stops at batch boundaries -- the stopping
        point is worker-count independent.  ``checkpoint`` (an explicit
        :class:`~repro.experiments.resilience.CheckpointJournal`, or the
        ambient policy's) skips already-journaled ``(key, seed)`` trials and
        journals fresh ones in record batches.
        """
        from repro.experiments.runner import trial_seeds  # late: avoids cycle

        if adaptive is not None:
            with self.persistent_mapper(run_one) as mapper:
                return _adaptive_via(
                    mapper,
                    run_one,
                    trials,
                    base_seed,
                    label,
                    keep,
                    adaptive,
                    stats_out,
                    checkpoint,
                    checkpoint_key,
                )
        journal, key = resolve_checkpoint(
            checkpoint, checkpoint_key, run_one, base_seed, label
        )
        outcomes = checkpointed_trials(
            trial_seeds(base_seed, trials, label),
            lambda block: self.map(run_one, block),
            journal,
            key,
            record_batch=max(16, 4 * self.workers),
        )
        if keep is None:
            return outcomes
        return [outcome for outcome in outcomes if keep(outcome)]


def parallel_map(
    fn: Callable[[T], R], items: Sequence[T], workers: Optional[int] = 1
) -> List[R]:
    """One-shot convenience wrapper around :meth:`ParallelTrialRunner.map`."""
    return ParallelTrialRunner(workers=workers).map(fn, items)


class SweepPool:
    """One process pool shared across every parameter point of a sweep.

    :class:`ParallelTrialRunner` forks a fresh pool per ``map`` call, which is
    correct for arbitrary closures (they are inherited through the forked
    address space) but pays the pool startup once per ring size / parameter
    point.  ``SweepPool`` instead keeps a single ``fork`` pool alive for the
    whole sweep and ships each point's tasks to the already-running workers.

    The price of reuse is picklability: because workers outlive any single
    ``map`` call, the callable can no longer be inherited at fork time and
    must cross the process boundary -- use a module-level function, a
    ``functools.partial`` over one, or a picklable callable object such as
    :class:`repro.experiments.workloads.ElectionTrial`.

    Determinism is untouched: :meth:`monte_carlo` derives the exact
    ``derive_seed(base, "trial{i}")`` seed list the serial path uses, and
    ``Pool.map`` preserves input order, so results are bit-identical to the
    serial runner for any worker count.

    The pool is created lazily on the first parallel ``map`` and torn down by
    :meth:`close` (or the context manager).  ``workers=1`` never creates a
    pool and runs everything serially in process.
    """

    def __init__(self, workers: Optional[int] = 1, chunk_size: Optional[int] = None) -> None:
        if workers is None:
            workers = default_worker_count()
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if chunk_size is not None and chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        self.workers = int(workers)
        self.chunk_size = chunk_size
        context = multiprocessing.get_context("fork") if fork_available() else None
        self._pools = ForkPoolManager(
            lambda: context.Pool(processes=self.workers)  # type: ignore[union-attr]
        )
        self._closed = False

    @property
    def _pool(self):
        """The underlying ``multiprocessing`` pool (``None`` until first use)."""
        return self._pools.pool

    # -------------------------------------------------------------- lifecycle

    @staticmethod
    @contextmanager
    def ensure(
        pool: Optional["SweepPool"], workers: Optional[int]
    ) -> Iterator["SweepPool"]:
        """Yield ``pool`` if given, else a freshly owned ``SweepPool(workers)``.

        The one pool-lifecycle idiom of the experiment sweeps: an externally
        supplied pool is left open for its owner (so one pool can serve many
        experiments), while a pool created here is closed on exit.
        """
        if pool is not None:
            yield pool
            return
        owned = SweepPool(workers)
        try:
            yield owned
        finally:
            owned.close()

    def __enter__(self) -> "SweepPool":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def close(self) -> None:
        """Tear down the worker pool (idempotent); the object stays usable
        serially afterwards only for ``workers=1``."""
        self._closed = True
        self._pools.shutdown()

    # ---------------------------------------------------------------- mapping

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> List[R]:
        """Apply ``fn`` to every item, in input order, on the shared pool."""
        items = list(items)
        if self.workers == 1 or len(items) <= 1 or not fork_available():
            return [run_trial(fn, item) for item in items]
        if self._closed:
            raise RuntimeError("SweepPool is closed")
        return supervised_map(
            fn,
            items,
            pools=self._pools,
            workers=self.workers,
            chunk_size=self.chunk_size,
        )

    # ------------------------------------------------------------ monte carlo

    def monte_carlo(
        self,
        run_one: Callable[[int], T],
        trials: int,
        base_seed: int = 0,
        label: str = "",
        keep: Optional[Callable[[T], bool]] = None,
        adaptive: Optional[Any] = None,
        stats_out: Optional[dict] = None,
        checkpoint: Optional[Any] = None,
        checkpoint_key: Optional[str] = None,
    ) -> List[T]:
        """Pool-reusing equivalent of :func:`repro.experiments.runner.monte_carlo`.

        Same seed list, same ordered gather, same post-hoc ``keep`` filter;
        only the pool lifetime differs, so results are bit-identical to the
        serial and :class:`ParallelTrialRunner` paths.  ``adaptive`` stops at
        worker-count-independent batch boundaries, exactly like the serial
        rule (see :class:`~repro.experiments.runner.AdaptiveStopping`); its
        batches ride this pool's long-lived workers.  ``checkpoint`` skips
        and journals ``(key, seed)`` trials exactly like the serial runner.
        """
        from repro.experiments.runner import trial_seeds  # late: avoids cycle

        if adaptive is not None:
            return _adaptive_via(
                self.map,
                run_one,
                trials,
                base_seed,
                label,
                keep,
                adaptive,
                stats_out,
                checkpoint,
                checkpoint_key,
            )
        journal, key = resolve_checkpoint(
            checkpoint, checkpoint_key, run_one, base_seed, label
        )
        outcomes = checkpointed_trials(
            trial_seeds(base_seed, trials, label),
            lambda block: self.map(run_one, block),
            journal,
            key,
            record_batch=max(16, 4 * self.workers),
        )
        if keep is None:
            return outcomes
        return [outcome for outcome in outcomes if keep(outcome)]
