"""Shared workload definitions for the experiments.

Keeping the workload catalogue in one module guarantees that E1/E2/E6/E7 all
mean the same thing by "the default ABE ring" and that the delay families of
the robustness experiment really have identical expected delay.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Union

from repro.core.analysis import recommended_a0
from repro.core.runner import ElectionResult, run_election
from repro.experiments.parallel import SweepPool
from repro.experiments.runner import AdaptiveStopping, monte_carlo
from repro.network.delays import DelayDistribution, ExponentialDelay
from repro.scenarios.registry import build_delay
from repro.scenarios.spec import ScenarioSpec, SpecNode

__all__ = [
    "DEFAULT_RING_SIZES",
    "DEFAULT_TRIALS",
    "ElectionTrial",
    "default_delay",
    "delay_family_specs",
    "delay_families_with_mean",
    "election_spec",
    "election_trials",
    "election_sweep",
]

#: Ring sizes used by the scaling experiments (E1, E2, E6).
DEFAULT_RING_SIZES: Sequence[int] = (8, 16, 32, 64, 128)

#: Default number of Monte-Carlo trials per configuration.
DEFAULT_TRIALS: int = 30


def default_delay(mean: float = 1.0) -> DelayDistribution:
    """The canonical ABE channel: exponential delays with the given mean."""
    return ExponentialDelay(mean=mean)


def delay_family_specs(mean: float = 1.0) -> Dict[str, SpecNode]:
    """The delay families of experiment E7 as declarative spec nodes.

    Every family is ABE admissible with ``delta = mean``; they differ wildly
    in shape (constant, bounded, light tail, heavy tail, queueing, routing,
    retransmission), which is exactly the variation the ABE model abstracts
    away.  :func:`delay_families_with_mean` compiles these nodes, so the
    declarative and object catalogues cannot drift apart.
    """
    if mean <= 0:
        raise ValueError("mean must be positive")
    return {
        "constant": SpecNode("constant", {"value": mean}),
        "uniform[0.5m,1.5m]": SpecNode("uniform", {"low": 0.5 * mean, "high": 1.5 * mean}),
        "exponential": SpecNode("exponential", {"mean": mean}),
        "retransmission(p=0.5)": SpecNode(
            "retransmission",
            {"success_probability": 0.5, "transmission_time": mean / 2.0},
        ),
        "pareto(alpha=3)": SpecNode("pareto", {"alpha": 3.0, "scale": 2.0 * mean / 3.0}),
        "lognormal(sigma=1)": SpecNode("lognormal", {"mean": mean, "sigma": 1.0}),
        "mm1(rho=0.5)": SpecNode(
            "mm1", {"arrival_rate": 1.0 / mean, "service_rate": 2.0 / mean}
        ),
        "routing(2 hops+detours)": SpecNode(
            "routing",
            {"base_hops": 2, "detour_probability": 0.2, "per_hop_mean": mean / 2.25},
        ),
    }


def delay_families_with_mean(mean: float = 1.0) -> Dict[str, DelayDistribution]:
    """The E7 delay families as built distribution objects (same catalogue)."""
    return {name: build_delay(node) for name, node in delay_family_specs(mean).items()}


#: ``run_election`` keywords that are first-class :class:`ScenarioSpec`
#: fields; every other override rides the spec's ``params`` pass-through.
_ELECTION_SPEC_FIELDS = frozenset(
    {
        "fifo",
        "purge_at_active",
        "tick_period",
        "clock_bounds",
        "validate_model",
        "expected_delay_bound",
        "batch_sampling",
        "batch_ticks",
        "core",
        "max_events",
        "max_time",
        "churn",
    }
)


def election_spec(
    n: int,
    trials: int,
    base_seed: int,
    *,
    label: Optional[str] = None,
    a0: Optional[float] = None,
    delay: Optional[Union[SpecNode, Dict[str, Any], str]] = None,
    schedule: Optional[Union[SpecNode, Dict[str, Any], str]] = None,
    drift: Optional[Union[SpecNode, Dict[str, Any], str]] = None,
    stopping: Optional[AdaptiveStopping] = None,
    **overrides: Any,
) -> ScenarioSpec:
    """One declarative ABE-election point, mirroring :func:`election_trials`.

    Labels and derived trial seeds match :func:`election_trials` exactly
    (``label`` defaults to ``f"n{n}"``), so a spec-driven run reproduces the
    kwarg-driven run bit for bit.  ``overrides`` accepts any
    :func:`~repro.core.runner.run_election` keyword: the declarative ones
    become spec fields, the rest (e.g. ``enable_trace`` or runtime objects)
    ride the ``params`` pass-through.
    """
    fields = {key: overrides.pop(key) for key in list(overrides) if key in _ELECTION_SPEC_FIELDS}

    def declarative(value: Any, runtime_key: str) -> Any:
        # Spec nodes (and their dict/string shorthands) become spec fields;
        # already-built runtime objects keep the historical pass-through to
        # ``run_election`` via ``params`` (they are not JSON-serializable,
        # but remain valid ``election_overrides`` inputs).
        if value is None or isinstance(value, (SpecNode, str, dict)):
            return value
        overrides[runtime_key] = value
        return None

    delay = declarative(delay, "delay")
    schedule = declarative(schedule, "schedule")
    drift = declarative(drift, "clock_drift_factory")
    return ScenarioSpec(
        algorithm="abe-election",
        topology=SpecNode("uniring", {"n": n}),
        delay=delay,
        seed=base_seed,
        trials=trials,
        label=label if label is not None else f"n{n}",
        a0=a0,
        schedule=schedule,
        drift=drift,
        stopping=stopping,
        params=overrides,
        **fields,
    )


class ElectionTrial:
    """Picklable ``run_one`` callable for election trials.

    A plain closure over ``run_election`` cannot cross the boundary into a
    long-lived :class:`~repro.experiments.parallel.SweepPool` worker (only
    fork-inherited closures work, and those require a fresh pool per point).
    This class carries the same captured configuration as explicit, picklable
    state, so one pool can serve every parameter point of a sweep.  Calling it
    is exactly ``run_election(n, a0=..., delay=..., seed=seed, **kwargs)``.
    """

    __slots__ = ("n", "a0", "delay", "election_kwargs")

    def __init__(
        self, n: int, a0: float, delay: DelayDistribution, election_kwargs: dict
    ) -> None:
        self.n = n
        self.a0 = a0
        self.delay = delay
        self.election_kwargs = election_kwargs

    def __call__(self, seed: int) -> ElectionResult:
        return run_election(
            self.n, a0=self.a0, delay=self.delay, seed=seed, **self.election_kwargs
        )


def election_trials(
    n: int,
    trials: int,
    base_seed: int,
    *,
    a0: float = None,
    delay: DelayDistribution = None,
    label: str = "",
    workers: int = 1,
    pool: SweepPool = None,
    adaptive: AdaptiveStopping = None,
    **election_kwargs,
) -> List[ElectionResult]:
    """Run ``trials`` independent elections on a ring of size ``n``.

    ``a0`` defaults to :func:`repro.core.analysis.recommended_a0`; ``delay``
    defaults to the canonical exponential ABE channel.  ``workers`` fans the
    trials across processes (seed-for-seed identical results, see
    :mod:`repro.experiments.parallel`); passing a ``pool`` instead reuses one
    :class:`~repro.experiments.parallel.SweepPool` across the whole sweep
    (same seeds, same order -- still bit-identical).  ``adaptive`` switches
    to sequential stopping (``trials`` becomes the trial budget, i.e. the
    default ``max_trials``); executed trials are worker-count independent.
    """
    chosen_a0 = a0 if a0 is not None else recommended_a0(n)
    chosen_delay = delay if delay is not None else default_delay()
    run_one = ElectionTrial(n, chosen_a0, chosen_delay, election_kwargs)
    label = label or f"n{n}"
    if adaptive is not None:
        adaptive = adaptive.resolved("messages_total")
    if pool is not None:
        return pool.monte_carlo(
            run_one, trials=trials, base_seed=base_seed, label=label, adaptive=adaptive
        )
    return monte_carlo(
        run_one,
        trials=trials,
        base_seed=base_seed,
        label=label,
        workers=workers,
        adaptive=adaptive,
    )


def election_sweep(
    sizes: Sequence[int],
    trials: int,
    base_seed: int,
    *,
    workers: int = 1,
    pool: SweepPool = None,
    adaptive: AdaptiveStopping = None,
    **election_kwargs,
) -> Dict[int, List[ElectionResult]]:
    """Run the election at every ring size in ``sizes``; results keyed by size.

    With ``workers > 1`` and no explicit ``pool``, one shared
    :class:`~repro.experiments.parallel.SweepPool` is created for the whole
    sweep instead of forking a fresh pool per size.
    """
    with SweepPool.ensure(pool, workers) as shared:
        return {
            n: election_trials(
                n,
                trials,
                base_seed,
                label=f"n{n}",
                pool=shared,
                adaptive=adaptive,
                **election_kwargs,
            )
            for n in sizes
        }
