"""E6 -- comparison with classical ring-election baselines.

Section 1 positions the ABE election against two reference points:

* the Omega(n log n) lower bound on message complexity for leader election in
  asynchronous rings, and
* "the most optimal leader election algorithms known for anonymous,
  synchronous rings" (Itai-Rodeh), to which the ABE algorithm's efficiency is
  said to be comparable.

The experiment runs the ABE election and four baselines (Itai-Rodeh,
Chang-Roberts, Dolev-Klawe-Rodeh, Franklin) on rings of increasing size with
identical ABE (exponential, mean 1) channel delays, reports the mean message
counts, and fits growth orders: the ABE election should fit ``n`` best while
the identifier-based baselines grow like ``n log n``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.analysis import async_ring_message_lower_bound
from repro.experiments.parallel import SweepPool
from repro.experiments.results import ExperimentResult, ResultTable
from repro.experiments.runner import AdaptiveStopping
from repro.experiments.workloads import election_spec
from repro.scenarios.runtime import run_study
from repro.scenarios.spec import ScenarioSpec, SpecNode, StudySpec
from repro.stats.complexity_fit import best_growth_order
from repro.stats.confidence import confidence_interval

EXPERIMENT_ID = "e6"
TITLE = "Message complexity: ABE election vs classical baselines"
CLAIM = (
    "The ABE election's average message complexity is linear, comparable to "
    "the best anonymous-ring algorithms and below the n log n growth of the "
    "classical identifier-based elections."
)

__all__ = ["EXPERIMENT_ID", "TITLE", "CLAIM", "build_study", "run"]

DEFAULT_SIZES: Sequence[int] = (8, 16, 32, 64)

#: Comparison order: the paper's algorithm first, then the baselines.
ALGORITHM_ORDER: Tuple[str, ...] = (
    "abe-election",
    "itai-rodeh",
    "chang-roberts",
    "dolev-klawe-rodeh",
    "franklin",
)


def build_study(
    sizes: Sequence[int] = DEFAULT_SIZES,
    trials: int = 15,
    base_seed: int = 66,
) -> StudySpec:
    """The E6 battery: every algorithm at every ring size, in report order."""
    points: List[ScenarioSpec] = []
    for name in ALGORITHM_ORDER:
        for n in sizes:
            if name == "abe-election":
                points.append(election_spec(n, trials, base_seed, label=f"abe-n{n}"))
            else:
                points.append(
                    ScenarioSpec(
                        algorithm=name,
                        topology=SpecNode("uniring", {"n": n}),
                        delay=SpecNode("exponential", {"mean": 1.0}),
                        seed=base_seed,
                        trials=trials,
                        label=f"{name}-n{n}",
                    )
                )
    return StudySpec(
        name=EXPERIMENT_ID, title=TITLE, metric="messages_total", points=tuple(points)
    )


def run(
    sizes: Sequence[int] = DEFAULT_SIZES,
    trials: int = 15,
    base_seed: int = 66,
    workers: int = 1,
    pool: SweepPool = None,
    adaptive: Optional[AdaptiveStopping] = None,
) -> ExperimentResult:
    """Run the baseline comparison and return the E6 result."""
    if adaptive is not None:
        adaptive = adaptive.resolved("messages_total")
    sizes = list(sizes)
    table = ResultTable(
        title="E6: mean messages to elect a leader, by algorithm and ring size",
        columns=["algorithm", "n", "messages_mean", "messages_ci95", "messages_per_node"],
    )
    study = build_study(sizes=sizes, trials=trials, base_seed=base_seed)
    per_point = run_study(study, pool=pool, workers=workers, adaptive=adaptive)

    per_algorithm_means: Dict[str, List[float]] = {}
    for index, name in enumerate(ALGORITHM_ORDER):
        means = []
        for offset, n in enumerate(sizes):
            results = per_point[index * len(sizes) + offset]
            message_counts = [float(r.messages_total) for r in results if r.elected]
            interval = confidence_interval(message_counts)
            means.append(interval.estimate)
            table.add_row(
                algorithm=name,
                n=n,
                messages_mean=interval.estimate,
                messages_ci95=interval.half_width,
                messages_per_node=interval.estimate / n,
            )
        per_algorithm_means[name] = means

    reference = ResultTable(
        title="E6 (reference): growth-order fits and the n log n lower-bound curve",
        columns=["algorithm", "best_fit", "relative_error", "nlogn_at_max_n"],
    )
    fits_by_algorithm = {}
    for name, means in per_algorithm_means.items():
        fits = best_growth_order(sizes, means)
        best = next(iter(fits))
        fits_by_algorithm[name] = best
        reference.add_row(
            algorithm=name,
            best_fit=best,
            relative_error=fits[best].relative_error,
            nlogn_at_max_n=async_ring_message_lower_bound(max(sizes)),
        )

    abe_at_max = per_algorithm_means["abe-election"][-1]
    baseline_at_max = {
        name: means[-1] for name, means in per_algorithm_means.items() if name != "abe-election"
    }
    findings = {
        "abe_best_fit": fits_by_algorithm["abe-election"],
        "abe_fits_linear": fits_by_algorithm["abe-election"] == "n",
        "abe_cheapest_at_max_n": abe_at_max <= min(baseline_at_max.values()),
        "baselines_superlinear": all(
            fits_by_algorithm[name] in ("n log n", "n^2")
            for name in baseline_at_max
        ),
    }
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        claim=CLAIM,
        tables=[table, reference],
        findings=findings,
        parameters={"sizes": tuple(sizes), "trials": trials, "base_seed": base_seed},
    )
