"""Monte-Carlo trial orchestration.

Experiments repeat a stochastic simulation many times with independent,
reproducibly derived seeds and aggregate the results.  The helpers here keep
the seed discipline in one place: trial ``i`` of an experiment with base seed
``s`` always uses ``derive_seed(s, f"trial{i}")``, so adding trials never
perturbs existing ones and two experiments with different base seeds never
share randomness.

Adaptive stopping
-----------------
Fixed trial counts pay for precision nobody asked for: an estimator that has
already converged keeps burning trials, and one that has not silently under-
delivers.  :class:`AdaptiveStopping` instead runs trials in fixed,
worker-independent batches and stops as soon as the Student-t confidence
interval on the target metric is tight enough (relative half-width below
``ci_tolerance``), bounded by ``min_trials``/``max_trials``.  Because the
batch boundaries and the derived seed list depend only on the configuration
-- never on the worker count or on timing -- the executed trial set, the
stopping point and the returned results are bit-identical for serial,
:class:`~repro.experiments.parallel.ParallelTrialRunner` and
:class:`~repro.experiments.parallel.SweepPool` execution.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, TypeVar

from repro.experiments.parallel import ParallelTrialRunner, SweepPool
from repro.experiments.resilience import (
    CheckpointJournal,
    ExecutionPolicy,
    checkpointed_trials,
    resolve_checkpoint,
    run_trial,
)
from repro.sim.rng import derive_seed

__all__ = [
    "AdaptiveStopping",
    "adaptive_monte_carlo",
    "adaptive_parameters",
    "add_adaptive_stopping_arguments",
    "add_execution_arguments",
    "adaptive_stopping_from_args",
    "execution_from_args",
    "execution_policy_from_args",
    "trial_seeds",
    "monte_carlo",
    "mean_of_attribute",
]

T = TypeVar("T")

#: Trials per post-``min_trials`` batch when :class:`AdaptiveStopping` does
#: not pin one.  Small enough to stop promptly, large enough to keep the
#: convergence checks (and the per-batch dispatch overhead) rare.
DEFAULT_ADAPTIVE_BATCH = 8


@dataclass(frozen=True)
class AdaptiveStopping:
    """Sequential-stopping rule for Monte-Carlo trials.

    Attributes
    ----------
    ci_tolerance:
        Stop once the relative half-width of the ``confidence``-level
        Student-t interval on the target metric falls to this value or below
        ("the mean is known to within 5%" is ``0.05``).
    min_trials:
        Trials always executed before the first convergence check (>= 2; a
        confidence interval needs at least two samples).
    max_trials:
        Hard cap on executed trials; ``None`` means "the ``trials`` argument
        of the surrounding call" -- the fixed count becomes the worst case.
    metric:
        Attribute of a trial result fed to the interval (``None`` values are
        skipped, e.g. ``election_time`` of a non-terminating run).  ``None``
        lets the calling experiment substitute its target metric; anything
        still unresolved falls back to ``"messages_total"``.
    confidence:
        Confidence level of the interval (default 95%).
    batch_size:
        Trials per batch after ``min_trials``.  Batches are the atom of both
        dispatch and decision: the stopping rule only evaluates at batch
        boundaries, which is what makes the executed trial count independent
        of the worker count.
    """

    ci_tolerance: float = 0.05
    min_trials: int = 8
    max_trials: Optional[int] = None
    metric: Optional[str] = None
    confidence: float = 0.95
    batch_size: int = DEFAULT_ADAPTIVE_BATCH

    def __post_init__(self) -> None:
        if self.ci_tolerance <= 0:
            raise ValueError(f"ci_tolerance must be positive, got {self.ci_tolerance}")
        if self.min_trials < 2:
            raise ValueError(f"min_trials must be >= 2, got {self.min_trials}")
        if self.max_trials is not None and self.max_trials < self.min_trials:
            raise ValueError(
                f"max_trials ({self.max_trials}) must be >= min_trials "
                f"({self.min_trials})"
            )
        if not (0.0 < self.confidence < 1.0):
            raise ValueError(f"confidence must be in (0, 1), got {self.confidence}")
        if self.batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {self.batch_size}")

    def resolved(self, default_metric: str) -> "AdaptiveStopping":
        """This rule with an unset ``metric`` bound to the experiment's target."""
        if self.metric is not None:
            return self
        return replace(self, metric=default_metric)

    def with_budget(self, budget: int) -> Optional["AdaptiveStopping"]:
        """This rule capped at a fixed trial budget; ``None`` below 2 trials.

        The budgeted execution policy of the design-space-exploration rungs
        (:mod:`repro.dse.strategies`): a configuration promoted to a rung of
        ``budget`` trials runs at most ``budget`` of them, stopping earlier
        only when its confidence interval converges.  ``min_trials`` is
        clamped into the budget (never below the 2 samples an interval
        needs); a budget of 1 cannot support a convergence check at all, so
        the rule switches itself off and the single trial just runs.
        """
        if budget < 2:
            return None
        return replace(
            self,
            max_trials=budget,
            min_trials=max(2, min(self.min_trials, budget)),
        )


def adaptive_monte_carlo(
    run_one: Callable[[int], T],
    trials: int,
    adaptive: AdaptiveStopping,
    base_seed: int = 0,
    label: str = "",
    keep: Optional[Callable[[T], bool]] = None,
    mapper: Optional[Callable[[Callable[[int], T], Sequence[int]], List[T]]] = None,
    stats_out: Optional[Dict[str, Any]] = None,
    checkpoint: Optional[CheckpointJournal] = None,
    checkpoint_key: Optional[str] = None,
) -> List[T]:
    """Run trials in batches until the CI on the target metric is tight enough.

    ``mapper`` executes one batch of seeds (``None`` = serial in process;
    pass :meth:`SweepPool.map` or :meth:`ParallelTrialRunner.map` to fan the
    batch out -- results and the stopping point are bit-identical either
    way).  ``stats_out``, when given, receives ``trials_executed`` and
    ``stopped_early`` for reporting.  ``checkpoint`` (explicit or the ambient
    policy's journal) is consulted per batch: completed seeds come from the
    journal, fresh ones are journaled as each batch finishes -- and because
    the stopping decision depends only on the (identical) per-seed results,
    a resumed adaptive run converges at the same trial with the same output.
    """
    from repro.stats.confidence import relative_half_width  # scipy: import late

    adaptive = adaptive.resolved("messages_total")
    max_trials = adaptive.max_trials if adaptive.max_trials is not None else trials
    if max_trials < 1:
        raise ValueError("max_trials must be >= 1")
    min_trials = min(adaptive.min_trials, max_trials)
    metric = adaptive.metric
    seeds = trial_seeds(base_seed, max_trials, label)
    journal, journal_key = resolve_checkpoint(
        checkpoint, checkpoint_key, run_one, base_seed, label
    )
    execute = (
        (lambda block: mapper(run_one, block))
        if mapper is not None
        else (lambda block: [run_trial(run_one, s) for s in block])
    )
    kept: List[T] = []
    values: List[float] = []
    index = 0
    converged = False
    while index < max_trials and not converged:
        upper = min_trials if index < min_trials else min(index + adaptive.batch_size, max_trials)
        batch = seeds[index:upper]
        outcomes = checkpointed_trials(batch, execute, journal, journal_key)
        index = upper
        for outcome in outcomes:
            if keep is not None and not keep(outcome):
                continue
            kept.append(outcome)
            value = getattr(outcome, metric)
            if value is not None:
                values.append(float(value))
        if len(values) >= 2:
            converged = relative_half_width(values, adaptive.confidence) <= adaptive.ci_tolerance
    if stats_out is not None:
        stats_out["trials_executed"] = index
        stats_out["stopped_early"] = converged and index < max_trials
    return kept


def trial_seeds(base_seed: int, trials: int, label: str = "") -> List[int]:
    """Derive ``trials`` independent seeds from ``base_seed``.

    ``label`` lets one experiment derive several independent seed families
    (e.g. one per parameter value) from the same base seed.
    """
    if trials < 1:
        raise ValueError("trials must be >= 1")
    prefix = f"{label}/trial" if label else "trial"
    return [derive_seed(base_seed, f"{prefix}{index}") for index in range(trials)]


def adaptive_parameters(
    parameters: Dict[str, Any],
    adaptive: Optional[AdaptiveStopping],
    per_point: Sequence[Sequence[Any]],
) -> Dict[str, Any]:
    """Augment an experiment's ``parameters`` dict with the adaptive facts.

    The one place the reporting convention lives: experiments record the
    tolerance and the per-point executed trial counts only when a rule was
    actually in force, so fixed-count runs keep their historical parameter
    fingerprints byte-identical.
    """
    if adaptive is not None:
        parameters["ci_tolerance"] = adaptive.ci_tolerance
        parameters["trials_executed"] = tuple(len(results) for results in per_point)
    return parameters


def add_adaptive_stopping_arguments(parser: Any) -> None:
    """Install the shared ``--ci-tol``/``--min-trials``/``--max-trials`` flags.

    Used by both ``abe-repro experiment`` and
    ``scripts/run_all_experiments.py`` so the two entry points cannot drift.
    """
    parser.add_argument(
        "--ci-tol",
        type=float,
        default=None,
        help=(
            "adaptive stopping: stop each configuration's trials once the "
            "95%% CI half-width on the target metric falls below this "
            "fraction of the mean (e.g. 0.1 = known to within 10%%); the "
            "trial count is identical for any --workers value"
        ),
    )
    parser.add_argument(
        "--min-trials",
        type=int,
        default=None,
        help="adaptive stopping: trials before the first convergence check (default 8)",
    )
    parser.add_argument(
        "--max-trials",
        type=int,
        default=None,
        help=(
            "adaptive stopping: hard trial cap (default: the experiment's "
            "fixed trial count)"
        ),
    )


def add_execution_arguments(
    parser: Any, workers_default: Optional[int] = None, checkpoint: bool = True
) -> None:
    """Install the shared execution flags: ``--workers``, the adaptive trio,
    the resilience quartet (``--trial-timeout``/``--retries``/
    ``--checkpoint``/``--resume``) and ``--allow-stale-cache``.

    The one wiring point for every trial-running entry point (``abe-repro
    experiment``, ``abe-repro scenario``, ``abe-repro serve`` and
    ``scripts/run_all_experiments.py``), so their execution flags cannot
    drift apart.  ``checkpoint=False`` omits ``--checkpoint``/``--resume``
    for entry points with their own persistent store (``serve``).
    """
    from repro.experiments.parallel import worker_count_argument  # late: avoids cycle

    parser.add_argument(
        "--workers",
        type=worker_count_argument,
        default=workers_default,
        help=(
            "worker processes for Monte-Carlo trials (default 1 = serial; "
            "0 = one per CPU; results are identical for any value)"
        ),
    )
    add_adaptive_stopping_arguments(parser)
    parser.add_argument(
        "--trial-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help=(
            "per-trial wall-clock budget; a trial whose worker hangs or dies "
            "is re-run deterministically instead of stalling the study "
            "(implies --retries 2 unless --retries is given)"
        ),
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=None,
        metavar="N",
        help=(
            "re-runs granted per failed trial before it is recorded as a "
            "structured failure (retries are bit-identical: trials are pure "
            "functions of their seeds)"
        ),
    )
    if checkpoint:
        parser.add_argument(
            "--checkpoint",
            type=str,
            default=None,
            metavar="PATH",
            help=(
                "journal completed trials to this file (append-only JSONL, or "
                "a persistent sqlite store for *.sqlite/*.db paths) so a "
                "killed study can be resumed with --resume"
            ),
        )
        parser.add_argument(
            "--resume",
            action="store_true",
            help=(
                "resume from the --checkpoint journal: completed (fingerprint, "
                "seed) trials are skipped and the aggregate output is "
                "bit-identical to an uninterrupted run"
            ),
        )
    parser.add_argument(
        "--allow-stale-cache",
        action="store_true",
        help=(
            "also reuse cached results recorded under a different code "
            "version (by default they are ignored with a note, because "
            "results from different code must never be mixed into one "
            "aggregate)"
        ),
    )


def execution_from_args(args: Any) -> tuple:
    """The parsed execution flags:
    ``(workers or None, adaptive rule or None, execution policy or None)``.

    ``workers`` comes back resolved (``0`` -> one per CPU) or ``None`` when
    the flag was not given, so callers can distinguish "default" from an
    explicit choice.  The policy (see :func:`execution_policy_from_args`) is
    meant for :func:`repro.experiments.resilience.active_policy`.
    """
    from repro.experiments.parallel import resolve_worker_count  # late: avoids cycle

    workers = None
    if getattr(args, "workers", None) is not None:
        workers = resolve_worker_count(args.workers)
    return workers, adaptive_stopping_from_args(args), execution_policy_from_args(args)


def execution_policy_from_args(args: Any) -> Optional[ExecutionPolicy]:
    """Build the :class:`~repro.experiments.resilience.ExecutionPolicy` from
    parsed flags; ``None`` when no resilience flag was given.

    ``--trial-timeout`` without an explicit ``--retries`` defaults to two
    retries (a lost worker's trial should be re-run, not just recorded as
    lost); ``--resume`` requires ``--checkpoint`` to name the journal.
    Without ``--resume`` an existing checkpoint file is replaced by a fresh
    journal.
    """
    timeout = getattr(args, "trial_timeout", None)
    retries = getattr(args, "retries", None)
    checkpoint_path = getattr(args, "checkpoint", None)
    resume = bool(getattr(args, "resume", False))
    if resume and checkpoint_path is None:
        raise SystemExit("--resume requires --checkpoint (the journal to resume from)")
    if timeout is None and retries is None and checkpoint_path is None:
        return None
    if retries is None:
        retries = 2 if timeout is not None else 0
    journal = (
        CheckpointJournal(
            checkpoint_path,
            resume=resume,
            allow_stale=bool(getattr(args, "allow_stale_cache", False)),
        )
        if checkpoint_path is not None
        else None
    )
    try:
        return ExecutionPolicy(
            trial_timeout=timeout, retries=retries, checkpoint=journal
        )
    except ValueError as error:
        raise SystemExit(str(error)) from None


def adaptive_stopping_from_args(args: Any) -> Optional[AdaptiveStopping]:
    """Build the rule from parsed flags; ``None`` when adaptive mode is off.

    ``--min-trials``/``--max-trials`` only make sense together with
    ``--ci-tol``; rejecting the combination loudly beats silently running
    the full fixed trial count.
    """
    if args.ci_tol is None:
        if args.min_trials is not None or args.max_trials is not None:
            raise SystemExit(
                "--min-trials/--max-trials configure adaptive stopping and "
                "require --ci-tol (the convergence tolerance) to be set"
            )
        return None
    min_trials = args.min_trials
    if min_trials is None:
        # A small --max-trials is a legitimate cap: clamp the default floor
        # to it instead of tripping the min<=max validation.  Never below 2,
        # though -- a confidence interval needs two samples, and the min<=max
        # check then rejects --max-trials 1 with a message naming that flag.
        min_trials = 8 if args.max_trials is None else max(2, min(8, args.max_trials))
    try:
        return AdaptiveStopping(
            ci_tolerance=args.ci_tol,
            min_trials=min_trials,
            max_trials=args.max_trials,
        )
    except ValueError as error:
        raise SystemExit(str(error)) from None


def monte_carlo(
    run_one: Callable[[int], T],
    trials: int,
    base_seed: int = 0,
    label: str = "",
    keep: Optional[Callable[[T], bool]] = None,
    workers: Optional[int] = 1,
    pool: Optional[SweepPool] = None,
    adaptive: Optional[AdaptiveStopping] = None,
    stats_out: Optional[Dict[str, Any]] = None,
    checkpoint: Optional[CheckpointJournal] = None,
    checkpoint_key: Optional[str] = None,
) -> List[T]:
    """Run ``run_one(seed)`` for ``trials`` derived seeds and collect results.

    Parameters
    ----------
    run_one:
        Callable executing one trial for a given seed.
    keep:
        Optional filter; results for which it returns ``False`` are dropped
        (used e.g. to exclude non-terminating ablation runs from means while
        still counting them separately).
    workers:
        Worker processes to fan trials across (``None`` = one per CPU).  The
        default of ``1`` runs serially in process.  Because each trial is a
        pure function of its derived seed, the collected results are
        bit-identical for every worker count.
    pool:
        Optional shared :class:`~repro.experiments.parallel.SweepPool`;
        overrides ``workers`` and reuses the pool's long-lived workers
        (``run_one`` must then be picklable).  Results stay bit-identical.
    adaptive:
        Optional :class:`AdaptiveStopping`; trials then run in fixed batches
        and stop once the target metric's confidence interval is tight
        enough.  ``trials`` becomes the default ``max_trials``.  Executed
        trials and results stay bit-identical for every worker count.
    stats_out:
        Optional dict receiving ``trials_executed``/``stopped_early`` when
        ``adaptive`` is used.
    checkpoint / checkpoint_key:
        Crash-safe resume: an explicit
        :class:`~repro.experiments.resilience.CheckpointJournal` (or, when
        ``None``, the ambient execution policy's journal) is consulted for
        already-completed ``(checkpoint_key, seed)`` trials, and fresh
        results are journaled as they complete.  The key defaults to a
        fingerprint of the pickled ``run_one`` plus the seed family, so raw
        callables checkpoint too; declarative runs pass their spec
        fingerprint.  Results are bit-identical with or without a journal.
    """
    if adaptive is not None:
        if pool is not None:
            return pool.monte_carlo(
                run_one,
                trials=trials,
                base_seed=base_seed,
                label=label,
                keep=keep,
                adaptive=adaptive,
                stats_out=stats_out,
                checkpoint=checkpoint,
                checkpoint_key=checkpoint_key,
            )
        if workers is not None and workers == 1:
            return adaptive_monte_carlo(
                run_one,
                trials=trials,
                adaptive=adaptive,
                base_seed=base_seed,
                label=label,
                keep=keep,
                stats_out=stats_out,
                checkpoint=checkpoint,
                checkpoint_key=checkpoint_key,
            )
        # workers > 1: one persistent fork pool for all convergence batches
        # (ParallelTrialRunner.monte_carlo uses persistent_mapper), not a
        # fresh pool per batch.
        return ParallelTrialRunner(workers=workers).monte_carlo(
            run_one,
            trials=trials,
            base_seed=base_seed,
            label=label,
            keep=keep,
            adaptive=adaptive,
            stats_out=stats_out,
            checkpoint=checkpoint,
            checkpoint_key=checkpoint_key,
        )
    if pool is not None:
        return pool.monte_carlo(
            run_one,
            trials=trials,
            base_seed=base_seed,
            label=label,
            keep=keep,
            checkpoint=checkpoint,
            checkpoint_key=checkpoint_key,
        )
    if workers is not None and workers == 1:
        journal, key = resolve_checkpoint(
            checkpoint, checkpoint_key, run_one, base_seed, label
        )
        outcomes = checkpointed_trials(
            trial_seeds(base_seed, trials, label),
            lambda block: [run_trial(run_one, seed) for seed in block],
            journal,
            key,
            record_batch=1,  # serial: journal after every trial
        )
        if keep is None:
            return outcomes
        return [outcome for outcome in outcomes if keep(outcome)]
    runner = ParallelTrialRunner(workers=workers)
    return runner.monte_carlo(
        run_one,
        trials=trials,
        base_seed=base_seed,
        label=label,
        keep=keep,
        checkpoint=checkpoint,
        checkpoint_key=checkpoint_key,
    )


def mean_of_attribute(results: Sequence[Any], attribute: str) -> float:
    """Mean of ``getattr(result, attribute)`` over non-``None`` values."""
    values = [getattr(result, attribute) for result in results]
    values = [value for value in values if value is not None]
    if not values:
        raise ValueError(f"no values for attribute {attribute!r}")
    return sum(values) / len(values)
