"""Monte-Carlo trial orchestration.

Experiments repeat a stochastic simulation many times with independent,
reproducibly derived seeds and aggregate the results.  The helpers here keep
the seed discipline in one place: trial ``i`` of an experiment with base seed
``s`` always uses ``derive_seed(s, f"trial{i}")``, so adding trials never
perturbs existing ones and two experiments with different base seeds never
share randomness.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, List, Optional, Sequence, TypeVar

from repro.experiments.parallel import ParallelTrialRunner, SweepPool
from repro.sim.rng import derive_seed

__all__ = ["trial_seeds", "monte_carlo", "mean_of_attribute"]

T = TypeVar("T")


def trial_seeds(base_seed: int, trials: int, label: str = "") -> List[int]:
    """Derive ``trials`` independent seeds from ``base_seed``.

    ``label`` lets one experiment derive several independent seed families
    (e.g. one per parameter value) from the same base seed.
    """
    if trials < 1:
        raise ValueError("trials must be >= 1")
    prefix = f"{label}/trial" if label else "trial"
    return [derive_seed(base_seed, f"{prefix}{index}") for index in range(trials)]


def monte_carlo(
    run_one: Callable[[int], T],
    trials: int,
    base_seed: int = 0,
    label: str = "",
    keep: Optional[Callable[[T], bool]] = None,
    workers: Optional[int] = 1,
    pool: Optional[SweepPool] = None,
) -> List[T]:
    """Run ``run_one(seed)`` for ``trials`` derived seeds and collect results.

    Parameters
    ----------
    run_one:
        Callable executing one trial for a given seed.
    keep:
        Optional filter; results for which it returns ``False`` are dropped
        (used e.g. to exclude non-terminating ablation runs from means while
        still counting them separately).
    workers:
        Worker processes to fan trials across (``None`` = one per CPU).  The
        default of ``1`` runs serially in process.  Because each trial is a
        pure function of its derived seed, the collected results are
        bit-identical for every worker count.
    pool:
        Optional shared :class:`~repro.experiments.parallel.SweepPool`;
        overrides ``workers`` and reuses the pool's long-lived workers
        (``run_one`` must then be picklable).  Results stay bit-identical.
    """
    if pool is not None:
        return pool.monte_carlo(
            run_one, trials=trials, base_seed=base_seed, label=label, keep=keep
        )
    if workers is not None and workers == 1:
        results: List[T] = []
        for seed in trial_seeds(base_seed, trials, label):
            outcome = run_one(seed)
            if keep is None or keep(outcome):
                results.append(outcome)
        return results
    runner = ParallelTrialRunner(workers=workers)
    return runner.monte_carlo(
        run_one, trials=trials, base_seed=base_seed, label=label, keep=keep
    )


def mean_of_attribute(results: Sequence[Any], attribute: str) -> float:
    """Mean of ``getattr(result, attribute)`` over non-``None`` values."""
    values = [getattr(result, attribute) for result in results]
    values = [value for value in values if value is not None]
    if not values:
        raise ValueError(f"no values for attribute {attribute!r}")
    return sum(values) / len(values)
