"""E2 -- average time complexity of the ABE election is linear in ``n``.

Paper claim (Sections 1 and 3): with the adaptive activation schedule the
algorithm also has *average linear time complexity* -- the overall wake-up
pressure stays constant, so only O(1) activation waves are needed and each
wave costs O(n * delta) simulated time.

Identical sweep to E1 but the measured quantity is the simulated real time at
which the leader decides.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.analysis import recommended_a0
from repro.experiments.parallel import SweepPool
from repro.experiments.results import ExperimentResult, ResultTable
from repro.experiments.runner import AdaptiveStopping, adaptive_parameters
from repro.experiments.workloads import DEFAULT_RING_SIZES, DEFAULT_TRIALS, election_spec
from repro.scenarios.runtime import run_study
from repro.scenarios.spec import StudySpec
from repro.stats.complexity_fit import best_growth_order
from repro.stats.confidence import confidence_interval

EXPERIMENT_ID = "e2"
TITLE = "Average time complexity of the ABE election"
CLAIM = (
    "The election algorithm has average linear time complexity on anonymous "
    "unidirectional ABE rings of known size n."
)

__all__ = ["EXPERIMENT_ID", "TITLE", "CLAIM", "build_study", "run"]


def build_study(
    sizes: Sequence[int] = DEFAULT_RING_SIZES,
    trials: int = DEFAULT_TRIALS,
    base_seed: int = 22,
) -> StudySpec:
    """The E2 battery: identical sweep to E1, targeting the election time."""
    return StudySpec(
        name=EXPERIMENT_ID,
        title=TITLE,
        metric="election_time",
        points=tuple(election_spec(n, trials, base_seed) for n in sizes),
    )


def run(
    sizes: Sequence[int] = DEFAULT_RING_SIZES,
    trials: int = DEFAULT_TRIALS,
    base_seed: int = 22,
    workers: int = 1,
    pool: SweepPool = None,
    adaptive: Optional[AdaptiveStopping] = None,
) -> ExperimentResult:
    """Run the time-complexity sweep and return the E2 result.

    One shared :class:`~repro.experiments.parallel.SweepPool` serves every
    ring size (see E1); results are bit-identical for any worker count.
    ``adaptive`` targets the election *time* (this experiment's metric)
    unless it pins another one explicitly.
    """
    if adaptive is not None:
        adaptive = adaptive.resolved("election_time")
    table = ResultTable(
        title="E2: simulated time to elect a leader (mean over trials)",
        columns=[
            "n",
            "a0",
            "time_mean",
            "time_ci95",
            "time_per_node",
            "activations_mean",
            "all_elected",
        ],
    )
    sizes = list(sizes)
    means = []
    study = build_study(sizes=sizes, trials=trials, base_seed=base_seed)
    per_size = run_study(study, pool=pool, workers=workers, adaptive=adaptive)
    for n, results in zip(sizes, per_size):
        elected = [r for r in results if r.elected]
        times = [float(r.election_time) for r in elected if r.election_time is not None]
        activations = [float(r.activations) for r in elected]
        interval = confidence_interval(times)
        means.append(interval.estimate)
        table.add_row(
            n=n,
            a0=recommended_a0(n),
            time_mean=interval.estimate,
            time_ci95=interval.half_width,
            time_per_node=interval.estimate / n,
            activations_mean=sum(activations) / len(activations),
            all_elected=len(elected) == len(results),
        )
    fits = best_growth_order(sizes, means)
    best_model = next(iter(fits))
    per_node = [mean / n for mean, n in zip(means, sizes)]
    table.add_note(
        f"best-fitting growth order: {best_model} "
        f"(relative error {fits[best_model].relative_error:.3f})"
    )
    findings = {
        "best_growth_order": best_model,
        "linear_is_best": best_model == "n",
        "max_time_per_node": max(per_node),
        "min_time_per_node": min(per_node),
        "per_node_spread": max(per_node) / min(per_node) if min(per_node) > 0 else float("inf"),
        "all_runs_elected": all(table.column("all_elected")),
    }
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        claim=CLAIM,
        tables=[table],
        findings=findings,
        parameters=adaptive_parameters(
            {"sizes": tuple(sizes), "trials": trials, "base_seed": base_seed},
            adaptive,
            per_size,
        ),
    )
