"""E5 -- Theorem 1: synchronising an ABE network costs >= n messages per round.

Theorem 1 of the paper states that ABE networks of size ``n`` cannot be
synchronised with fewer than ``n`` messages per round; the proof is inherited
from the classical asynchronous impossibility because every asynchronous
execution is an ABE execution.  The constructive side of the story is the ABD
synchronizer of Tel, Korach and Zaks, which needs *no* control messages -- but
only because it leans on the hard delay bound that ABE networks lack.

The experiment exhibits both sides on the same client algorithm (synchronous
flooding) and the same topologies:

* the alpha and beta synchronizers are correct on ABE delays (their results
  match the synchronous ground truth) and send well over ``n`` messages per
  round;
* the ABD synchronizer undercuts ``n`` messages per round, is correct when the
  delays really are bounded, and breaks on ABE delays (late messages appear
  and/or results diverge from the ground truth).

The per-size battery itself (alpha/beta/ABD x ABE/ABD delays, ring + random
graph) lives in :func:`repro.scenarios.algorithms.run_synchronizer_battery`
and is reachable declaratively as the ``synchronizer-battery`` algorithm;
this module is the analysis callback over the battery rows.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.parallel import SweepPool
from repro.experiments.results import ExperimentResult, ResultTable
from repro.scenarios.algorithms import ABD_DELAY_BOUND  # noqa: F401  (re-export)
from repro.scenarios.runtime import run_study
from repro.scenarios.spec import ScenarioSpec, SpecNode, StudySpec

EXPERIMENT_ID = "e5"
TITLE = "Theorem 1: messages per round needed to synchronise an ABE network"
CLAIM = (
    "ABE networks of size n cannot be synchronised with fewer than n messages "
    "per round; the message-free ABD synchronizer is unsound on ABE delays."
)

__all__ = ["EXPERIMENT_ID", "TITLE", "CLAIM", "ABD_DELAY_BOUND", "build_study", "run"]

DEFAULT_SIZES: Sequence[int] = (8, 16, 32)


def build_study(
    sizes: Sequence[int] = DEFAULT_SIZES,
    rounds: Optional[int] = None,
    base_seed: int = 55,
    include_random_graph: bool = True,
) -> StudySpec:
    """The E5 battery: one one-shot synchronizer battery per network size."""
    return StudySpec(
        name=EXPERIMENT_ID,
        title=TITLE,
        metric="messages_per_round",
        points=tuple(
            ScenarioSpec(
                algorithm="synchronizer-battery",
                topology=SpecNode("biring", {"n": n}),
                seed=base_seed,
                label=f"n{n}",
                params={
                    "rounds": rounds,
                    "include_random_graph": include_random_graph,
                },
            )
            for n in sizes
        ),
    )


def run(
    sizes: Sequence[int] = DEFAULT_SIZES,
    rounds: Optional[int] = None,
    base_seed: int = 55,
    include_random_graph: bool = True,
    workers: int = 1,
    pool: SweepPool = None,
) -> ExperimentResult:
    """Run the synchronizer comparison and return the E5 result."""
    table = ResultTable(
        title="E5: messages per round and correctness, by synchronizer",
        columns=[
            "topology",
            "n",
            "synchronizer",
            "delay_model",
            "messages_per_round",
            "theorem1_bound",
            "meets_theorem1",
            "late_messages",
            "matches_ground_truth",
        ],
    )

    study = build_study(
        sizes=sizes,
        rounds=rounds,
        base_seed=base_seed,
        include_random_graph=include_random_graph,
    )
    batteries = [
        point_results[0]
        for point_results in run_study(study, pool=pool, workers=workers)
    ]

    sound_always_above_bound = True
    abd_below_bound_somewhere = False
    abd_incorrect_on_abe = False
    for rows in batteries:
        for row in rows:
            if row["synchronizer"] in ("alpha", "beta"):
                sound_always_above_bound &= row["meets_theorem1"]
            if row["synchronizer"] == "abd" and not row["meets_theorem1"]:
                abd_below_bound_somewhere = True
            if row["synchronizer"] == "abd" and row["delay_model"].startswith("ABE"):
                if row["late_messages"] > 0 or not row["matches_ground_truth"]:
                    abd_incorrect_on_abe = True
            table.add_row(**row)
    table.add_note(
        "alpha/beta are correct on ABE delays and always pay >= n messages per "
        "round; the ABD synchronizer undercuts the bound only by assuming a "
        "hard delay bound, which ABE delays violate (late messages)."
    )
    findings = {
        "sound_synchronizers_meet_theorem1": sound_always_above_bound,
        "abd_synchronizer_undercuts_bound": abd_below_bound_somewhere,
        "abd_synchronizer_unsound_on_abe": abd_incorrect_on_abe,
    }
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        claim=CLAIM,
        tables=[table],
        findings=findings,
        parameters={
            "sizes": tuple(sizes),
            "rounds": rounds,
            "base_seed": base_seed,
            "include_random_graph": include_random_graph,
        },
    )
