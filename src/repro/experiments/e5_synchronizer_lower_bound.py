"""E5 -- Theorem 1: synchronising an ABE network costs >= n messages per round.

Theorem 1 of the paper states that ABE networks of size ``n`` cannot be
synchronised with fewer than ``n`` messages per round; the proof is inherited
from the classical asynchronous impossibility because every asynchronous
execution is an ABE execution.  The constructive side of the story is the ABD
synchronizer of Tel, Korach and Zaks, which needs *no* control messages -- but
only because it leans on the hard delay bound that ABE networks lack.

The experiment exhibits both sides on the same client algorithm (synchronous
flooding) and the same topologies:

* the alpha and beta synchronizers are correct on ABE delays (their results
  match the synchronous ground truth) and send well over ``n`` messages per
  round;
* the ABD synchronizer undercuts ``n`` messages per round, is correct when the
  delays really are bounded, and breaks on ABE delays (late messages appear
  and/or results diverge from the ground truth).
"""

from __future__ import annotations

from functools import partial
from typing import Dict, List, Optional, Sequence

from repro.algorithms.synchronous import FloodingSync, SynchronousExecutor
from repro.experiments.parallel import SweepPool
from repro.experiments.results import ExperimentResult, ResultTable
from repro.network.delays import ExponentialDelay, UniformDelay
from repro.network.topology import Topology, bidirectional_ring, random_connected
from repro.synchronizers.abd import AbdSynchronizerProgram
from repro.synchronizers.alpha import AlphaSynchronizerProgram
from repro.synchronizers.base import SynchronizedRunResult, run_synchronized
from repro.synchronizers.beta import BetaSynchronizerProgram, build_bfs_tree
from repro.synchronizers.lower_bound import theorem1_lower_bound, theorem1_satisfied

EXPERIMENT_ID = "e5"
TITLE = "Theorem 1: messages per round needed to synchronise an ABE network"
CLAIM = (
    "ABE networks of size n cannot be synchronised with fewer than n messages "
    "per round; the message-free ABD synchronizer is unsound on ABE delays."
)

__all__ = ["EXPERIMENT_ID", "TITLE", "CLAIM", "run"]

DEFAULT_SIZES: Sequence[int] = (8, 16, 32)

#: The hard bound the ABD synchronizer believes in, and the bounded delay
#: distribution used for the "genuine ABD network" runs.
ABD_DELAY_BOUND = 2.0


def _flooding_factory(initiator: int, rounds: int):
    def factory(uid: int) -> FloodingSync:
        return FloodingSync(
            is_initiator=(uid == initiator), value="flood-payload", max_rounds=rounds
        )

    return factory


def _ground_truth(topology: Topology, rounds: int) -> List:
    executor = SynchronousExecutor(topology, _flooding_factory(0, rounds))
    return executor.run(max_rounds=rounds + 1).results


def _run_case(
    topology: Topology,
    synchronizer: str,
    rounds: int,
    seed: int,
    abe_delays: bool,
) -> SynchronizedRunResult:
    delay = (
        ExponentialDelay(mean=1.0)
        if abe_delays
        else UniformDelay(0.25, ABD_DELAY_BOUND)
    )
    process_factory = _flooding_factory(0, rounds)
    if synchronizer == "alpha":
        return run_synchronized(
            topology,
            process_factory,
            lambda uid, p, tr, st: AlphaSynchronizerProgram(p, tr, st),
            total_rounds=rounds,
            synchronizer_name="alpha",
            delay=delay,
            seed=seed,
        )
    if synchronizer == "beta":
        tree = build_bfs_tree(topology)
        return run_synchronized(
            topology,
            process_factory,
            lambda uid, p, tr, st: BetaSynchronizerProgram(p, tr, st),
            total_rounds=rounds,
            synchronizer_name="beta",
            delay=delay,
            seed=seed,
            knowledge_factory=lambda uid: tree[uid],
        )
    if synchronizer == "abd":
        return run_synchronized(
            topology,
            process_factory,
            lambda uid, p, tr, st: AbdSynchronizerProgram(
                p, tr, st, delay_bound=ABD_DELAY_BOUND
            ),
            total_rounds=rounds,
            synchronizer_name="abd",
            delay=delay,
            seed=seed,
        )
    raise ValueError(f"unknown synchronizer {synchronizer!r}")


def _run_size_battery(
    rounds: Optional[int], base_seed: int, include_random_graph: bool, n: int
) -> List[dict]:
    """All cases for one ring size; rows carry only primitives so the per-size
    batteries can run in (long-lived) worker processes.  Module-level -- and
    invoked through :func:`functools.partial` -- so it pickles into a shared
    :class:`~repro.experiments.parallel.SweepPool`."""
    rows: List[dict] = []
    topologies: List[Topology] = [bidirectional_ring(n)]
    if include_random_graph:
        topologies.append(random_connected(n, edge_probability=0.3, seed=base_seed + n))
    for topology in topologies:
        round_count = rounds if rounds is not None else max(4, n // 2)
        truth = _ground_truth(topology, round_count)
        cases = [
            ("alpha", True),
            ("beta", True),
            ("abd", False),
            ("abd", True),
        ]
        for synchronizer, abe_delays in cases:
            result = _run_case(
                topology, synchronizer, round_count, base_seed + n, abe_delays
            )
            matches = result.results == truth and result.completed
            rows.append(
                dict(
                    topology=topology.name,
                    n=n,
                    synchronizer=synchronizer,
                    delay_model="ABE (exponential)" if abe_delays else "ABD (bounded)",
                    messages_per_round=result.messages_per_round,
                    theorem1_bound=theorem1_lower_bound(n),
                    meets_theorem1=theorem1_satisfied(result),
                    late_messages=result.late_messages,
                    matches_ground_truth=matches,
                )
            )
    return rows


def run(
    sizes: Sequence[int] = DEFAULT_SIZES,
    rounds: Optional[int] = None,
    base_seed: int = 55,
    include_random_graph: bool = True,
    workers: int = 1,
    pool: SweepPool = None,
) -> ExperimentResult:
    """Run the synchronizer comparison and return the E5 result."""
    table = ResultTable(
        title="E5: messages per round and correctness, by synchronizer",
        columns=[
            "topology",
            "n",
            "synchronizer",
            "delay_model",
            "messages_per_round",
            "theorem1_bound",
            "meets_theorem1",
            "late_messages",
            "matches_ground_truth",
        ],
    )

    battery = partial(_run_size_battery, rounds, base_seed, include_random_graph)
    with SweepPool.ensure(pool, workers) as shared:
        batteries = shared.map(battery, list(sizes))

    sound_always_above_bound = True
    abd_below_bound_somewhere = False
    abd_incorrect_on_abe = False
    for rows in batteries:
        for row in rows:
            if row["synchronizer"] in ("alpha", "beta"):
                sound_always_above_bound &= row["meets_theorem1"]
            if row["synchronizer"] == "abd" and not row["meets_theorem1"]:
                abd_below_bound_somewhere = True
            if row["synchronizer"] == "abd" and row["delay_model"].startswith("ABE"):
                if row["late_messages"] > 0 or not row["matches_ground_truth"]:
                    abd_incorrect_on_abe = True
            table.add_row(**row)
    table.add_note(
        "alpha/beta are correct on ABE delays and always pay >= n messages per "
        "round; the ABD synchronizer undercuts the bound only by assuming a "
        "hard delay bound, which ABE delays violate (late messages)."
    )
    findings = {
        "sound_synchronizers_meet_theorem1": sound_always_above_bound,
        "abd_synchronizer_undercuts_bound": abd_below_bound_somewhere,
        "abd_synchronizer_unsound_on_abe": abd_incorrect_on_abe,
    }
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        claim=CLAIM,
        tables=[table],
        findings=findings,
        parameters={
            "sizes": tuple(sizes),
            "rounds": rounds,
            "base_seed": base_seed,
            "include_random_graph": include_random_graph,
        },
    )
