"""The ABE election algorithm for anonymous, unidirectional rings (Section 3).

Every node runs the same program (anonymity: no identifiers are consulted) and
is in one of four states: **idle**, **active**, **passive** or **leader**.
Initially all nodes are idle and store ``d = 1``.  The behaviour, verbatim
from the paper:

* If A is idle, then at every clock tick, with probability
  ``1 - (1 - A0)^{d(A)}``, A becomes active, and in this case sends the
  message ``<1>``.
* If A receives a message ``<hop>``, it sets ``d(A) = max(d(A), hop)``.  In
  addition, depending on its current state:

  (i)   if A is idle, it becomes passive and sends ``<d(A) + 1>``;
  (ii)  if A is passive, it sends ``<d(A) + 1>``;
  (iii) if A is active, it becomes **leader** if ``hop = n``, and otherwise it
        becomes idle, purging the message in both cases.

Messages thus "knock out" idle nodes on their way; a message reaching an
active node either crowns it (after a full traversal, ``hop = n``) or knocks
it back to idle.

Two behaviours are not pinned down by the two-page announcement and are made
explicit (and configurable) here:

* **Messages arriving at a leader** are purged.  After the election exactly
  one node is the leader and every other node is idle or passive, so purging
  at the leader is what guarantees that residual in-flight messages drain.
* **Purging at active nodes** can be switched off (``purge_at_active=False``)
  to run the ablation A2, which demonstrates that purging is essential for the
  linear message complexity.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from repro.core.activation import ActivationSchedule, AdaptiveActivation
from repro.core.messages import HopMessage
from repro.network.node import NodeProgram

__all__ = ["NodeState", "ElectionStatus", "AbeElectionProgram"]

#: The single outgoing port of a node in a unidirectional ring.
RING_PORT = 0


class NodeState(enum.Enum):
    """States of the election algorithm's per-node state machine."""

    IDLE = "idle"
    ACTIVE = "active"
    PASSIVE = "passive"
    LEADER = "leader"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass
class ElectionStatus:
    """Shared, observable status of one election run.

    A single instance is shared by all programs of a run (the runner injects
    it); the program that becomes leader fills it in, which gives the runner
    an O(1) termination check and the experiments a single place to read the
    outcome from.
    """

    leader_uid: Optional[int] = None
    election_time: Optional[float] = None
    leaders_elected: int = 0
    activations: int = 0
    knockouts: int = 0
    hop_overflows: int = 0
    ticks: int = 0

    @property
    def decided(self) -> bool:
        """Whether some node has declared itself leader."""
        return self.leader_uid is not None


class AbeElectionProgram(NodeProgram):
    """Per-node program implementing the Section 3 election algorithm.

    Parameters
    ----------
    status:
        The shared :class:`ElectionStatus` of the run.
    schedule:
        Activation schedule; defaults to the paper's adaptive schedule with
        ``a0 = 0.3``.
    tick_period:
        Local-clock period between activation attempts (1 local time unit by
        default, matching "at every clock tick").
    purge_at_active:
        Paper behaviour (``True``); ``False`` forwards messages at active
        nodes instead (ablation A2).
    stop_network_on_election:
        Whether to request a simulation stop the moment this node becomes
        leader (the runner's default).  Disable to let residual messages drain
        and observe the post-election quiescence.
    """

    def __init__(
        self,
        status: ElectionStatus,
        schedule: Optional[ActivationSchedule] = None,
        tick_period: float = 1.0,
        purge_at_active: bool = True,
        stop_network_on_election: bool = True,
    ) -> None:
        super().__init__()
        if tick_period <= 0:
            raise ValueError("tick_period must be positive")
        self.status = status
        self.schedule = schedule if schedule is not None else AdaptiveActivation(0.3)
        self.tick_period = float(tick_period)
        self.purge_at_active = purge_at_active
        self.stop_network_on_election = stop_network_on_election
        self.state = NodeState.IDLE
        self.d = 1
        self.messages_received = 0
        self.messages_forwarded = 0
        self.times_activated = 0
        self.times_knocked_out = 0

    # ------------------------------------------------------------------ start

    def on_start(self) -> None:
        """Initialise the node (idle, ``d = 1``) and start the local clock ticks."""
        ring_size = self.n
        if ring_size is None:
            raise RuntimeError(
                "the ABE election algorithm requires the ring size n to be known; "
                "configure the network with size_known=True"
            )
        if self.out_degree != 1:
            raise RuntimeError(
                "the ABE election algorithm runs on unidirectional rings "
                f"(expected exactly 1 outgoing port, found {self.out_degree})"
            )
        self.state = NodeState.IDLE
        self.d = 1
        self.trace("state", state=str(self.state), d=self.d)
        self.start_ticks(self._on_tick, local_period=self.tick_period)

    # ------------------------------------------------------------------- tick

    def _on_tick(self, tick_index: int) -> Optional[bool]:
        """One local clock tick: an idle node may spontaneously activate."""
        self.status.ticks += 1
        self.metrics.increment("ticks")
        if self.state is NodeState.PASSIVE or self.state is NodeState.LEADER:
            # Passive and leader are absorbing for the tick rule; stop ticking
            # to keep the event queue small.  (Active nodes keep ticking
            # because a knock-out returns them to idle.)
            return False
        if self.state is not NodeState.IDLE:
            return None
        probability = self.schedule.probability(self.d)
        if self.rng.random() < probability:
            self._activate()
        return None

    def _activate(self) -> None:
        """Idle -> active transition: send ``<1>`` to the successor."""
        self.state = NodeState.ACTIVE
        self.times_activated += 1
        self.status.activations += 1
        self.metrics.increment("activations")
        self.trace("state", state=str(self.state), d=self.d)
        self.send(RING_PORT, HopMessage(hop=1))

    # ---------------------------------------------------------------- receive

    def on_receive(self, payload: HopMessage, port: int) -> None:
        """Handle an incoming ``<hop>`` message according to the current state."""
        if not isinstance(payload, HopMessage):
            raise TypeError(
                f"ABE election nodes only understand HopMessage, got {payload!r}"
            )
        self.messages_received += 1
        self.d = max(self.d, payload.hop)

        if self.state is NodeState.IDLE:
            self._receive_while_idle(payload)
        elif self.state is NodeState.PASSIVE:
            self._receive_while_passive(payload)
        elif self.state is NodeState.ACTIVE:
            self._receive_while_active(payload)
        else:  # LEADER
            self._receive_while_leader(payload)

    def _forward(self, payload: HopMessage, knocked_out_idle: bool) -> None:
        new_hop = self.d + 1
        ring_size = self.n or 0
        if ring_size and new_hop > ring_size:
            # Reachable configurations never produce hop counters above n (the
            # hop domain is {1, ..., n}); count any occurrence so the
            # verification layer can flag it instead of silently mutating
            # behaviour.
            self.status.hop_overflows += 1
            self.metrics.increment("hop_overflows")
        forwarded = payload.forwarded(new_hop, knocked_out_idle)
        self.messages_forwarded += 1
        if knocked_out_idle:
            self.status.knockouts += 1
            self.metrics.increment("knockout_messages")
        self.send(RING_PORT, forwarded)

    def _receive_while_idle(self, payload: HopMessage) -> None:
        """Rule (i): become passive and forward ``<d + 1>``."""
        self.state = NodeState.PASSIVE
        self.times_knocked_out += 1
        self.trace("state", state=str(self.state), d=self.d, hop=payload.hop)
        self.stop_ticks()
        self._forward(payload, knocked_out_idle=True)

    def _receive_while_passive(self, payload: HopMessage) -> None:
        """Rule (ii): forward ``<d + 1>``."""
        self._forward(payload, knocked_out_idle=False)

    def _receive_while_active(self, payload: HopMessage) -> None:
        """Rule (iii): become leader on ``hop = n``, otherwise fall back to idle."""
        ring_size = self.n
        if ring_size is not None and payload.hop == ring_size:
            self._become_leader(payload)
            return
        if self.purge_at_active:
            self.state = NodeState.IDLE
            self.trace("state", state=str(self.state), d=self.d, hop=payload.hop)
            # The message is purged: nothing is forwarded.
            return
        # Ablation A2: no purging -- the active node still falls back to idle
        # but forwards the message as if it were passive, so tokens are never
        # removed from the ring.
        self.state = NodeState.IDLE
        self.trace("state", state=str(self.state), d=self.d, hop=payload.hop)
        self._forward(payload, knocked_out_idle=False)

    def _receive_while_leader(self, payload: HopMessage) -> None:
        """Leaders purge residual messages so the ring drains after the election."""
        self.trace("purge", hop=payload.hop)

    def _become_leader(self, payload: HopMessage) -> None:
        node = self._require_node()
        self.state = NodeState.LEADER
        self.stop_ticks()
        self.status.leader_uid = node.uid
        self.status.election_time = self.now
        self.status.leaders_elected += 1
        self.metrics.increment("leaders_elected")
        self.metrics.mark("leader_elected", self.now)
        self.trace("decide", state=str(self.state), hop=payload.hop)
        if self.stop_network_on_election:
            node.network.request_stop()

    # ----------------------------------------------------------------- result

    def result(self) -> NodeState:
        """The node's final state."""
        return self.state

    @property
    def is_leader(self) -> bool:
        """Whether this node ended up as the leader."""
        return self.state is NodeState.LEADER
