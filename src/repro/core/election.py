"""The ABE election algorithm for anonymous, unidirectional rings (Section 3).

Every node runs the same program (anonymity: no identifiers are consulted) and
is in one of four states: **idle**, **active**, **passive** or **leader**.
Initially all nodes are idle and store ``d = 1``.  The behaviour, verbatim
from the paper:

* If A is idle, then at every clock tick, with probability
  ``1 - (1 - A0)^{d(A)}``, A becomes active, and in this case sends the
  message ``<1>``.
* If A receives a message ``<hop>``, it sets ``d(A) = max(d(A), hop)``.  In
  addition, depending on its current state:

  (i)   if A is idle, it becomes passive and sends ``<d(A) + 1>``;
  (ii)  if A is passive, it sends ``<d(A) + 1>``;
  (iii) if A is active, it becomes **leader** if ``hop = n``, and otherwise it
        becomes idle, purging the message in both cases.

Messages thus "knock out" idle nodes on their way; a message reaching an
active node either crowns it (after a full traversal, ``hop = n``) or knocks
it back to idle.

Two behaviours are not pinned down by the two-page announcement and are made
explicit (and configurable) here:

* **Messages arriving at a leader** are purged.  After the election exactly
  one node is the leader and every other node is idle or passive, so purging
  at the leader is what guarantees that residual in-flight messages drain.
* **Purging at active nodes** can be switched off (``purge_at_active=False``)
  to run the ablation A2, which demonstrates that purging is essential for the
  linear message complexity.

Hot-path design
---------------
The tick handler runs once per node and local time unit -- it dominates the
event count of every election -- so its bookkeeping mirrors what PR 2 did to
the message path:

* counters are plain integer attributes on the shared :class:`ElectionStatus`
  (a single ``+= 1``); the network's
  :class:`~repro.sim.monitor.MetricsCollector` reads them back through
  :meth:`~repro.sim.monitor.MetricsCollector.bind_external_sum`, so
  ``count()``/``counters()``/``summary()`` readers are unchanged and the
  string-keyed ``increment`` dictionary lookups are gone;
* the per-node coin flip is prebound (``self._rng_random``) and the
  activation probability is cached per value of ``d`` (schedules are pure
  functions of ``d`` by contract -- see
  :class:`~repro.core.activation.ActivationSchedule`), so a steady-state tick
  performs no attribute-chain walks, no method dispatch into the schedule and
  no exponentiation;
* tick scheduling itself is allocation-free: the per-node
  :class:`~repro.sim.process.TickProcess` re-arms one event record per tick,
  and under ``batch_ticks`` (see :func:`repro.core.runner.build_election_network`)
  a :class:`~repro.sim.process.SharedTickProcess` drives a whole activation
  round of nodes from a single heap entry.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from repro.core.activation import ActivationSchedule, AdaptiveActivation
from repro.core.messages import HopMessage, HopMessagePool
from repro.network.node import Node, NodeProgram
from repro.sim.process import SharedTickProcess

__all__ = ["NodeState", "ElectionStatus", "AbeElectionProgram"]

#: The single outgoing port of a node in a unidirectional ring.
RING_PORT = 0


class NodeState(enum.Enum):
    """States of the election algorithm's per-node state machine."""

    IDLE = "idle"
    ACTIVE = "active"
    PASSIVE = "passive"
    LEADER = "leader"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass
class ElectionStatus:
    """Shared, observable status of one election run.

    A single instance is shared by all programs of a run (the runner injects
    it); the program that becomes leader fills it in, which gives the runner
    an O(1) termination check and the experiments a single place to read the
    outcome from.

    The integer fields double as the run's hot-path counters: programs bump
    them with plain ``+= 1`` statements and the network's metrics collector
    exposes them read-only under the historical counter names (``"ticks"``,
    ``"activations"``, ``"knockout_messages"``, ``"hop_overflows"``,
    ``"leaders_elected"``) via :meth:`bind_metrics`.
    """

    leader_uid: Optional[int] = None
    election_time: Optional[float] = None
    leaders_elected: int = 0
    activations: int = 0
    knockouts: int = 0
    hop_overflows: int = 0
    ticks: int = 0

    @property
    def decided(self) -> bool:
        """Whether some node has declared itself leader."""
        return self.leader_uid is not None

    def bind_metrics(self, metrics) -> None:
        """Expose this status's plain counters through ``metrics`` (idempotent).

        Called by every program sharing the status; the collector keys the
        registration on the status object itself, so the counters are summed
        exactly once per status no matter how many nodes bind it.
        """
        metrics.bind_external_sum("ticks", self, lambda: self.ticks)
        metrics.bind_external_sum("activations", self, lambda: self.activations)
        metrics.bind_external_sum("knockout_messages", self, lambda: self.knockouts)
        metrics.bind_external_sum("hop_overflows", self, lambda: self.hop_overflows)
        metrics.bind_external_sum("leaders_elected", self, lambda: self.leaders_elected)


class AbeElectionProgram(NodeProgram):
    """Per-node program implementing the Section 3 election algorithm.

    Parameters
    ----------
    status:
        The shared :class:`ElectionStatus` of the run.
    schedule:
        Activation schedule; defaults to the paper's adaptive schedule with
        ``a0 = 0.3``.  Must be a pure function of ``d`` (the activation
        probability is cached per ``d`` value).
    tick_period:
        Local-clock period between activation attempts (1 local time unit by
        default, matching "at every clock tick").
    purge_at_active:
        Paper behaviour (``True``); ``False`` forwards messages at active
        nodes instead (ablation A2).
    stop_network_on_election:
        Whether to request a simulation stop the moment this node becomes
        leader (the runner's default).  Disable to let residual messages drain
        and observe the post-election quiescence.
    tick_driver:
        Optional :class:`~repro.sim.process.SharedTickProcess` batching this
        node's ticks with every peer tick landing at the same instant (one
        heap entry per occupied instant; one per activation round when all
        clocks are drift-free).  The runner injects it under
        ``batch_ticks=True``; when ``None`` the node runs its own
        :class:`~repro.sim.process.TickProcess`.
    hop_pool:
        Optional shared :class:`~repro.core.messages.HopMessagePool`.  Sends
        draw recycled message records from it; the ring channels release
        consumed messages back (refcount-guarded, see
        :meth:`~repro.network.channel.Channel._deliver`).  ``None`` allocates
        a fresh :class:`~repro.core.messages.HopMessage` per send.
    """

    def __init__(
        self,
        status: ElectionStatus,
        schedule: Optional[ActivationSchedule] = None,
        tick_period: float = 1.0,
        purge_at_active: bool = True,
        stop_network_on_election: bool = True,
        tick_driver: Optional[SharedTickProcess] = None,
        hop_pool: Optional[HopMessagePool] = None,
    ) -> None:
        super().__init__()
        if tick_period <= 0:
            raise ValueError("tick_period must be positive")
        self.status = status
        self.schedule = schedule if schedule is not None else AdaptiveActivation(0.3)
        self.tick_period = float(tick_period)
        self.purge_at_active = purge_at_active
        self.stop_network_on_election = stop_network_on_election
        self.tick_driver = tick_driver
        # Shared per-run HopMessage free list (see repro.core.messages); when
        # absent every send allocates, as before the pool existed.
        self.hop_pool = hop_pool
        self._acquire_message = None if hop_pool is None else hop_pool.acquire
        self.state = NodeState.IDLE
        self.d = 1
        self.messages_received = 0
        self.messages_forwarded = 0
        self.times_activated = 0
        self.times_knocked_out = 0
        # Hot-loop caches, completed at bind()/on_start() time.
        self._probability = 0.0
        self._rng_random = None

    # ------------------------------------------------------------------ wiring

    def bind(self, node: Node) -> None:
        """Bind to the node, prebind the coin flip and publish the counters."""
        super().bind(node)
        self._rng_random = node.rng.random
        self.status.bind_metrics(node.network.metrics)

    # ------------------------------------------------------------------ start

    def on_start(self) -> None:
        """Initialise the node (idle, ``d = 1``) and start the local clock ticks."""
        ring_size = self.n
        if ring_size is None:
            raise RuntimeError(
                "the ABE election algorithm requires the ring size n to be known; "
                "configure the network with size_known=True"
            )
        if self.out_degree != 1:
            raise RuntimeError(
                "the ABE election algorithm runs on unidirectional rings "
                f"(expected exactly 1 outgoing port, found {self.out_degree})"
            )
        self.state = NodeState.IDLE
        self.d = 1
        self._probability = self.schedule.probability(1)
        self.trace("state", state=str(self.state), d=self.d)
        if self.tick_driver is not None:
            # Join order across nodes is on_start order (uid order), which is
            # exactly the per-node firing order at shared instants.  The
            # node's own clock travels with the membership, so drifting
            # clocks keep their private tick times.
            self._tick_process = self.tick_driver.join(
                self._on_tick,
                clock=self._require_node().clock,
                period=self.tick_period,
            )
        else:
            self.start_ticks(self._on_tick, local_period=self.tick_period)

    # ------------------------------------------------------------------- tick

    def _on_tick(self, tick_index: int) -> Optional[bool]:
        """One local clock tick: an idle node may spontaneously activate."""
        self.status.ticks += 1
        state = self.state
        if state is NodeState.PASSIVE or state is NodeState.LEADER:
            # Passive and leader are absorbing for the tick rule; stop ticking
            # to keep the event queue small.  (Active nodes keep ticking
            # because a knock-out returns them to idle.)
            return False
        if state is not NodeState.IDLE:
            return None
        if self._rng_random() < self._probability:
            self._activate()
        return None

    def _activate(self) -> None:
        """Idle -> active transition: send ``<1>`` to the successor."""
        self.state = NodeState.ACTIVE
        self.times_activated += 1
        self.status.activations += 1
        self.trace("state", state=str(self.state), d=self.d)
        acquire = self._acquire_message
        message = HopMessage(hop=1) if acquire is None else acquire(1)
        self.send(RING_PORT, message)

    # ---------------------------------------------------------------- receive

    def on_receive(self, payload: HopMessage, port: int) -> None:
        """Handle an incoming ``<hop>`` message according to the current state."""
        if not isinstance(payload, HopMessage):
            raise TypeError(
                f"ABE election nodes only understand HopMessage, got {payload!r}"
            )
        self.messages_received += 1
        hop = payload.hop
        if hop > self.d:
            self.d = hop
            # d changed: refresh the cached activation probability (schedules
            # are pure in d, so this is the only recompute point).
            self._probability = self.schedule.probability(hop)

        if self.state is NodeState.IDLE:
            self._receive_while_idle(payload)
        elif self.state is NodeState.PASSIVE:
            self._receive_while_passive(payload)
        elif self.state is NodeState.ACTIVE:
            self._receive_while_active(payload)
        else:  # LEADER
            self._receive_while_leader(payload)

    def _forward(self, payload: HopMessage, knocked_out_idle: bool) -> None:
        new_hop = self.d + 1
        ring_size = self.n or 0
        if ring_size and new_hop > ring_size:
            # Reachable configurations never produce hop counters above n (the
            # hop domain is {1, ..., n}); count any occurrence so the
            # verification layer can flag it instead of silently mutating
            # behaviour.
            self.status.hop_overflows += 1
        acquire = self._acquire_message
        if acquire is None:
            forwarded = payload.forwarded(new_hop, knocked_out_idle)
        else:
            forwarded = acquire(
                new_hop, payload.token_id, payload.knockout or knocked_out_idle
            )
        self.messages_forwarded += 1
        if knocked_out_idle:
            self.status.knockouts += 1
        self.send(RING_PORT, forwarded)

    def _receive_while_idle(self, payload: HopMessage) -> None:
        """Rule (i): become passive and forward ``<d + 1>``."""
        self.state = NodeState.PASSIVE
        self.times_knocked_out += 1
        self.trace("state", state=str(self.state), d=self.d, hop=payload.hop)
        self.stop_ticks()
        self._forward(payload, knocked_out_idle=True)

    def _receive_while_passive(self, payload: HopMessage) -> None:
        """Rule (ii): forward ``<d + 1>``."""
        self._forward(payload, knocked_out_idle=False)

    def _receive_while_active(self, payload: HopMessage) -> None:
        """Rule (iii): become leader on ``hop = n``, otherwise fall back to idle."""
        ring_size = self.n
        if ring_size is not None and payload.hop == ring_size:
            self._become_leader(payload)
            return
        if self.purge_at_active:
            self.state = NodeState.IDLE
            self.trace("state", state=str(self.state), d=self.d, hop=payload.hop)
            # The message is purged: nothing is forwarded.
            return
        # Ablation A2: no purging -- the active node still falls back to idle
        # but forwards the message as if it were passive, so tokens are never
        # removed from the ring.
        self.state = NodeState.IDLE
        self.trace("state", state=str(self.state), d=self.d, hop=payload.hop)
        self._forward(payload, knocked_out_idle=False)

    def _receive_while_leader(self, payload: HopMessage) -> None:
        """Leaders purge residual messages so the ring drains after the election."""
        self.trace("purge", hop=payload.hop)

    def _become_leader(self, payload: HopMessage) -> None:
        node = self._require_node()
        self.state = NodeState.LEADER
        self.stop_ticks()
        self.status.leader_uid = node.uid
        self.status.election_time = self.now
        self.status.leaders_elected += 1
        self.metrics.mark("leader_elected", self.now)
        self.trace("decide", state=str(self.state), hop=payload.hop)
        if self.stop_network_on_election:
            node.network.request_stop()

    # ----------------------------------------------------------------- result

    def result(self) -> NodeState:
        """The node's final state."""
        return self.state

    @property
    def is_leader(self) -> bool:
        """Whether this node ended up as the leader."""
        return self.state is NodeState.LEADER
