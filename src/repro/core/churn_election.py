"""Churn-aware ABE election: epochs, heartbeats, and re-election.

The Section 3 algorithm elects once on a static ring and stops.  Under the
scripted churn of :mod:`repro.network.churn` three new things must work:

* **Leader loss must be detected.**  The elected leader circulates a
  :class:`Heartbeat` every ``heartbeat_interval``; every non-leader arms a
  liveness timer (first at knock-out, then re-armed per heartbeat) and treats
  ``leader_timeout`` without one as a dead leader.  Both knobs default to the
  model-derived :meth:`repro.models.abe.ABEModel.churn_timeouts` -- the ABE
  bounds are exactly what makes a meaningful timeout computable.
* **Re-elections must not be confused by stale state.**  Every token is an
  :class:`EpochHopMessage`; a node that suspects the leader bumps its epoch,
  resets to idle with ``d = 1`` and resumes ticking.  Stale-epoch tokens are
  purged on receipt, higher-epoch tokens are adopted (the adopter also resets
  ``d = 1`` -- a late joiner carrying an inflated ``d`` could otherwise
  forward ``hop > n`` counters and crown nobody, or worse, crown early).  A
  leader receiving a *foreign* same-epoch heartbeat has found a split brain
  and steps down into a fresh epoch (its own heartbeats never return: they
  carry ``ttl = n - 1``).
* **Recovered nodes re-enter as candidates.**  The scheduled injector calls
  ``on_recover()`` after restoring delivery: the program resets to idle with
  ``d = 1`` in its current epoch and resumes ticking, exactly the non-leader
  re-entry the dynamic-network arc asks for.

One structural consequence of the ring (worth internalizing before reading
stabilization numbers): while *any* node is crashed the ring is partitioned --
no token can complete the ``hop = n`` traversal, so a re-election started
during an outage can only finish after the recovery.  Leader-downtime under a
crash-recover script is therefore bounded below by the remaining outage, and
quiescent scripts are the ones with a termination guarantee.

Churn runs do not use the :class:`~repro.core.messages.HopMessagePool`: the
recycler's unobservability guard is tuned for the single-token steady state
and the allocation win is irrelevant next to heartbeat traffic.  Every send
allocates a fresh epoch-stamped message.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.core.activation import ActivationSchedule, AdaptiveActivation
from repro.core.election import NodeState, ElectionStatus, AbeElectionProgram, RING_PORT
from repro.core.messages import HopMessage
from repro.core.runner import ElectionResult, _default_max_events
from repro.models.abe import ABEModel
from repro.network.churn import FaultScript, ScheduledFaultInjector, StabilizationMonitor
from repro.network.delays import DelayDistribution, ExponentialDelay
from repro.network.network import Network, NetworkConfig
from repro.network.topology import unidirectional_ring
from repro.sim.clock import ClockDriftModel
from repro.sim.process import SharedTickProcess

__all__ = [
    "EpochHopMessage",
    "Heartbeat",
    "ChurnElectionStatus",
    "ChurnAwareElectionProgram",
    "ChurnElectionResult",
    "build_churn_election_network",
    "run_churn_election",
]


@dataclass
class EpochHopMessage(HopMessage):
    """A ``<hop>`` token stamped with the election epoch that sent it."""

    epoch: int = 0

    def forwarded(self, new_hop: int, knocked_out_idle: bool) -> "EpochHopMessage":
        return EpochHopMessage(
            hop=new_hop,
            token_id=self.token_id,
            knockout=self.knockout or knocked_out_idle,
            epoch=self.epoch,
        )


@dataclass(frozen=True)
class Heartbeat:
    """The leader's liveness beacon, forwarded around the ring.

    ``ttl`` starts at ``n - 1`` so the heartbeat visits every *other* node
    exactly once and is never delivered back to the leader that sent it (a
    heartbeat arriving at a same-epoch leader is therefore proof of a second
    leader, not an echo).
    """

    epoch: int
    ttl: int


@dataclass
class ChurnElectionStatus(ElectionStatus):
    """Election status extended with churn bookkeeping.

    ``live_leaders`` counts leaders that are crowned, not crashed and not
    deposed -- the stop predicate of a churn run is "script quiescent and
    exactly one live leader".  ``epoch`` is the highest epoch any node has
    reached; ``suspicions`` counts liveness timeouts that bumped an epoch.
    """

    epoch: int = 0
    live_leaders: int = 0
    heartbeats: int = 0
    suspicions: int = 0

    def bind_metrics(self, metrics) -> None:
        super().bind_metrics(metrics)
        metrics.bind_external_sum("heartbeats", self, lambda: self.heartbeats)
        metrics.bind_external_sum("suspicions", self, lambda: self.suspicions)
        metrics.bind_external_sum("live_leaders", self, lambda: self.live_leaders)


class ChurnAwareElectionProgram(AbeElectionProgram):
    """The Section 3 program plus epochs, heartbeats and crash/recover hooks.

    In a static run (no churn events fire, no timeout expires) the epoch
    stays 0 everywhere and the state machine reduces exactly to the parent's;
    the only behavioural additions are the heartbeats the crowned leader
    emits and the liveness timers waiting for them.
    """

    def __init__(
        self,
        status: ChurnElectionStatus,
        *,
        heartbeat_interval: float,
        leader_timeout: float,
        monitor: Optional[StabilizationMonitor] = None,
        schedule: Optional[ActivationSchedule] = None,
        tick_period: float = 1.0,
        purge_at_active: bool = True,
        tick_driver: Optional[SharedTickProcess] = None,
    ) -> None:
        if heartbeat_interval <= 0:
            raise ValueError("heartbeat_interval must be positive")
        if leader_timeout <= heartbeat_interval:
            raise ValueError(
                "leader_timeout must exceed heartbeat_interval, got "
                f"timeout={leader_timeout} <= interval={heartbeat_interval}"
            )
        super().__init__(
            status=status,
            schedule=schedule,
            tick_period=tick_period,
            purge_at_active=purge_at_active,
            # A churn run stops on "quiescent script + one live leader", not
            # on the first crowning; and pooled messages would be epoch-less.
            stop_network_on_election=False,
            hop_pool=None,
        )
        self.status: ChurnElectionStatus = status
        self.heartbeat_interval = float(heartbeat_interval)
        self.leader_timeout = float(leader_timeout)
        self.monitor = monitor
        self.epoch = 0
        self.crashed = False
        self._heartbeat_timer = None
        self._liveness_timer = None

    # ------------------------------------------------------------------ hooks

    def on_crash(self) -> bool:
        """Injector hook: freeze local state; returns whether we led.

        Called after the injector installed the delivery swallow and stopped
        our ticks.  Timers must be cancelled here -- a liveness timer firing
        on a crashed node would bump epochs from beyond the grave.
        """
        self.crashed = True
        self._cancel_heartbeat()
        self._cancel_liveness()
        was_leader = self.state is NodeState.LEADER
        if was_leader:
            self.status.live_leaders -= 1
            if self.status.leader_uid == self._require_node().uid:
                self.status.leader_uid = None
        return was_leader

    def on_recover(self) -> None:
        """Injector hook: re-enter the election as an idle non-leader.

        The node keeps its epoch (it may be stale; the first higher-epoch
        token it sees fixes that) but forgets ``d`` -- a pre-crash ``d``
        reflects a ring population that no longer exists.
        """
        self.crashed = False
        self.state = NodeState.IDLE
        self.d = 1
        self._probability = self.schedule.probability(1)
        self.trace("rejoin", state=str(self.state), epoch=self.epoch)
        self._start_ticking()

    # ----------------------------------------------------------------- epochs

    def _adopt_epoch(self, epoch: int) -> None:
        """Catch up to a higher epoch observed on the wire."""
        self.epoch = epoch
        if epoch > self.status.epoch:
            self.status.epoch = epoch
        self.d = 1
        self._probability = self.schedule.probability(1)
        if self.state is NodeState.LEADER:
            self._step_down("stale-leader")
        elif self.state is not NodeState.IDLE:
            self.state = NodeState.IDLE
            self.trace("state", state=str(self.state), d=self.d, epoch=epoch)
            self._start_ticking()

    def _bump_epoch(self) -> None:
        """Open a fresh epoch after suspecting the leader (or a split brain)."""
        self.epoch += 1
        if self.epoch > self.status.epoch:
            self.status.epoch = self.epoch
        self.status.suspicions += 1
        self.d = 1
        self._probability = self.schedule.probability(1)
        if self.state is NodeState.LEADER:
            self._step_down("split-brain")
        else:
            self.state = NodeState.IDLE
            self.trace("suspect", state=str(self.state), epoch=self.epoch)
            self._start_ticking()

    def _step_down(self, reason: str) -> None:
        """Leader -> idle: a higher epoch or a split brain deposed us."""
        self._cancel_heartbeat()
        self.state = NodeState.IDLE
        self.status.live_leaders -= 1
        node = self._require_node()
        if self.status.leader_uid == node.uid:
            self.status.leader_uid = None
        self.trace("depose", reason=reason, epoch=self.epoch)
        if self.monitor is not None:
            self.monitor.record_deposed(self.now, node.uid)
        self._start_ticking()

    # ------------------------------------------------------------- heartbeats

    def _heartbeat_fire(self) -> None:
        self._heartbeat_timer = None
        if self.crashed or self.state is not NodeState.LEADER:
            return
        # n >= 2, so ttl = n - 1 >= 1 and the beacon always leaves the leader.
        self.send(RING_PORT, Heartbeat(epoch=self.epoch, ttl=(self.n or 2) - 1))
        self.status.heartbeats += 1
        self._heartbeat_timer = self.set_timer(
            self.heartbeat_interval, self._heartbeat_fire
        )

    def _cancel_heartbeat(self) -> None:
        if self._heartbeat_timer is not None:
            self._heartbeat_timer.cancel()
            self._heartbeat_timer = None

    def _on_heartbeat(self, payload: Heartbeat) -> None:
        if payload.epoch < self.epoch:
            self.trace("purge-stale-heartbeat", epoch=payload.epoch)
            return
        if payload.epoch > self.epoch:
            self._adopt_epoch(payload.epoch)
        elif self.state is NodeState.LEADER:
            # Same epoch, and our own heartbeats never come back (ttl=n-1):
            # some other node is leader in our epoch.  Depose ourselves into a
            # fresh epoch; the surviving leader's next heartbeat (or the
            # election our epoch bump restarts) resolves the race.
            self._bump_epoch()
            return
        self._arm_liveness()
        if payload.ttl > 1:
            self.send(RING_PORT, Heartbeat(epoch=payload.epoch, ttl=payload.ttl - 1))

    # ---------------------------------------------------------------- liveness

    def _arm_liveness(self) -> None:
        self._cancel_liveness()
        self._liveness_timer = self.set_timer(
            self.leader_timeout, self._on_liveness_timeout
        )

    def _cancel_liveness(self) -> None:
        if self._liveness_timer is not None:
            self._liveness_timer.cancel()
            self._liveness_timer = None

    def _on_liveness_timeout(self) -> None:
        self._liveness_timer = None
        if self.crashed or self.state is NodeState.LEADER:
            return
        self.trace("leader-timeout", epoch=self.epoch)
        self._bump_epoch()

    # ----------------------------------------------------------------- ticking

    def _start_ticking(self) -> None:
        """(Re-)join the tick stream after stop_ticks (knock-out, crash, ...)."""
        process = self._tick_process
        if process is not None and not process.stopped:
            return
        if self.tick_driver is not None:
            self._tick_process = self.tick_driver.join(
                self._on_tick,
                clock=self._require_node().clock,
                period=self.tick_period,
            )
        else:
            self.start_ticks(self._on_tick, local_period=self.tick_period)

    # ------------------------------------------------------------ state machine

    def _activate(self) -> None:
        self.state = NodeState.ACTIVE
        self.times_activated += 1
        self.status.activations += 1
        self.trace("state", state=str(self.state), d=self.d, epoch=self.epoch)
        self.send(RING_PORT, EpochHopMessage(hop=1, epoch=self.epoch))
        # An active node does not tick, so if its token dies on the wire (a
        # crash swallow, a cut link, a stale-epoch purge at a node that moved
        # on) nothing would ever wake it again: every node active with every
        # token lost is a deadlock the static algorithm cannot reach but churn
        # can.  Arming the liveness timer on activation closes it -- a
        # stranded active node suspects, bumps its epoch and resumes ticking.
        self._arm_liveness()

    def on_receive(self, payload, port: int) -> None:
        if self.crashed:
            # Defensive: the injector swallows deliveries to crashed nodes;
            # nothing should reach a crashed program.
            return
        if isinstance(payload, Heartbeat):
            self._on_heartbeat(payload)
            return
        if not isinstance(payload, EpochHopMessage):
            raise TypeError(
                "churn-aware election nodes only understand EpochHopMessage "
                f"and Heartbeat, got {payload!r}"
            )
        if payload.epoch < self.epoch:
            self.trace("purge-stale", hop=payload.hop, epoch=payload.epoch)
            return
        if payload.epoch > self.epoch:
            self._adopt_epoch(payload.epoch)
        super().on_receive(payload, port)

    def _receive_while_idle(self, payload: HopMessage) -> None:
        super()._receive_while_idle(payload)
        # Knocked out: someone is actively electing, so from this moment the
        # node expects a leader (and its heartbeats) to emerge.  Arming here
        # rather than on first heartbeat closes the all-passive deadlock where
        # the winner crashes before its first heartbeat circulates.
        self._arm_liveness()

    def _become_leader(self, payload: HopMessage) -> None:
        super()._become_leader(payload)
        self.status.live_leaders += 1
        self._cancel_liveness()
        if self.monitor is not None:
            self.monitor.record_crowned(self.now, self._require_node().uid, self.epoch)
        self._heartbeat_fire()


@dataclass
class ChurnElectionResult(ElectionResult):
    """An :class:`~repro.core.runner.ElectionResult` plus stabilization metrics.

    ``elected``/``leader_uid``/``election_time`` describe the *final* live
    leader (``election_time`` is the last crowning, not the first; the first
    is ``first_election_time``).  The stabilization block aggregates the
    :class:`~repro.network.churn.StabilizationMonitor` episodes.
    """

    crashes: int
    recoveries: int
    link_outages: int
    disruptions: int
    re_elections: int
    final_epoch: int
    first_election_time: Optional[float]
    leader_downtime: float
    time_to_restabilize: float
    max_time_to_restabilize: float
    messages_per_re_election: float
    heartbeats: int
    suspicions: int
    stabilized: bool


def build_churn_election_network(
    n: int,
    *,
    script: FaultScript,
    a0: float = 0.3,
    delay: Optional[DelayDistribution] = None,
    seed: int = 0,
    schedule: Optional[ActivationSchedule] = None,
    clock_bounds: tuple = (1.0, 1.0),
    clock_drift_factory: Optional[Callable[[int], ClockDriftModel]] = None,
    processing_delay: Optional[DelayDistribution] = None,
    fifo: bool = False,
    purge_at_active: bool = True,
    tick_period: float = 1.0,
    enable_trace: bool = False,
    validate_model: bool = True,
    expected_delay_bound: Optional[float] = None,
    batch_sampling: bool = True,
    batch_ticks: bool = True,
    heartbeat_interval: Optional[float] = None,
    leader_timeout: Optional[float] = None,
    faults: tuple = (),
) -> tuple:
    """Construct a churn-aware election run; returns
    ``(network, status, injector, monitor)``.

    Mirrors :func:`repro.core.runner.build_election_network` and accepts the
    same model knobs.  ``heartbeat_interval``/``leader_timeout`` resolve by
    precedence: explicit argument, then the script's attributes, then the ABE
    model's :meth:`~repro.models.abe.ABEModel.churn_timeouts` derived from
    the actual delay/processing/clock configuration.  ``faults`` takes
    additional *static* fault specifications (message loss); crash-stop
    faults belong in the script, where they pair with recoveries.
    """
    if n < 2:
        raise ValueError(f"the election algorithm needs a ring of size n >= 2, got {n}")
    delay_model = delay if delay is not None else ExponentialDelay(mean=1.0)
    schedule = schedule if schedule is not None else AdaptiveActivation(a0)
    status = ChurnElectionStatus()

    config = NetworkConfig(
        topology=unidirectional_ring(n),
        delay_model=delay_model,
        seed=seed,
        fifo=fifo,
        processing_delay=processing_delay,
        clock_bounds=clock_bounds,
        clock_drift_factory=clock_drift_factory,
        size_known=True,
        enable_trace=enable_trace,
        batch_sampling=batch_sampling,
    )

    # The model is constructed unconditionally: even when validation is off
    # its known bounds supply the default failure-detection timeouts.
    delta = expected_delay_bound
    if delta is None:
        mean = delay_model.mean()
        delta = mean if mean > 0 else 1.0
    gamma = processing_delay.mean() if processing_delay is not None else 0.0
    model = ABEModel(
        expected_delay_bound=delta,
        s_low=clock_bounds[0],
        s_high=clock_bounds[1],
        expected_processing_bound=gamma,
    )
    if validate_model:
        model.validate_config(config)

    default_interval, default_timeout = model.churn_timeouts(n)
    if heartbeat_interval is None:
        heartbeat_interval = (
            script.heartbeat_interval
            if script.heartbeat_interval is not None
            else default_interval
        )
    if leader_timeout is None:
        leader_timeout = (
            script.leader_timeout
            if script.leader_timeout is not None
            else default_timeout
        )

    monitor = StabilizationMonitor()

    def program_factory(uid: int) -> ChurnAwareElectionProgram:
        return ChurnAwareElectionProgram(
            status=status,
            heartbeat_interval=heartbeat_interval,
            leader_timeout=leader_timeout,
            monitor=monitor,
            schedule=schedule,
            tick_period=tick_period,
            purge_at_active=purge_at_active,
        )

    network = Network(config, program_factory)
    monitor.attach(network)
    if batch_ticks:
        driver = SharedTickProcess(
            network.simulator, period=tick_period, expected_members=n
        )
        for node in network.nodes:
            node.program.tick_driver = driver

    injector = ScheduledFaultInjector(network, script, status=status, monitor=monitor)
    if faults:
        injector.apply(faults)
    injector.install()
    return network, status, injector, monitor


def run_churn_election(
    n: int,
    *,
    script: FaultScript,
    a0: float = 0.3,
    delay: Optional[DelayDistribution] = None,
    seed: int = 0,
    schedule: Optional[ActivationSchedule] = None,
    clock_bounds: tuple = (1.0, 1.0),
    clock_drift_factory: Optional[Callable[[int], ClockDriftModel]] = None,
    processing_delay: Optional[DelayDistribution] = None,
    fifo: bool = False,
    purge_at_active: bool = True,
    tick_period: float = 1.0,
    enable_trace: bool = False,
    validate_model: bool = True,
    expected_delay_bound: Optional[float] = None,
    batch_sampling: bool = True,
    batch_ticks: bool = True,
    heartbeat_interval: Optional[float] = None,
    leader_timeout: Optional[float] = None,
    faults: tuple = (),
    max_events: Optional[int] = None,
    max_time: Optional[float] = None,
    on_budget: str = "stop",
) -> ChurnElectionResult:
    """Run a churn-aware election under ``script`` and report stabilization.

    The run stops when the script is quiescent (every scheduled disruption
    and its reversal has fired) *and* exactly one live leader exists -- i.e.
    the ring has restabilized after the last disruption.  ``stabilized``
    records whether that predicate was reached within the budgets
    (``elected`` alone only says a final leader exists).

    ``on_budget="raise"`` arms the divergence watchdog exactly as in
    :func:`~repro.core.runner.run_election_on_network`; note that a
    non-quiescent script can legitimately exhaust the budget (a crash without
    recovery partitions the ring forever).
    """
    if on_budget not in ("stop", "raise"):
        raise ValueError(f"on_budget must be 'stop' or 'raise', got {on_budget!r}")
    network, status, injector, monitor = build_churn_election_network(
        n,
        script=script,
        a0=a0,
        delay=delay,
        seed=seed,
        schedule=schedule,
        clock_bounds=clock_bounds,
        clock_drift_factory=clock_drift_factory,
        processing_delay=processing_delay,
        fifo=fifo,
        purge_at_active=purge_at_active,
        tick_period=tick_period,
        enable_trace=enable_trace,
        validate_model=validate_model,
        expected_delay_bound=expected_delay_bound,
        batch_sampling=batch_sampling,
        batch_ticks=batch_ticks,
        heartbeat_interval=heartbeat_interval,
        leader_timeout=leader_timeout,
        faults=faults,
    )
    if max_events is None:
        # Churn runs re-elect and heartbeat; give them room beyond the static
        # default before the divergence machinery kicks in.
        max_events = _default_max_events(n) * 4

    def settled() -> bool:
        return injector.quiescent and status.live_leaders == 1

    network.stop_when(settled)
    # The stop predicate is checked before each event but the checked event
    # still fires, so the very event that triggers the stop can falsify the
    # predicate (e.g. a higher-epoch token deposing the last leader).  Resume
    # until the predicate holds *at* the stop, the budget is gone, or the run
    # makes no progress (queue exhausted / horizon reached).
    while True:
        remaining = max_events - network.simulator.events_processed
        if remaining <= 0:
            break
        before = network.simulator.events_processed
        network.run(
            until=max_time, max_events=remaining, raise_on_limit=(on_budget == "raise")
        )
        if settled() or network.simulator.events_processed == before:
            break
    summary = monitor.summary()
    stabilized = settled() and status.leader_uid is not None
    return ChurnElectionResult(
        n=network.n,
        elected=status.decided,
        leader_uid=status.leader_uid,
        election_time=status.election_time,
        messages_total=network.messages_sent(),
        knockout_messages=status.knockouts,
        activations=status.activations,
        ticks=status.ticks,
        hop_overflows=status.hop_overflows,
        events_processed=network.simulator.events_processed,
        seed=network.config.seed,
        a0=a0,
        leaders_elected=status.leaders_elected,
        crashes=int(summary["crashes"]),
        recoveries=int(summary["recoveries"]),
        link_outages=int(summary["link_outages"]),
        disruptions=int(summary["disruptions"]),
        re_elections=int(summary["re_elections"]),
        final_epoch=status.epoch,
        first_election_time=monitor.first_election_time,
        leader_downtime=summary["leader_downtime"],
        time_to_restabilize=summary["mean_time_to_restabilize"],
        max_time_to_restabilize=summary["max_time_to_restabilize"],
        messages_per_re_election=summary["mean_messages_per_re_election"],
        heartbeats=status.heartbeats,
        suspicions=status.suspicions,
        stabilized=stabilized,
    )
