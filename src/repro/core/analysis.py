"""Closed-form reference quantities for the election algorithm.

The brief announcement states its complexity results without proofs (those are
in the full version, arXiv:1003.2084).  What *can* be computed directly from
the announcement is collected here:

* the ring-wide wake-up pressure under the adaptive schedule and why it is
  constant (:func:`wakeup_pressure`, :func:`combined_idle_probability`);
* expected waiting times until the first activation
  (:func:`expected_ticks_until_first_activation`);
* the classical baselines the paper cites: the Omega(n log n) message lower
  bound for asynchronous ring election and the O(n log n) expected cost of
  Itai-Rodeh-style algorithms (:func:`async_ring_message_lower_bound`,
  :func:`itai_rodeh_expected_messages`);
* the retransmission-channel expectation ``1/p`` re-exported from
  :mod:`repro.network.retransmission` for convenience.

These are the reference curves the benchmark tables print next to the measured
values.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

from repro.network.retransmission import expected_delay, expected_transmissions

__all__ = [
    "wakeup_pressure",
    "combined_idle_probability",
    "expected_ticks_until_first_activation",
    "recommended_a0",
    "ring_pressure_per_tick",
    "async_ring_message_lower_bound",
    "itai_rodeh_expected_messages",
    "expected_transmissions",
    "expected_delay",
    "linear_reference",
    "nlogn_reference",
]


def combined_idle_probability(a0: float, d_values: Iterable[int]) -> float:
    """Probability that *no* idle node activates at a given tick.

    With the adaptive schedule the probability that a node with knowledge
    ``d`` stays idle is ``(1 - A0)^d``; assuming independent coins the joint
    probability is ``(1 - A0)^{sum d}``.  The paper's observation is that as
    nodes are knocked out, the surviving idle nodes' ``d`` values grow so that
    ``sum d`` stays (approximately) ``n``, keeping this probability -- and
    hence the ring-wide wake-up pressure -- constant over time.
    """
    if not (0.0 < a0 < 1.0):
        raise ValueError("a0 must be in (0, 1)")
    total = 0
    for d in d_values:
        if d < 1:
            raise ValueError("d values must be >= 1")
        total += d
    return (1.0 - a0) ** total


def wakeup_pressure(a0: float, d_values: Iterable[int]) -> float:
    """Probability that at least one idle node activates at a given tick."""
    return 1.0 - combined_idle_probability(a0, d_values)


def expected_ticks_until_first_activation(a0: float, n: int) -> float:
    """Expected number of ticks before any node activates from the initial state.

    Initially every node has ``d = 1``; per tick the ring activates someone
    with probability ``p = 1 - (1 - A0)^n``, so the waiting time is geometric
    with mean ``1 / p``.
    """
    if n < 1:
        raise ValueError("n must be >= 1")
    if not (0.0 < a0 < 1.0):
        raise ValueError("a0 must be in (0, 1)")
    p = 1.0 - (1.0 - a0) ** n
    return 1.0 / p


def recommended_a0(n: int, activations_per_traversal: float = 1.0) -> float:
    """A good choice of the base activation parameter for a ring of size ``n``.

    The linear-complexity argument needs the ring-wide wake-up pressure to be
    matched to the ring-traversal time: with the adaptive schedule the ring
    activates someone with probability ``1 - (1 - A0)^n`` per tick (because the
    idle nodes' ``d`` values sum to roughly ``n`` at all times), and a message
    needs about ``n`` ticks to travel around the ring.  Choosing

        A0  =  1 - (1 - c/n)^(1/n)       (approximately  c / n**2)

    makes the expected number of fresh activations during one traversal equal
    to ``c`` (= ``activations_per_traversal``), so only O(1) attempts are
    wasted on collisions and both the expected time and the expected number of
    messages stay linear in ``n``.  This is the reproduction's reading of the
    paper's remark that the adaptive schedule keeps "the overall wake-up
    probability ... constant over time"; experiment E3 sweeps ``A0`` and shows
    the optimum sits at this scale.
    """
    if n < 2:
        raise ValueError("n must be >= 2")
    if activations_per_traversal <= 0:
        raise ValueError("activations_per_traversal must be positive")
    per_traversal = min(activations_per_traversal, float(n) * 0.9)
    per_tick = per_traversal / n
    return 1.0 - (1.0 - per_tick) ** (1.0 / n)


def ring_pressure_per_tick(a0: float, n: int) -> float:
    """Ring-wide wake-up probability per tick from the initial configuration.

    Equals ``1 - (1 - A0)^n`` -- by the constant-pressure argument this is also
    (approximately) the wake-up pressure at every later time.
    """
    if n < 1:
        raise ValueError("n must be >= 1")
    if not (0.0 < a0 < 1.0):
        raise ValueError("a0 must be in (0, 1)")
    return 1.0 - (1.0 - a0) ** n


def async_ring_message_lower_bound(n: int) -> float:
    """The Omega(n log n) lower bound reference curve ``n * log2(n)``.

    The paper cites the classical lower bound on message complexity for leader
    election in asynchronous rings; this helper returns the standard reference
    curve used in the comparison tables (the constant is irrelevant for
    order-of-growth comparisons).
    """
    if n < 2:
        raise ValueError("n must be >= 2")
    return n * math.log2(n)


def itai_rodeh_expected_messages(n: int) -> float:
    """Reference curve for Itai-Rodeh-style probabilistic election: ``~ n log2 n``.

    The classic algorithm runs an expected O(log n) phases of O(n) messages
    each; the curve ``n * log2(n)`` is the standard reference shape.
    """
    return async_ring_message_lower_bound(n)


def linear_reference(ns: Sequence[int], anchor_n: int, anchor_value: float) -> list:
    """A linear curve through ``(anchor_n, anchor_value)`` evaluated at ``ns``.

    Used by the benchmark tables to draw "what perfectly linear scaling would
    look like" next to the measured means.
    """
    if anchor_n <= 0:
        raise ValueError("anchor_n must be positive")
    slope = anchor_value / anchor_n
    return [slope * n for n in ns]


def nlogn_reference(ns: Sequence[int], anchor_n: int, anchor_value: float) -> list:
    """An ``n log n`` curve through ``(anchor_n, anchor_value)`` evaluated at ``ns``."""
    if anchor_n < 2:
        raise ValueError("anchor_n must be >= 2")
    scale = anchor_value / (anchor_n * math.log2(anchor_n))
    return [scale * n * math.log2(n) for n in ns]
