"""Activation-probability schedules.

At every local clock tick an *idle* node decides whether to become active.
The paper's algorithm uses the adaptive probability

    P(activate | d) = 1 - (1 - A0)^d

where ``d`` is the node's current hop-count knowledge (``d - 1`` of its
predecessors are known to be passive).  The intuition, quoted from Section 3:
"By taking ``1 - (1 - A0)^d`` as wake-up probability for nodes A, we achieve
that the overall wake-up probability for all nodes stays constant over time.
This ensures that the algorithm has linear time and message complexity."

:class:`ConstantActivation` (always ``A0``) is the naive alternative; the
ablation experiment A1 shows that it loses the constant-pressure property and
with it the linear complexity, which is why the adaptive rule matters.
"""

from __future__ import annotations

import abc

__all__ = ["ActivationSchedule", "AdaptiveActivation", "ConstantActivation"]


def _validate_base(a0: float) -> float:
    if not (0.0 < a0 < 1.0):
        raise ValueError(f"base activation parameter A0 must lie in (0, 1), got {a0}")
    return float(a0)


class ActivationSchedule(abc.ABC):
    """Maps the node's hop knowledge ``d`` to an activation probability.

    Purity contract: :meth:`probability` must be a pure function of ``d``
    (no internal state, no randomness).  The election hot loop relies on it
    -- :class:`~repro.core.election.AbeElectionProgram` caches the returned
    value per ``d`` and only re-queries the schedule when ``d`` changes, so a
    stateful schedule would silently be consulted less often than once per
    tick.
    """

    @abc.abstractmethod
    def probability(self, d: int) -> float:
        """Activation probability for a node with current knowledge ``d >= 1``."""

    def validate_d(self, d: int) -> None:
        """Common argument check shared by the concrete schedules."""
        if d < 1:
            raise ValueError(f"hop knowledge d must be >= 1, got {d}")


class AdaptiveActivation(ActivationSchedule):
    """The paper's schedule: ``P(activate) = 1 - (1 - A0)^d``.

    As nodes learn that more of their predecessors are passive (``d`` grows),
    they become more eager to activate, exactly compensating for the shrinking
    number of idle nodes and keeping the ring-wide wake-up pressure constant.
    """

    def __init__(self, a0: float) -> None:
        self.a0 = _validate_base(a0)
        # Hoisted complement: probability() is (rarely) called from the
        # election hot path when d changes, so the subtraction is done once.
        # Same float arithmetic, bit-identical results.
        self._decay = 1.0 - self.a0

    def probability(self, d: int) -> float:
        self.validate_d(d)
        return 1.0 - self._decay ** d

    def __repr__(self) -> str:
        return f"AdaptiveActivation(a0={self.a0})"


class ConstantActivation(ActivationSchedule):
    """Naive schedule: activate with fixed probability ``A0`` regardless of ``d``.

    Used only as the ablation baseline (experiment A1).  With this schedule
    the ring-wide wake-up pressure decays as nodes become passive, so the last
    surviving candidates dawdle and the expected running time degrades.
    """

    def __init__(self, a0: float) -> None:
        self.a0 = _validate_base(a0)

    def probability(self, d: int) -> float:
        self.validate_d(d)
        return self.a0

    def __repr__(self) -> str:
        return f"ConstantActivation(a0={self.a0})"
