"""High-level API for running ABE ring elections.

:func:`run_election` is the main entry point of the library: it builds an
anonymous unidirectional ABE ring of size ``n``, validates the configuration
against the :class:`~repro.models.abe.ABEModel`, runs the Section 3 election
algorithm and returns an :class:`ElectionResult` with everything the
experiments need (leader, message counts, elapsed time, activations,
knockouts, termination flag).

For finer control -- custom topologies, pre-built networks, ablation switches
-- use :func:`run_election_on_network` or assemble the pieces from
:mod:`repro.core.election` directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Union

from repro.core.activation import ActivationSchedule, AdaptiveActivation
from repro.core.election import AbeElectionProgram, ElectionStatus, NodeState
from repro.core.messages import HopMessagePool
from repro.models.abe import ABEModel
from repro.network.adversary import AdversarialDelay
from repro.network.delays import DelayDistribution, ExponentialDelay
from repro.network.network import Network, NetworkConfig
from repro.network.topology import unidirectional_ring
from repro.sim.clock import ClockDriftModel
from repro.sim.process import SharedTickProcess

__all__ = ["ElectionResult", "run_election", "run_election_on_network"]

#: Election engine implementations selectable via ``run_election(core=...)``.
ELECTION_CORES = ("object", "vector")

DelayModel = Union[DelayDistribution, AdversarialDelay]


@dataclass
class ElectionResult:
    """Outcome and cost metrics of one election run.

    Attributes
    ----------
    n:
        Ring size.
    elected:
        Whether a leader was elected before the run hit its safety limits.
    leader_uid:
        Simulation uid of the elected node (``None`` if not elected).  The uid
        is bookkeeping only -- the algorithm itself is anonymous.
    election_time:
        Simulated real time at which the leader decided (``None`` if not
        elected).
    messages_total:
        Messages sent up to the moment the run stopped.
    knockout_messages:
        Number of idle-node knock-outs (each forwarded knockout message is
        counted once per knocked-out node, following the paper's notion).
    activations:
        Number of idle -> active transitions across all nodes.
    ticks:
        Total local clock ticks consumed.
    hop_overflows:
        Occurrences of a forwarded hop counter exceeding ``n`` (expected 0;
        non-zero values indicate a violated invariant and are surfaced by the
        verification layer).
    events_processed:
        Discrete events executed by the simulator.
    seed:
        Master seed of the run.
    a0:
        Base activation parameter used.
    leaders_elected:
        How many nodes declared themselves leader (must be 1 for a safe run
        with the paper's purging rule).
    """

    n: int
    elected: bool
    leader_uid: Optional[int]
    election_time: Optional[float]
    messages_total: int
    knockout_messages: int
    activations: int
    ticks: int
    hop_overflows: int
    events_processed: int
    seed: int
    a0: float
    leaders_elected: int

    @property
    def messages_per_node(self) -> float:
        """Messages divided by ring size -- the per-node message cost."""
        return self.messages_total / self.n if self.n else 0.0

    @property
    def time_per_node(self) -> Optional[float]:
        """Election time divided by ring size (``None`` if not elected)."""
        if self.election_time is None or self.n == 0:
            return None
        return self.election_time / self.n


def _default_max_events(n: int) -> int:
    # Generous: linear expected cost, so this cap is orders of magnitude above
    # the typical event count and only guards against pathological seeds.
    return 500_000 + 50_000 * n


def build_election_network(
    n: int,
    *,
    a0: float = 0.3,
    delay: Optional[DelayModel] = None,
    seed: int = 0,
    schedule: Optional[ActivationSchedule] = None,
    clock_bounds: tuple = (1.0, 1.0),
    clock_drift_factory: Optional[Callable[[int], ClockDriftModel]] = None,
    processing_delay: Optional[DelayDistribution] = None,
    fifo: bool = False,
    purge_at_active: bool = True,
    tick_period: float = 1.0,
    enable_trace: bool = False,
    validate_model: bool = True,
    expected_delay_bound: Optional[float] = None,
    batch_sampling: bool = True,
    batch_ticks: bool = True,
) -> tuple:
    """Construct the ring network and shared status for one election run.

    Returns ``(network, status)``.  Exposed separately from
    :func:`run_election` so tests and examples can inspect or instrument the
    network before running it.

    ``batch_ticks`` drives every node's clock ticks from one
    :class:`~repro.sim.process.SharedTickProcess`, which buckets all ticks
    landing at the same instant behind a single heap entry.  Tick *times*
    are computed per node from its own (possibly drifting) clock, exactly
    like the per-node layout, so the mode composes with ``clock_bounds`` and
    ``clock_drift_factory``: drift-free unit-rate clocks share every instant
    (one event per activation round), drifting clocks mostly occupy distinct
    instants (never worse than per-node ticking).  Election outcomes,
    message counts, times and metric counters are preserved for continuous
    delay models (a delivery then never ties a tick instant, which is the
    only way the coarser event granularity could reorder work); the
    engine-level ``events_processed`` necessarily differs, so compare that
    figure within one mode, as with ``batch_sampling``.
    """
    if n < 2:
        raise ValueError(f"the election algorithm needs a ring of size n >= 2, got {n}")
    delay_model: DelayModel = delay if delay is not None else ExponentialDelay(mean=1.0)
    schedule = schedule if schedule is not None else AdaptiveActivation(a0)
    status = ElectionStatus()

    config = NetworkConfig(
        topology=unidirectional_ring(n),
        delay_model=delay_model,
        seed=seed,
        fifo=fifo,
        processing_delay=processing_delay,
        clock_bounds=clock_bounds,
        clock_drift_factory=clock_drift_factory,
        size_known=True,
        enable_trace=enable_trace,
        batch_sampling=batch_sampling,
    )

    if validate_model:
        delta = expected_delay_bound
        if delta is None:
            mean = delay_model.mean()
            delta = mean if mean > 0 else 1.0
        gamma = processing_delay.mean() if processing_delay is not None else 0.0
        model = ABEModel(
            expected_delay_bound=delta,
            s_low=clock_bounds[0],
            s_high=clock_bounds[1],
            expected_processing_bound=gamma,
        )
        model.validate_config(config)

    hop_pool = HopMessagePool()

    def program_factory(uid: int) -> AbeElectionProgram:
        return AbeElectionProgram(
            status=status,
            schedule=schedule,
            tick_period=tick_period,
            purge_at_active=purge_at_active,
            hop_pool=hop_pool,
        )

    network = Network(config, program_factory)
    # Ring channels carry only HopMessages: let deliveries hand consumed,
    # provably-unobservable messages back to the shared pool (the channel's
    # exact refcount guard vetoes the recycle whenever a tracer, test or
    # wrapper still holds the message or its envelope).
    for channel in network.channels:
        channel.payload_recycler = hop_pool.release
    if batch_ticks:
        driver = SharedTickProcess(
            network.simulator, period=tick_period, expected_members=n
        )
        for node in network.nodes:
            node.program.tick_driver = driver
    return network, status


def run_election_on_network(
    network: Network,
    status: ElectionStatus,
    *,
    max_events: Optional[int] = None,
    max_time: Optional[float] = None,
    a0: float = 0.3,
    on_budget: str = "stop",
) -> ElectionResult:
    """Run an already-built election network to completion (or to its limits).

    ``on_budget`` chooses what budget exhaustion means: ``"stop"`` (default)
    truncates and returns a result with ``elected=False``, preserving the
    historical semantics; ``"raise"`` arms the divergence watchdog so a run
    that exhausts ``max_events``/``max_time`` without deciding raises
    :class:`~repro.sim.engine.SimulationDiverged` -- a decided election never
    raises, whatever the budgets.
    """
    if on_budget not in ("stop", "raise"):
        raise ValueError(f"on_budget must be 'stop' or 'raise', got {on_budget!r}")
    if max_events is None:
        max_events = _default_max_events(network.n)
    network.stop_when(lambda: status.decided)
    network.run(
        until=max_time, max_events=max_events, raise_on_limit=(on_budget == "raise")
    )
    return ElectionResult(
        n=network.n,
        elected=status.decided,
        leader_uid=status.leader_uid,
        election_time=status.election_time,
        messages_total=network.messages_sent(),
        knockout_messages=status.knockouts,
        activations=status.activations,
        ticks=status.ticks,
        hop_overflows=status.hop_overflows,
        events_processed=network.simulator.events_processed,
        seed=network.config.seed,
        a0=a0,
        leaders_elected=status.leaders_elected,
    )


def run_election(
    n: int,
    *,
    a0: float = 0.3,
    delay: Optional[DelayModel] = None,
    seed: int = 0,
    schedule: Optional[ActivationSchedule] = None,
    clock_bounds: tuple = (1.0, 1.0),
    clock_drift_factory: Optional[Callable[[int], ClockDriftModel]] = None,
    processing_delay: Optional[DelayDistribution] = None,
    fifo: bool = False,
    purge_at_active: bool = True,
    tick_period: float = 1.0,
    enable_trace: bool = False,
    validate_model: bool = True,
    expected_delay_bound: Optional[float] = None,
    batch_sampling: bool = True,
    batch_ticks: bool = True,
    max_events: Optional[int] = None,
    max_time: Optional[float] = None,
    on_budget: str = "stop",
    core: str = "object",
) -> ElectionResult:
    """Elect a leader on an anonymous unidirectional ABE ring of size ``n``.

    Parameters mirror the paper's knobs: the base activation parameter ``a0``,
    the per-channel delay model (default: exponential with mean 1, the
    canonical ABE channel), the clock-rate bounds, and the expected local
    processing delay.  See :class:`ElectionResult` for what is measured.

    ``core`` selects the engine: ``"object"`` is the per-node reference
    implementation; ``"vector"`` runs the same state machine on the columnar
    :class:`~repro.core.vector_core.VectorRingElection` engine (own
    seed-deterministic numpy streams, so a *different sample path* per seed
    -- see the stream-migration note in :mod:`repro.core.vector_core`).
    The vector core rejects per-node clock knobs (``clock_bounds`` other
    than ``(1, 1)``, ``clock_drift_factory``) and ``enable_trace``;
    ``batch_sampling``/``batch_ticks`` are object-core performance toggles
    and are ignored there (vectorization subsumes both).

    Examples
    --------
    >>> result = run_election(8, a0=0.3, seed=1)
    >>> result.elected
    True
    >>> 0 <= result.leader_uid < 8
    True
    """
    if core not in ELECTION_CORES:
        raise ValueError(f"core must be one of {ELECTION_CORES}, got {core!r}")
    if core == "vector":
        if tuple(clock_bounds) != (1.0, 1.0):
            raise ValueError(
                "core='vector' shares one activation round across the ring and "
                "does not support clock_bounds != (1, 1); use core='object'"
            )
        if clock_drift_factory is not None:
            raise ValueError(
                "core='vector' does not support clock_drift_factory; "
                "use core='object'"
            )
        if enable_trace:
            raise ValueError(
                "core='vector' has no per-event trace stream; use core='object'"
            )
        # Imported lazily: vector_core imports ElectionResult from this module.
        from repro.core.vector_core import run_vector_election

        return run_vector_election(
            n,
            a0=a0,
            delay=delay,
            seed=seed,
            schedule=schedule,
            fifo=fifo,
            purge_at_active=purge_at_active,
            tick_period=tick_period,
            processing_delay=processing_delay,
            validate_model=validate_model,
            expected_delay_bound=expected_delay_bound,
            max_events=max_events,
            max_time=max_time,
            on_budget=on_budget,
        )
    network, status = build_election_network(
        n,
        a0=a0,
        delay=delay,
        seed=seed,
        schedule=schedule,
        clock_bounds=clock_bounds,
        clock_drift_factory=clock_drift_factory,
        processing_delay=processing_delay,
        fifo=fifo,
        purge_at_active=purge_at_active,
        tick_period=tick_period,
        enable_trace=enable_trace,
        validate_model=validate_model,
        expected_delay_bound=expected_delay_bound,
        batch_sampling=batch_sampling,
        batch_ticks=batch_ticks,
    )
    return run_election_on_network(
        network,
        status,
        max_events=max_events,
        max_time=max_time,
        a0=a0,
        on_budget=on_budget,
    )
