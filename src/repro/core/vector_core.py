"""Vectorized columnar election engine (``core="vector"``).

The object engine simulates one Python object per node and one event per
clock tick; this module simulates the same Section 3 election with *columnar*
state: node status codes, hop knowledge ``d``, cached activation
probabilities and the compacted set of still-ticking nodes are flat numpy
arrays, ring adjacency is index arithmetic (``successor = (i + 1) % n``) and
pending message arrivals live in a :class:`~repro.sim.simcore.SimCore`
columnar store (batched activation sends use the columns, scalar forwards
ride inline heap tuples).  Each activation round is one vectorized step -- a
slice of a block-prefetched uniform vector compared against the per-node
activation probabilities in one shot -- instead of ``n`` per-node callback
events, and a round's outgoing ``<1>`` messages sample their channel delays
in one :meth:`~repro.network.delays.DelayDistribution.sample_array` call.

Semantics contract (vs the object core)
---------------------------------------
The state machine is the object core's, rule for rule: idle nodes flip the
``1 - (1 - A0)^d`` coin every local tick and send ``<1>`` on activation;
a received ``<hop>`` raises ``d``, knocks idle nodes passive (forwarding
``<d + 1>``), is forwarded by passive nodes, crowns an active node iff
``hop == n`` and otherwise knocks it back to idle (purging unless
``purge_at_active=False``), and leaders purge residuals.  Messages are
counted at send, knockouts per knocked-out node, ticks once per idle or
active node per round, and hop counters above ``n`` are tallied as
``hop_overflows`` -- so every :class:`~repro.core.runner.ElectionResult`
field keeps its object-core meaning.

**Stream migration.** Like the PR 4 ``batch_sampling``/``batch_ticks``
migrations documented in ``tests/harness/differential.py``, the vector core
draws its randomness from its *own* seed-deterministic numpy streams
(``vector/coins``, ``vector/delays``, ``vector/processing``,
``vector/loss`` via :meth:`~repro.sim.rng.RandomSource.numpy_stream`)
instead of the object core's per-node/per-channel ``random.Random``
streams.  A vector run is therefore bit-reproducible per seed but follows a
*different sample path* than the object run of the same seed: the two cores
are compared distributionally and on invariants (unique leader, agreement,
conservation laws -- see ``tests/test_property_vector_core.py``), never
event-for-event.  The object engine remains the differential reference and
its 17 golden fingerprints are untouched.

Engine-level accounting (``events_processed``) counts activation rounds plus
message deliveries -- necessarily different from the object engine's event
granularity, exactly as ``batch_ticks`` already documents: compare that
figure within one core.

Two object-core knobs are out of scope and rejected loudly rather than
silently approximated: per-node clock drift (``clock_drift_factory`` /
``clock_bounds != (1, 1)``) would break the shared-round structure the
vectorization relies on, and event tracing has no per-event stream here.

Deadlock is detected eagerly: with no pending arrivals and no idle node left
(for example a lone active node whose crowning message was dropped by a loss
fault), no future coin flip or delivery can change the state, so the run
returns ``elected=False`` immediately -- the object core burns ticks until
its event budget instead; ``on_budget="raise"`` raises
:class:`~repro.sim.engine.SimulationDiverged` in both cores.
"""

from __future__ import annotations

import heapq
import math
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.activation import ActivationSchedule, AdaptiveActivation
from repro.core.runner import ElectionResult, _default_max_events
from repro.models.abe import ABEModel
from repro.network.delays import DelayDistribution
from repro.sim.engine import SimulationDiverged
from repro.sim.rng import RandomSource
from repro.sim.simcore import SimCore

__all__ = ["VectorRingElection", "run_vector_election"]

# Status codes (int8 column): the object core's NodeState plus a crashed
# sentinel.  The still-ticking set is exactly ``status <= _ACTIVE``.
_IDLE = 0
_ACTIVE = 1
_PASSIVE = 2
_LEADER = 3
_CRASHED = 4


class _DelayTape(object):
    """Block-prefetched draws from one distribution on one numpy stream.

    ``sample_array`` distributions refill in vectorized blocks; anything else
    falls back to per-draw scalar sampling through a ``random.Random`` stream
    derived from the same master seed (still deterministic, never silently
    wrong -- just slower).
    """

    __slots__ = ("_distribution", "_gen", "_scalar_rng", "_block", "_index", "_block_size")

    def __init__(self, distribution, gen, scalar_rng, block_size: int = 4096) -> None:
        self._distribution = distribution
        self._gen = gen
        self._scalar_rng = scalar_rng
        self._block_size = block_size
        self._block = None
        self._index = 0
        if distribution.supports_vectorized():
            self._block = np.empty(0, dtype=np.float64)

    def _refill(self, at_least: int) -> None:
        count = max(self._block_size, at_least)
        block = np.asarray(
            self._distribution.sample_array(self._gen, count), dtype=np.float64
        )
        if block.min() < 0:
            raise ValueError(
                f"delay model {self._distribution!r} produced a negative delay"
            )
        leftover = self._block[self._index :]
        self._block = np.concatenate([leftover, block]) if leftover.size else block
        self._index = 0

    def take(self, count: int) -> np.ndarray:
        """The next ``count`` draws as a float array."""
        if self._block is None:
            sample = self._distribution.sample
            rng = self._scalar_rng
            return np.asarray([sample(rng) for _ in range(count)], dtype=np.float64)
        if self._index + count > self._block.size:
            self._refill(count)
        start = self._index
        self._index = start + count
        return self._block[start : self._index]

    def one(self) -> float:
        if self._block is None:
            return self._distribution.sample(self._scalar_rng)
        index = self._index
        if index >= self._block.size:
            self._refill(1)
            index = 0
        self._index = index + 1
        return float(self._block[index])


class VectorRingElection:
    """One election on an anonymous unidirectional ABE ring, columnar state.

    Parameters mirror :func:`repro.core.runner.run_election` where supported;
    fault injection is first-class instead of a network wrapper:

    ``message_loss``
        Per-message drop probability applied at delivery time, after the
        send has been counted (the sender cannot tell) -- the vector
        counterpart of :class:`~repro.network.faults.MessageLossFault` on
        every ring channel.
    ``crashes``
        ``(node_uid, crash_time)`` pairs: from ``crash_time`` on the node
        neither ticks nor processes deliveries (deliveries are swallowed and
        counted), the vector counterpart of
        :class:`~repro.network.faults.CrashStopFault`.
    """

    def __init__(
        self,
        n: int,
        *,
        a0: float = 0.3,
        delay: Optional[DelayDistribution] = None,
        seed: int = 0,
        schedule: Optional[ActivationSchedule] = None,
        fifo: bool = False,
        purge_at_active: bool = True,
        tick_period: float = 1.0,
        processing_delay: Optional[DelayDistribution] = None,
        message_loss: float = 0.0,
        crashes: Sequence[Tuple[int, float]] = (),
        validate_model: bool = True,
        expected_delay_bound: Optional[float] = None,
    ) -> None:
        if n < 2:
            raise ValueError(
                f"the election algorithm needs a ring of size n >= 2, got {n}"
            )
        if tick_period <= 0:
            raise ValueError("tick_period must be positive")
        if not (0.0 <= message_loss < 1.0):
            raise ValueError("message_loss must be in [0, 1)")
        from repro.network.delays import ExponentialDelay  # match runner default

        delay_model = delay if delay is not None else ExponentialDelay(mean=1.0)
        if not isinstance(delay_model, DelayDistribution):
            raise ValueError(
                "core='vector' needs an iid DelayDistribution; adversarial or "
                "per-channel delay models need the object core"
            )
        self.n = int(n)
        self.a0 = float(a0)
        self.seed = int(seed)
        self.delay_model = delay_model
        self.schedule = schedule if schedule is not None else AdaptiveActivation(a0)
        self.fifo = bool(fifo)
        self.purge_at_active = bool(purge_at_active)
        self.tick_period = float(tick_period)
        self.processing_model = processing_delay
        self.message_loss = float(message_loss)
        self.crashes = sorted(
            ((float(when), int(uid)) for uid, when in crashes)
        )
        for _when, uid in self.crashes:
            if not (0 <= uid < n):
                raise ValueError(f"node {uid} does not exist")

        if validate_model:
            delta = expected_delay_bound
            mean = delay_model.mean()
            if delta is None:
                delta = mean if mean > 0 else 1.0
            gamma = processing_delay.mean() if processing_delay is not None else 0.0
            model = ABEModel(
                expected_delay_bound=delta,
                s_low=1.0,
                s_high=1.0,
                expected_processing_bound=gamma,
            )
            model.validate_delay(delay_model)
            if processing_delay is not None:
                model.validate_processing(processing_delay)

        # -------------------------------------------------- columnar state
        self._status = np.zeros(n, dtype=np.int8)
        self._d = np.ones(n, dtype=np.int64)
        p1 = self.schedule.probability(1)
        # Zero-gated probability column: a node's activation probability
        # while idle, 0.0 otherwise.  The round can then compare one uniform
        # vector against this column directly -- no status indexing on the
        # per-round hot path; non-idle members simply never win the flip.
        self._prob = np.full(n, p1, dtype=np.float64)
        self._prob_cache = {1: p1}
        # Compacted tick set (idle + active); shrink-only between compactions
        # (idle->passive, active->leader and crashes are permanent exits,
        # active->idle stays in the set), so stale entries are filtered
        # lazily each round.  The scalar counts are maintained at every
        # transition so the run loop's liveness checks are O(1).
        self._tick_ids = np.arange(n, dtype=np.intp)
        self._idle_count = n
        self._active_count = 0

        source = RandomSource(seed)
        self._coins = source.numpy_stream("vector/coins")
        self._delays = _DelayTape(
            delay_model, source.numpy_stream("vector/delays"), source.stream("vector/delays")
        )
        self._processing = (
            _DelayTape(
                processing_delay,
                source.numpy_stream("vector/processing"),
                source.stream("vector/processing"),
            )
            if processing_delay is not None
            else None
        )
        self._loss_gen = (
            source.numpy_stream("vector/loss") if message_loss > 0.0 else None
        )
        self._loss_block: Optional[np.ndarray] = None
        self._loss_index = 0

        self._core = SimCore(capacity=max(64, min(n, 65536)))
        # Per-channel FIFO floors: channel i is the link i -> (i + 1) % n.
        self._fifo_floor = np.zeros(n, dtype=np.float64) if fifo else None

        # ------------------------------------------------------- counters
        self.now = 0.0
        self.ticks = 0
        self.activations = 0
        self.knockouts = 0
        self.hop_overflows = 0
        self.messages_total = 0
        self.rounds = 0
        self.deliveries = 0
        self.messages_dropped = 0
        self.deliveries_to_crashed = 0
        self.nodes_crashed: List[int] = []
        self.leader_uid: Optional[int] = None
        self.election_time: Optional[float] = None
        self.leaders_elected = 0

    # ---------------------------------------------------------------- helpers

    @property
    def decided(self) -> bool:
        return self.leader_uid is not None

    def _probability_for(self, d: int) -> float:
        cache = self._prob_cache
        probability = cache.get(d)
        if probability is None:
            probability = self.schedule.probability(d)
            cache[d] = probability
        return probability

    def _apply_crashes(self, up_to: float) -> None:
        crashes = self.crashes
        while crashes and crashes[0][0] <= up_to:
            _when, uid = crashes.pop(0)
            state = self._status[uid]
            if state != _CRASHED:
                if state == _IDLE:
                    self._idle_count -= 1
                elif state == _ACTIVE:
                    self._active_count -= 1
                self._status[uid] = _CRASHED
                self._prob[uid] = 0.0
                self.nodes_crashed.append(uid)

    # ------------------------------------------------------------------ round

    def _activate_batch(self, activated: np.ndarray, now: float) -> None:
        """Idle -> active for a whole round's worth of nodes: send ``<1>``s."""
        count = int(activated.size)
        self._status[activated] = _ACTIVE
        self._prob[activated] = 0.0  # active nodes do not flip coins
        self._idle_count -= count
        self._active_count += count
        self.activations += count
        self.messages_total += count
        arrivals = now + self._delays.take(count)
        if self._fifo_floor is not None:
            floor = self._fifo_floor
            np.maximum(arrivals, floor[activated], out=arrivals)
            floor[activated] = arrivals
        if self._processing is not None:
            arrivals = arrivals + self._processing.take(count)
        dst = activated + 1
        dst[dst == self.n] = 0
        self._core.push_batch(arrivals, 1, dst)

    # -------------------------------------------------------------------- run

    def run(
        self,
        *,
        max_events: Optional[int] = None,
        max_time: Optional[float] = None,
        on_budget: str = "stop",
    ) -> ElectionResult:
        """Run to a decision, quiescence, or the event/time budget.

        The loop body is deliberately inlined: the receive rules, the scalar
        forward path and the per-round coin comparison all run on hoisted
        locals (plain-list mirrors of the scalar-accessed columns, prefetched
        uniform/delay blocks, inline heap tuples for forwarded messages).
        The vectorized batch paths -- :meth:`_activate_batch` and lazy tick-set
        compaction -- still operate on the numpy columns; shared counters are
        synced around those calls.
        """
        if on_budget not in ("stop", "raise"):
            raise ValueError(
                f"on_budget must be 'stop' or 'raise', got {on_budget!r}"
            )
        if max_events is None:
            max_events = _default_max_events(self.n)
        limit_time = math.inf if max_time is None else float(max_time)
        n = self.n
        core = self._core
        heap = core._heap
        hop_col = core._hop
        dst_col = core._dst
        free_list = core._free
        heappop = heapq.heappop
        heappush = heapq.heappush
        seq = core._seq
        status_col = self._status
        prob = self._prob
        prob_for = self._probability_for
        # Plain-list mirrors for the scalar-accessed columns: delivery-time
        # reads/writes are element-wise, where list indexing beats numpy
        # scalar indexing severalfold.  ``status_col`` is kept in sync on
        # every transition (the vectorized batch paths read it); ``_d`` has
        # no vectorized reader mid-run and is written back at exit.
        status = status_col.tolist()
        d = self._d.tolist()
        purge = self.purge_at_active
        loss = self.message_loss
        fifo_floor = self._fifo_floor
        processing = self._processing
        crashes = self.crashes
        period = self.tick_period
        delays = self._delays
        delays_one = delays.one
        # Block-prefetched scalar delay draws (vectorized distributions only):
        # `take(...).tolist()` keeps the tape position shared with the batch
        # path while the hot loop reads plain floats.
        fast_delay = delays._block is not None
        delay_list: List[float] = []
        delay_index = 0
        delay_len = 0
        coin_random = self._coins.random
        coin_block = coin_random(4096)
        coin_size = 4096
        coin_index = 0
        loss_random = self._loss_gen.random if self._loss_gen is not None else None
        loss_list: List[float] = []
        loss_index = 0
        loss_len = 0
        idle_count = self._idle_count
        active_count = self._active_count
        ticks = self.ticks
        rounds = self.rounds
        deliveries = self.deliveries
        deliveries_start = deliveries
        messages_total = self.messages_total
        knockouts = self.knockouts
        hop_overflows = self.hop_overflows
        messages_dropped = self.messages_dropped
        deliveries_to_crashed = self.deliveries_to_crashed
        scalar_sends = 0
        round_index = 1
        next_round: float = period
        events = 0
        truncated = False
        now = self.now
        while True:
            if heap:
                arrival = heap[0][0]
                if idle_count + active_count == 0 or arrival < next_round:
                    # Shrink-only tick set: with no idle or active node left
                    # no future round can change anything, so arrivals drain
                    # unconditionally; otherwise arrivals strictly before the
                    # next round go first (rounds win ties).
                    when = arrival
                    is_round = False
                else:
                    when = next_round
                    is_round = True
            elif idle_count + active_count == 0:
                # Quiescent: no pending arrivals and nobody left to tick.
                break
            else:
                when = next_round
                is_round = True
            if when > limit_time:
                now = limit_time
                truncated = True
                break
            if events >= max_events:
                truncated = True
                break
            if crashes and crashes[0][0] <= when:
                self._idle_count = idle_count
                self._active_count = active_count
                already = len(self.nodes_crashed)
                self._apply_crashes(when)
                for uid in self.nodes_crashed[already:]:
                    status[uid] = _CRASHED
                idle_count = self._idle_count
                active_count = self._active_count
            now = when
            events += 1
            if is_round:
                # One shared activation round: every live idle/active node
                # ticks; one prefetched-uniform slice for the whole bucket is
                # compared against the zero-gated probability column.
                rounds += 1
                ids = self._tick_ids
                live = idle_count + active_count
                if ids.size > 2 * live:
                    # Lazy compaction: members that left the set permanently
                    # (knocked out, crowned, crashed) are dropped once they
                    # are the majority.  Stale entries are harmless meanwhile
                    # -- their gated probability is 0, so they can never win
                    # the flip -- and ticks are counted from the exact live
                    # tally, not the array size.
                    ids = ids[status_col[ids] <= _ACTIVE]
                    self._tick_ids = ids
                ticks += live
                size = ids.size
                if coin_index + size > coin_size:
                    coin_block = coin_random(size if size > 4096 else 4096)
                    coin_size = coin_block.size
                    coin_index = 0
                draws = coin_block[coin_index : coin_index + size]
                coin_index += size
                hits = draws < prob[ids]
                if np.count_nonzero(hits):
                    self._idle_count = idle_count
                    self._active_count = active_count
                    self.messages_total = messages_total
                    core._seq = seq
                    activated = ids[hits]
                    self._activate_batch(activated, when)
                    for uid in activated.tolist():
                        status[uid] = _ACTIVE
                    idle_count = self._idle_count
                    active_count = self._active_count
                    messages_total = self.messages_total
                    seq = core._seq
                round_index += 1
                next_round = round_index * period
                if not heap and idle_count == 0:
                    # Without idle nodes or in-flight messages the
                    # configuration is frozen (any active survivors would
                    # tick forever without ever electing).  Classify below
                    # instead of burning the budget.
                    break
                continue
            # ------------------------------------------------- delivery
            deliveries += 1
            entry = heappop(heap)
            if len(entry) == 4:
                hop = entry[2]
                dst = entry[3]
            else:
                slot = entry[2]
                hop = hop_col[slot]
                dst = dst_col[slot]
                free_list.append(slot)
            if loss:
                # Delivery-time loss coin from the dedicated loss stream,
                # drawn before the crashed check (the object core's
                # MessageLossFault wraps the channel, outside the node).
                if loss_index >= loss_len:
                    loss_list = loss_random(1024).tolist()
                    loss_len = 1024
                    loss_index = 0
                drawn = loss_list[loss_index]
                loss_index += 1
                if drawn < loss:
                    messages_dropped += 1
                    continue
            state = status[dst]
            if state == _PASSIVE:
                # Rule (ii): forward <d + 1>.
                dv = d[dst]
                if hop > dv:
                    d[dst] = hop
                    dv = hop
                new_hop = dv + 1
            elif state == _IDLE:
                # Rule (i): knocked out -- passive, forward <d + 1>.
                dv = d[dst]
                if hop > dv:
                    d[dst] = hop
                    dv = hop
                status[dst] = _PASSIVE
                status_col[dst] = _PASSIVE
                prob[dst] = 0.0
                idle_count -= 1
                knockouts += 1
                new_hop = dv + 1
            elif state == _ACTIVE:
                # Rule (iii): crowned on a full traversal, else back to idle.
                if hop == n:
                    status[dst] = _LEADER
                    status_col[dst] = _LEADER
                    active_count -= 1
                    self.leader_uid = dst
                    self.election_time = when
                    self.leaders_elected += 1
                    break
                dv = d[dst]
                if hop > dv:
                    d[dst] = hop
                    dv = hop
                status[dst] = _IDLE
                status_col[dst] = _IDLE
                # Back in the coin-flipping set: restore the gated
                # probability from the (possibly just-raised) hop knowledge.
                prob[dst] = prob_for(dv)
                active_count -= 1
                idle_count += 1
                if purge:
                    continue
                # Ablation A2: forward instead of purging.
                new_hop = dv + 1
            elif state == _CRASHED:
                deliveries_to_crashed += 1
                continue
            else:
                # Leaders purge residuals: nothing to do.
                continue
            # --------------------------------------------- scalar forward
            if new_hop > n:
                hop_overflows += 1
            messages_total += 1
            scalar_sends += 1
            if fast_delay:
                if delay_index >= delay_len:
                    delay_list = delays.take(2048).tolist()
                    delay_len = 2048
                    delay_index = 0
                arrival2 = when + delay_list[delay_index]
                delay_index += 1
            else:
                arrival2 = when + delays_one()
            succ = dst + 1
            if succ == n:
                succ = 0
            if fifo_floor is not None:
                floor_value = fifo_floor[dst]
                if arrival2 < floor_value:
                    arrival2 = floor_value
                fifo_floor[dst] = arrival2
            if processing is not None:
                arrival2 += processing.one()
            heappush(heap, (arrival2, seq, new_hop, succ))
            seq += 1
        # ------------------------------------------------------ write-back
        self.now = now
        self._idle_count = idle_count
        self._active_count = active_count
        self.ticks = ticks
        self.rounds = rounds
        self.deliveries = deliveries
        self.messages_total = messages_total
        self.knockouts = knockouts
        self.hop_overflows = hop_overflows
        self.messages_dropped = messages_dropped
        self.deliveries_to_crashed = deliveries_to_crashed
        self._d[:] = d
        core._seq = seq
        core.pushed += scalar_sends
        core.popped += deliveries - deliveries_start
        if not self.decided:
            if not truncated and self._stuck_live():
                # A lone active node waiting for a message that will never
                # come: the object core would spin ticks to budget exhaustion.
                truncated = True
            if truncated and on_budget == "raise":
                raise SimulationDiverged(
                    f"election on n={self.n} exhausted its budget undecided "
                    f"(events={events}, now={self.now})",
                    events_processed=events,
                    now=self.now,
                    max_events=max_events,
                    max_time=max_time,
                )
        return ElectionResult(
            n=self.n,
            elected=self.decided,
            leader_uid=self.leader_uid,
            election_time=self.election_time,
            messages_total=self.messages_total,
            knockout_messages=self.knockouts,
            activations=self.activations,
            ticks=self.ticks,
            hop_overflows=self.hop_overflows,
            events_processed=events,
            seed=self.seed,
            a0=self.a0,
            leaders_elected=self.leaders_elected,
        )

    def _stuck_live(self) -> bool:
        """Live-but-frozen: ticking nodes exist, yet no progress is possible."""
        return (
            len(self._core) == 0
            and self._idle_count == 0
            and self._active_count > 0
        )


def run_vector_election(
    n: int,
    *,
    a0: float = 0.3,
    delay: Optional[DelayDistribution] = None,
    seed: int = 0,
    schedule: Optional[ActivationSchedule] = None,
    fifo: bool = False,
    purge_at_active: bool = True,
    tick_period: float = 1.0,
    processing_delay: Optional[DelayDistribution] = None,
    message_loss: float = 0.0,
    crashes: Sequence[Tuple[int, float]] = (),
    validate_model: bool = True,
    expected_delay_bound: Optional[float] = None,
    max_events: Optional[int] = None,
    max_time: Optional[float] = None,
    on_budget: str = "stop",
) -> ElectionResult:
    """One-call vector-core election, mirroring :func:`~repro.core.runner.run_election`."""
    election = VectorRingElection(
        n,
        a0=a0,
        delay=delay,
        seed=seed,
        schedule=schedule,
        fifo=fifo,
        purge_at_active=purge_at_active,
        tick_period=tick_period,
        processing_delay=processing_delay,
        message_loss=message_loss,
        crashes=crashes,
        validate_model=validate_model,
        expected_delay_bound=expected_delay_bound,
    )
    return election.run(max_events=max_events, max_time=max_time, on_budget=on_budget)
