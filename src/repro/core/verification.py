"""Execution checkers for the election algorithm's correctness obligations.

DESIGN.md lists the invariants; this module checks them against a finished
run.  The checks are used three ways:

* unit/integration tests call :func:`verify_election` after every simulated
  run;
* hypothesis property tests call it for randomly generated configurations;
* the experiment harness calls it in "audit" mode so that a reported table is
  backed by verified executions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.core.election import AbeElectionProgram, ElectionStatus, NodeState
from repro.core.runner import ElectionResult
from repro.network.network import Network

__all__ = ["ElectionInvariantError", "VerificationReport", "verify_election"]


class ElectionInvariantError(AssertionError):
    """Raised when a finished election run violates a correctness obligation."""


@dataclass
class VerificationReport:
    """Outcome of checking one run against the invariants."""

    violations: List[str] = field(default_factory=list)
    checks_performed: int = 0

    @property
    def ok(self) -> bool:
        """Whether no violation was found."""
        return not self.violations

    def add(self, message: str) -> None:
        """Record a violation."""
        self.violations.append(message)

    def raise_if_failed(self) -> None:
        """Raise :class:`ElectionInvariantError` if any violation was recorded."""
        if self.violations:
            raise ElectionInvariantError("; ".join(self.violations))


def verify_election(
    network: Network,
    result: Optional[ElectionResult] = None,
    *,
    require_elected: bool = True,
    strict: bool = True,
) -> VerificationReport:
    """Check a finished election run against the safety/liveness obligations.

    Parameters
    ----------
    network:
        The network the election ran on (its programs must be
        :class:`~repro.core.election.AbeElectionProgram` instances).
    result:
        The :class:`~repro.core.runner.ElectionResult`, if available; enables
        the cross-checks between result fields and node states.
    require_elected:
        Whether failing to elect a leader counts as a violation (liveness).
        Experiments exploring deliberately broken configurations (e.g. the
        no-purging ablation) set this to ``False``.
    strict:
        If ``True``, raise :class:`ElectionInvariantError` on any violation;
        otherwise return the report and let the caller decide.
    """
    report = VerificationReport()
    programs = [p for p in network.programs() if isinstance(p, AbeElectionProgram)]
    if not programs:
        report.add("network contains no AbeElectionProgram nodes")
        if strict:
            report.raise_if_failed()
        return report

    leaders = [p for p in programs if p.state is NodeState.LEADER]
    report.checks_performed += 1
    if len(leaders) > 1:
        report.add(
            f"safety violated: {len(leaders)} nodes are in the LEADER state "
            f"(uids {[p.node.uid for p in leaders if p.node]})"
        )

    report.checks_performed += 1
    if require_elected and not leaders:
        report.add("liveness violated: no node reached the LEADER state")

    # Status / result consistency ------------------------------------------------
    status: Optional[ElectionStatus] = programs[0].status if programs else None
    if status is not None:
        report.checks_performed += 1
        if status.leaders_elected > 1:
            report.add(
                f"safety violated: {status.leaders_elected} leader declarations recorded"
            )
        report.checks_performed += 1
        if status.decided and not leaders:
            report.add("status reports a leader but no node is in the LEADER state")
        report.checks_performed += 1
        if status.hop_overflows > 0:
            report.add(
                f"hop-counter invariant violated: {status.hop_overflows} forwards "
                "exceeded the ring size"
            )

    if result is not None:
        report.checks_performed += 1
        if result.elected and leaders and result.leader_uid is not None:
            leader_uids = {p.node.uid for p in leaders if p.node is not None}
            if result.leader_uid not in leader_uids:
                report.add(
                    f"result.leader_uid={result.leader_uid} does not match the node(s) "
                    f"in LEADER state {sorted(leader_uids)}"
                )
        report.checks_performed += 1
        if result.leaders_elected > 1:
            report.add(
                f"safety violated: result records {result.leaders_elected} leader elections"
            )

    # Post-election state structure ---------------------------------------------
    if leaders:
        report.checks_performed += 1
        others = [p for p in programs if p not in leaders]
        bad_states = [
            p for p in others if p.state not in (NodeState.IDLE, NodeState.PASSIVE)
        ]
        if bad_states:
            report.add(
                "after the election every non-leader must be idle or passive; found "
                f"{[str(p.state) for p in bad_states]}"
            )

    # Message accounting ----------------------------------------------------------
    report.checks_performed += 1
    sent = network.messages_sent()
    delivered = network.messages_delivered()
    if delivered > sent:
        report.add(
            f"message accounting violated: {delivered} deliveries exceed {sent} sends"
        )

    if strict:
        report.raise_if_failed()
    return report
