"""The paper's primary contribution: ABE-network leader election.

This package implements Section 3 of the paper -- the probabilistic leader
election algorithm for anonymous, unidirectional ABE rings of known size --
together with the helpers the experiments need:

* :mod:`repro.core.messages` -- the ``<hop>`` messages travelling on the ring.
* :mod:`repro.core.activation` -- the activation-probability schedules: the
  paper's adaptive ``1 - (1 - A0)^d`` rule and the naive constant rule used as
  an ablation baseline.
* :mod:`repro.core.election` -- the per-node state machine
  (idle / active / passive / leader).
* :mod:`repro.core.runner` -- :func:`~repro.core.runner.run_election`, the
  high-level API that builds an ABE ring, runs the algorithm and returns an
  :class:`~repro.core.runner.ElectionResult`.
* :mod:`repro.core.vector_core` -- the columnar numpy engine behind
  ``run_election(core="vector")``: same state machine, flat-array state,
  one vectorized activation round per tick instant.
* :mod:`repro.core.analysis` -- closed-form reference quantities (wake-up
  pressure, asymptotic baselines) used by tests and benchmark tables.
* :mod:`repro.core.verification` -- execution checkers for the safety and
  liveness obligations listed in DESIGN.md.
"""

from repro.core.messages import HopMessage
from repro.core.activation import (
    ActivationSchedule,
    AdaptiveActivation,
    ConstantActivation,
)
from repro.core.election import AbeElectionProgram, ElectionStatus, NodeState
from repro.core.runner import (
    ELECTION_CORES,
    ElectionResult,
    run_election,
    run_election_on_network,
)
from repro.core.vector_core import VectorRingElection, run_vector_election
from repro.core.analysis import (
    async_ring_message_lower_bound,
    combined_idle_probability,
    expected_ticks_until_first_activation,
    recommended_a0,
    ring_pressure_per_tick,
    wakeup_pressure,
)
from repro.core.verification import ElectionInvariantError, verify_election

__all__ = [
    "HopMessage",
    "ActivationSchedule",
    "AdaptiveActivation",
    "ConstantActivation",
    "AbeElectionProgram",
    "ElectionStatus",
    "NodeState",
    "ELECTION_CORES",
    "ElectionResult",
    "run_election",
    "run_election_on_network",
    "VectorRingElection",
    "run_vector_election",
    "wakeup_pressure",
    "combined_idle_probability",
    "expected_ticks_until_first_activation",
    "recommended_a0",
    "ring_pressure_per_tick",
    "async_ring_message_lower_bound",
    "ElectionInvariantError",
    "verify_election",
]
