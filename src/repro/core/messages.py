"""Messages of the ABE election algorithm.

The algorithm of Section 3 uses a single message type ``<hop>`` where
``hop in {1, ..., n}`` is the hop counter.  For analysis and tracing we attach
two extra fields that the algorithm itself never reads:

* ``token_id`` identifies the *logical* message as it is forwarded around the
  ring (each forward creates a fresh :class:`HopMessage`, but the token id is
  preserved), and
* ``knockout`` records whether the message has knocked out an idle node at any
  point in its lifetime -- the paper calls such messages *knockout messages*.

Keeping this metadata out of the algorithm's decision logic preserves
anonymity and keeps the reproduction faithful: the algorithm behaves exactly
as if the message were the bare ``<hop>``.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

__all__ = ["HopMessage"]

_token_counter = itertools.count()


def _next_token_id() -> int:
    return next(_token_counter)


@dataclass(frozen=True)
class HopMessage:
    """The ``<hop>`` message of the election algorithm.

    Attributes
    ----------
    hop:
        The hop counter carried by the message (``>= 1``).
    token_id:
        Identity of the logical message across forwards (analysis only).
    knockout:
        Whether the message has turned an idle node passive at some point
        during its lifetime (analysis only).
    """

    hop: int
    token_id: int = field(default_factory=_next_token_id)
    knockout: bool = False

    def __post_init__(self) -> None:
        if self.hop < 1:
            raise ValueError(f"hop counter must be >= 1, got {self.hop}")

    def forwarded(self, new_hop: int, knocked_out_idle: bool) -> "HopMessage":
        """The message as re-sent by a forwarding node.

        ``new_hop`` is the forwarding node's ``d + 1``; ``knocked_out_idle``
        records whether the forwarding node was idle (and hence got knocked
        out by this message).
        """
        return HopMessage(
            hop=new_hop,
            token_id=self.token_id,
            knockout=self.knockout or knocked_out_idle,
        )

    def __repr__(self) -> str:
        flag = "*" if self.knockout else ""
        return f"<hop={self.hop}{flag}#{self.token_id}>"
