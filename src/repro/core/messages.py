"""Messages of the ABE election algorithm.

The algorithm of Section 3 uses a single message type ``<hop>`` where
``hop in {1, ..., n}`` is the hop counter.  For analysis and tracing we attach
two extra fields that the algorithm itself never reads:

* ``token_id`` identifies the *logical* message as it is forwarded around the
  ring (each forward creates a fresh :class:`HopMessage`, but the token id is
  preserved), and
* ``knockout`` records whether the message has knocked out an idle node at any
  point in its lifetime -- the paper calls such messages *knockout messages*.

Keeping this metadata out of the algorithm's decision logic preserves
anonymity and keeps the reproduction faithful: the algorithm behaves exactly
as if the message were the bare ``<hop>``.

Hot-path design
---------------
Every forward used to allocate a fresh :class:`HopMessage` -- the last
per-message allocation on the election path after PR 2 pooled the envelopes.
:class:`HopMessagePool` recycles consumed messages through a bounded free
list, mirroring the envelope pool in :mod:`repro.network.channel`: a message
is only ever *released* by the delivering channel once an exact
``sys.getrefcount`` check proves nothing else (a tracer, a test, a
fault-injection wrapper, the still-live envelope) can observe it, and
:meth:`HopMessage.renew` reinitialises every field on reuse so no state can
leak between logical messages.  The class therefore stays a (now mutable)
dataclass: field equality and the differential harness's canonical form are
unchanged.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import List, Optional

__all__ = ["HopMessage", "HopMessagePool"]

_token_counter = itertools.count()


def _next_token_id() -> int:
    return next(_token_counter)


#: Per-pool free-list bound; in-flight messages live outside the pool, so this
#: only caps how many parked records a run keeps between bursts.
_HOP_POOL_LIMIT = 64


@dataclass
class HopMessage:
    """The ``<hop>`` message of the election algorithm.

    Attributes
    ----------
    hop:
        The hop counter carried by the message (``>= 1``).
    token_id:
        Identity of the logical message across forwards (analysis only).
    knockout:
        Whether the message has turned an idle node passive at some point
        during its lifetime (analysis only).

    Instances are mutable only through :meth:`renew`, and only a
    :class:`HopMessagePool` may call it -- on a record the refcount guard has
    proven unobservable.  Everyone else must treat messages as frozen.

    Dropping ``frozen=True`` also drops hashability (``eq=True`` without
    ``frozen`` sets ``__hash__ = None``): messages can no longer be set
    members or dict keys, which is the correct default for recyclable
    records whose field-based hash would change on renewal.  Key by
    ``token_id`` (stable across forwards) where an identity is needed.
    """

    hop: int
    token_id: int = field(default_factory=_next_token_id)
    knockout: bool = False

    def __post_init__(self) -> None:
        if self.hop < 1:
            raise ValueError(f"hop counter must be >= 1, got {self.hop}")
        self._released = False

    def forwarded(self, new_hop: int, knocked_out_idle: bool) -> "HopMessage":
        """The message as re-sent by a forwarding node.

        ``new_hop`` is the forwarding node's ``d + 1``; ``knocked_out_idle``
        records whether the forwarding node was idle (and hence got knocked
        out by this message).
        """
        return HopMessage(
            hop=new_hop,
            token_id=self.token_id,
            knockout=self.knockout or knocked_out_idle,
        )

    def renew(self, hop: int, token_id: Optional[int], knockout: bool) -> "HopMessage":
        """Reinitialise a pooled message for its next flight.

        Every field is overwritten (``token_id=None`` draws a fresh logical
        identity, for spontaneous activations), so no state can leak from the
        previous message.  Returns ``self`` for chaining on the send path.
        """
        if hop < 1:
            raise ValueError(f"hop counter must be >= 1, got {hop}")
        self.hop = hop
        self.token_id = _next_token_id() if token_id is None else token_id
        self.knockout = knockout
        self._released = False
        return self

    def __repr__(self) -> str:
        flag = "*" if self.knockout else ""
        return f"<hop={self.hop}{flag}#{self.token_id}>"


class HopMessagePool:
    """Bounded free list recycling consumed :class:`HopMessage` records.

    One pool is shared by every node of an election run (the runner injects
    it); channels release a delivered message into it only after the exact
    refcount check in :meth:`~repro.network.channel.Channel._deliver` proves
    the record unobservable, so reuse can never be seen by a tracer, a test
    holding the message, or a retransmission wrapper that duplicated the
    envelope.  :meth:`release` additionally guards against double release --
    the one bug class the refcount check cannot express.
    """

    __slots__ = ("_free",)

    def __init__(self) -> None:
        self._free: List[HopMessage] = []

    def __len__(self) -> int:
        return len(self._free)

    def acquire(
        self, hop: int, token_id: Optional[int] = None, knockout: bool = False
    ) -> HopMessage:
        """A message ready to send: recycled if available, fresh otherwise."""
        free = self._free
        if free:
            return free.pop().renew(hop, token_id, knockout)
        return HopMessage(hop=hop, knockout=knockout) if token_id is None else HopMessage(
            hop=hop, token_id=token_id, knockout=knockout
        )

    def release(self, message: HopMessage) -> None:
        """Park a provably-unobservable message for reuse (bounded).

        Callers must have established unobservability (the channel's exact
        refcount guard); releasing the same record twice would alias two
        future logical messages, so it is rejected loudly.
        """
        if message._released:
            raise RuntimeError(
                f"HopMessage {message!r} released twice: a pooled message was "
                "handed back while already parked, which would alias two "
                "in-flight messages"
            )
        free = self._free
        if len(free) < _HOP_POOL_LIMIT:
            message._released = True
            free.append(message)
