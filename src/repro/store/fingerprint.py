"""Content-addressable keys: specs, callables, studies, and the code itself.

A cached trial result is only reusable if its key pins down everything that
could change the result.  Three components do that here:

* :func:`spec_fingerprint` / :func:`callable_fingerprint` -- *what* ran
  (the workload), canonicalized so the same workload hashes identically in
  every process and distinct workloads never collide;
* the trial seed -- *which* random draw (carried alongside the key, not
  inside it);
* :func:`code_version` -- *which code* ran it.  Stored separately from the
  key so a store can report "I have this result, but from different code"
  instead of silently missing.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pickle
import re
from typing import Any, Optional

__all__ = [
    "callable_fingerprint",
    "code_version",
    "spec_fingerprint",
    "study_fingerprint",
]

#: CPython's default object repr (and everything built on it) embeds the
#: instance address: ``<Foo object at 0x7f3a2c04d8e0>``.  Such a repr is
#: different in every process, so a key built from it can never hit on
#: resume -- and worse, it *looks* like a valid stable key.
_ADDRESS_REPR = re.compile(r" at 0x[0-9a-fA-F]+")


class _NotCanonical(Exception):
    """A value has no process-independent canonical form."""


def _canonical_default(value: Any) -> Any:
    """``json.dumps`` fallback for live runtime objects inside a spec.

    Dataclasses are expanded field by field from ``dataclasses.fields`` --
    *not* via ``repr`` -- so a field declared ``repr=False`` still
    distinguishes two otherwise-identical specs (a repr-based key would alias
    them to one entry and serve wrong cache hits).  Everything else falls
    back to ``repr``, but a repr carrying a memory address is refused: it
    would produce a different key every process, so the caller skips
    journaling instead of caching under a useless (or colliding) key.
    """
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        cls = type(value)
        return {
            "__dataclass__": f"{cls.__module__}:{cls.__qualname__}",
            "fields": {f.name: getattr(value, f.name) for f in dataclasses.fields(value)},
        }
    text = repr(value)
    if _ADDRESS_REPR.search(text):
        raise _NotCanonical(text)
    return text


def spec_fingerprint(spec: Any) -> Optional[str]:
    """Content-addressable key of a :class:`~repro.scenarios.spec.ScenarioSpec`.

    The SHA-256 of the spec's canonical JSON form minus the three fields that
    cannot change per-seed results: ``workers`` (execution is bit-identical
    for any worker count), ``stopping`` (adaptive rules choose *which*
    derived seeds run, never what any seed produces) and ``trials`` (the
    count only determines how many derived seeds run; trial ``i``'s result
    is the same whether the spec asks for 2 trials or 200).  Resuming a
    checkpointed study with a different worker count or stopping rule
    therefore still hits the journal -- and growing a spec's trial budget
    re-executes only the new seeds, which is what lets the DSE successive-
    halving rungs (:mod:`repro.dse`) promote a configuration to a larger
    budget incrementally instead of from scratch.

    Overrides may carry live runtime objects (e.g. a delay-model instance);
    :func:`_canonical_default` keeps the fingerprint total for dataclasses
    (field-by-field, immune to ``repr=False`` aliasing) and for objects with
    stable reprs (the delay models print as ``ExponentialDelay(mean=1.0)``).
    Returns ``None`` -- journaling is skipped, never wrong -- when any value
    only has an address-bearing repr, which would yield a different key every
    process.
    """
    data = spec.to_dict()
    data.pop("workers", None)
    data.pop("stopping", None)
    data.pop("trials", None)
    try:
        canonical = json.dumps(
            data, sort_keys=True, separators=(",", ":"), default=_canonical_default
        )
    except _NotCanonical:
        return None
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def study_fingerprint(study: Any) -> Optional[str]:
    """Content-addressable key of a :class:`~repro.scenarios.spec.StudySpec`.

    Built from the metric and the ordered per-point ``(spec_fingerprint,
    trials)`` pairs (the name/title are presentation, not workload).  Trials
    re-enter here even though :func:`spec_fingerprint` drops them: two
    studies asking for different budgets of the same points are different
    *studies* (their aggregates differ) even though their per-seed store
    rows coincide.  ``None`` if any point refuses a key.
    """
    keys = [spec_fingerprint(point) for point in study.points]
    if any(key is None for key in keys):
        return None
    blob = json.dumps(
        {
            "metric": study.metric,
            "points": [[key, point.trials] for key, point in zip(keys, study.points)],
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def callable_fingerprint(run_one: Any, base_seed: int, label: str) -> Optional[str]:
    """Journal key for a raw trial callable (no declarative spec available).

    Hashes the pickled callable (configuration travels inside it -- e.g.
    :class:`~repro.experiments.workloads.ElectionTrial` carries ring size,
    ``a0`` and the delay model) together with the seed family.  Returns
    ``None`` -- journaling is skipped, never wrong -- when the callable does
    not pickle (fork-only closures).
    """
    try:
        blob = pickle.dumps(run_one, protocol=4)
    except Exception:
        return None
    digest = hashlib.sha256(blob)
    digest.update(repr((base_seed, label)).encode("utf-8"))
    return digest.hexdigest()


#: Cached per process: the goldens cannot change under a running study.
_CODE_VERSION: Optional[str] = None


def _goldens_digest() -> Optional[str]:
    """Content hash of the recorded behaviour goldens, or ``None`` outside a
    source checkout (installed package without the test harness)."""
    here = os.path.dirname(os.path.abspath(__file__))
    for _ in range(6):
        here = os.path.dirname(here)
        candidate = os.path.join(here, "tests", "harness", "goldens")
        if os.path.isdir(candidate):
            digest = hashlib.sha256()
            for name in sorted(os.listdir(candidate)):
                path = os.path.join(candidate, name)
                if not os.path.isfile(path):
                    continue
                digest.update(name.encode("utf-8"))
                with open(path, "rb") as handle:
                    digest.update(handle.read())
            return digest.hexdigest()[:12]
    return None


def code_version() -> str:
    """The version stamp stored with every cached result.

    ``repro.__version__`` plus a content hash of the recorded behaviour
    goldens (``tests/harness/goldens``): the goldens are this repo's
    definition of "same observable behaviour", so a golden re-record --
    which by policy accompanies any intentional behaviour change -- bumps
    the stamp even when the version string was not touched.
    """
    global _CODE_VERSION
    if _CODE_VERSION is None:
        from repro import __version__  # deferred: repro imports nothing from here

        goldens = _goldens_digest()
        _CODE_VERSION = f"{__version__}+g{goldens}" if goldens else __version__
    return _CODE_VERSION
