"""Exact-round-trip JSON codec for trial results.

Moved verbatim from :mod:`repro.experiments.resilience` (PR 6) so both
journal backends and the migration tool share one codec; the resilience
module re-exports both names unchanged.
"""

from __future__ import annotations

import dataclasses
import importlib
from typing import Any

__all__ = ["decode_result", "encode_result"]


def encode_result(value: Any) -> Any:
    """Encode one trial result as a JSON-able document.

    Supports the closed set of shapes trial runners return: primitives,
    lists, string-keyed dicts, tuples, and dataclasses of those (e.g.
    :class:`~repro.core.runner.ElectionResult`).  Floats round-trip exactly
    (JSON carries the shortest-repr form), which is what makes resumed
    aggregates bit-identical.  Raises ``TypeError`` for anything else, which
    callers treat as "this result is not journalable".
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        cls = type(value)
        return {
            "__kind__": "dataclass",
            "type": f"{cls.__module__}:{cls.__qualname__}",
            "fields": {
                f.name: encode_result(getattr(value, f.name))
                for f in dataclasses.fields(value)
            },
        }
    if isinstance(value, tuple):
        return {"__kind__": "tuple", "items": [encode_result(item) for item in value]}
    if isinstance(value, list):
        return [encode_result(item) for item in value]
    if isinstance(value, dict):
        if "__kind__" in value or not all(isinstance(key, str) for key in value):
            raise TypeError(f"cannot journal dict with non-string or reserved keys: {value!r}")
        return {key: encode_result(item) for key, item in value.items()}
    raise TypeError(f"cannot journal result of type {type(value).__name__}")


def decode_result(payload: Any) -> Any:
    """Inverse of :func:`encode_result`."""
    if isinstance(payload, list):
        return [decode_result(item) for item in payload]
    if isinstance(payload, dict):
        kind = payload.get("__kind__")
        if kind == "tuple":
            return tuple(decode_result(item) for item in payload["items"])
        if kind == "dataclass":
            module_name, _, qualname = payload["type"].partition(":")
            target: Any = importlib.import_module(module_name)
            for part in qualname.split("."):
                target = getattr(target, part)
            if not dataclasses.is_dataclass(target):
                raise ValueError(f"journal names a non-dataclass type {payload['type']!r}")
            fields = {key: decode_result(item) for key, item in payload["fields"].items()}
            return target(**fields)
        if kind is not None:
            raise ValueError(f"unknown journal payload kind {kind!r}")
        return {key: decode_result(item) for key, item in payload.items()}
    return payload
