"""The ``abe-repro serve`` study service: one warm pool, zero redundant compute.

:class:`StudyService` is the long-lived counterpart of the one-command
``abe-repro scenario`` run.  Jobs -- :class:`~repro.scenarios.spec.StudySpec`
or :class:`~repro.scenarios.spec.ScenarioSpec` JSON documents -- are
submitted (from files on the command line, or from a watched spool
directory), deduplicated by :func:`~repro.store.fingerprint.study_fingerprint`,
and executed point by point against one shared
:class:`~repro.experiments.parallel.SweepPool` under the PR 6 supervision
layer (:func:`~repro.experiments.resilience.active_policy`).  Every trial is
keyed into the service's :class:`~repro.store.result_store.ResultStore`, so
a re-submitted experiment -- same process or next week -- is a cache hit:
the second run of any study against a warm store performs zero trial
compute and reproduces its aggregates byte for byte.

Progress streams through a caller-supplied callback (the CLI prints it to
stderr), and each completed job can be exported as a JSON document whose
``points`` block is deliberately free of cache statistics and timing, so
two runs of the same study are byte-comparable.  See ``docs/SERVICE.md``.
"""

from __future__ import annotations

import dataclasses
import json
import os
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.store import fingerprint as _fingerprint
from repro.store.result_store import ResultStore

__all__ = ["JobReport", "PointReport", "StudyService", "study_from_spec"]

#: Identifier-like result fields excluded from exported aggregates (a mean
#: over derived 64-bit seeds or anonymous node uids is noise, not a metric).
_IDENTIFIER_COLUMNS = frozenset({"seed", "leader_uid", "node_uid", "uid"})


def study_from_spec(spec: Any) -> Any:
    """Lift a single :class:`ScenarioSpec` into a one-point study.

    The service executes studies; a submitted bare scenario becomes a
    one-point battery named after its label (or algorithm), which keeps one
    submission path and one export shape.
    """
    from repro.scenarios.spec import ScenarioSpec, StudySpec

    if isinstance(spec, StudySpec):
        return spec
    if isinstance(spec, ScenarioSpec):
        return StudySpec(name=spec.label or spec.algorithm, points=(spec,))
    raise TypeError(f"cannot serve a {type(spec).__name__}; submit a scenario or study spec")


def _point_summary(results: Sequence[Any]) -> Dict[str, Any]:
    """Deterministic scenario-level aggregates of one point's results.

    Mirrors the ``aggregates over all trials`` block of
    :func:`repro.scenarios.report.render_scenario`: exact-float mean/min/max
    per numeric result field, true-counts for booleans.  Pure function of
    the (bit-identical) trial results, so re-served runs export byte-equal
    summaries.
    """
    from repro.experiments.resilience import TrialFailure

    flat: List[Any] = []
    for result in results:
        if isinstance(result, list):  # one-shot batteries return row lists
            flat.extend(result)
        else:
            flat.append(result)
    failures = sum(1 for result in flat if isinstance(result, TrialFailure))
    rows: List[Dict[str, Any]] = []
    for result in flat:
        if isinstance(result, TrialFailure):
            continue
        if dataclasses.is_dataclass(result) and not isinstance(result, type):
            rows.append(dataclasses.asdict(result))
        elif isinstance(result, dict):
            rows.append(dict(result))
    metrics: Dict[str, Any] = {}
    if rows:
        for key in rows[0]:
            if key in _IDENTIFIER_COLUMNS:
                continue
            values = [row.get(key) for row in rows]
            numeric = [
                float(v)
                for v in values
                if isinstance(v, (int, float)) and not isinstance(v, bool)
            ]
            if len(numeric) == len(values) and numeric:
                metrics[key] = {
                    "mean": sum(numeric) / len(numeric),
                    "min": min(numeric),
                    "max": max(numeric),
                }
            elif all(isinstance(v, bool) for v in values):
                metrics[key] = {"true": sum(values), "total": len(values)}
    return {"trials": len(flat), "failures": failures, "metrics": metrics}


@dataclass
class PointReport:
    """Execution record of one study point inside a job."""

    index: int
    label: str
    algorithm: str
    fingerprint: Optional[str]
    spec: Dict[str, Any]
    summary: Dict[str, Any]
    results: List[Any] = field(repr=False, default_factory=list)
    lookups: int = 0
    hits: int = 0
    executed: int = 0
    elapsed: float = 0.0

    def identity_dict(self) -> Dict[str, Any]:
        """The byte-comparable half: what ran and what it produced --
        no cache statistics, no timing."""
        return {
            "index": self.index,
            "label": self.label,
            "algorithm": self.algorithm,
            "fingerprint": self.fingerprint,
            "spec": self.spec,
            "summary": self.summary,
        }


@dataclass
class JobReport:
    """One submitted study: identity, per-point reports, cache totals."""

    job_id: str
    name: str
    source: str
    status: str  # "completed" or "duplicate"
    fingerprint: Optional[str]
    metric: str
    points: List[PointReport] = field(default_factory=list)
    duplicate_of: Optional[str] = None
    elapsed: float = 0.0

    @property
    def lookups(self) -> int:
        return sum(point.lookups for point in self.points)

    @property
    def hits(self) -> int:
        return sum(point.hits for point in self.points)

    @property
    def trials_executed(self) -> int:
        return sum(point.executed for point in self.points)

    def to_dict(self) -> Dict[str, Any]:
        lookups = self.lookups
        doc: Dict[str, Any] = {
            "job": self.job_id,
            "name": self.name,
            "source": self.source,
            "status": self.status,
            "study_fingerprint": self.fingerprint,
            "metric": self.metric,
            "code_version": _fingerprint.code_version(),
            # The deterministic block: compare two exports on ["points"] to
            # check byte-identity of what was computed.
            "points": [point.identity_dict() for point in self.points],
            "cache": {
                "lookups": lookups,
                "hits": self.hits,
                "misses": lookups - self.hits,
                "hit_rate": (self.hits / lookups) if lookups else None,
                "trials_executed": self.trials_executed,
            },
            "timing": {"elapsed_seconds": self.elapsed},
        }
        if self.duplicate_of is not None:
            doc["duplicate_of"] = self.duplicate_of
        return doc


class StudyService:
    """A job queue over one :class:`ResultStore` and one warm ``SweepPool``.

    Parameters
    ----------
    store:
        The persistent result store every trial is keyed into.
    workers:
        Worker processes for the shared pool (``1`` = serial execution,
        which still caches; the pool is created lazily on the first
        multi-worker job and reused for every subsequent one).
    adaptive:
        Optional :class:`~repro.experiments.runner.AdaptiveStopping` applied
        to every job, resolved per study against its declared metric.
    policy:
        Optional :class:`~repro.experiments.resilience.ExecutionPolicy`
        installed around job execution (timeouts, retries, supervision).
        The service stores results itself, so ``policy.checkpoint`` is
        typically ``None``.
    progress:
        ``callable(str)`` receiving incremental one-line progress messages.
    """

    def __init__(
        self,
        store: ResultStore,
        *,
        workers: int = 1,
        adaptive: Optional[Any] = None,
        policy: Optional[Any] = None,
        progress: Optional[Callable[[str], None]] = None,
    ) -> None:
        self.store = store
        self.workers = max(1, int(workers))
        self.adaptive = adaptive
        self.policy = policy
        self.progress = progress or (lambda message: None)
        self._pool: Optional[Any] = None
        self._queue: List[Tuple[str, Any, str, Optional[str]]] = []
        self._completed: Dict[str, JobReport] = {}
        self._anonymous = 0

    # --------------------------------------------------------------- lifecycle

    def close(self) -> None:
        """Tear down the warm pool (the store stays open for its owner)."""
        if self._pool is not None:
            self._pool.close()
            self._pool = None

    def __enter__(self) -> "StudyService":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    def _shared_pool(self) -> Any:
        from repro.experiments.parallel import SweepPool  # late: heavy import

        if self._pool is None:
            self._pool = SweepPool(self.workers)
        return self._pool

    # -------------------------------------------------------------- submission

    def submit(self, spec: Any, source: str = "<submitted>") -> Tuple[str, str]:
        """Queue one scenario/study spec; returns ``(job_id, disposition)``.

        Disposition is ``"queued"``, or ``"duplicate"`` when a study with the
        same fingerprint was already completed *or* is already queued in this
        service -- the duplicate is not executed again (its report reuses the
        original's results), which is the dedupe half of "zero redundant
        compute" (the cache half handles duplicates across processes).
        """
        study = study_from_spec(spec)
        fingerprint = _fingerprint.study_fingerprint(study)
        if fingerprint is not None:
            if fingerprint in self._completed:
                original = self._completed[fingerprint]
                self.progress(
                    f"job {original.job_id}: duplicate submission of completed "
                    f"study {study.name!r} ({source}); serving cached report"
                )
                self._queue.append((original.job_id, study, source, fingerprint))
                return original.job_id, "duplicate"
            for job_id, _, _, queued_fingerprint in self._queue:
                if queued_fingerprint == fingerprint:
                    self.progress(
                        f"job {job_id}: study {study.name!r} ({source}) already "
                        "queued; coalescing"
                    )
                    return job_id, "duplicate"
            job_id = fingerprint[:12]
        else:
            self._anonymous += 1
            job_id = f"anon-{self._anonymous}"
        self._queue.append((job_id, study, source, fingerprint))
        self.progress(
            f"job {job_id}: queued study {study.name!r} "
            f"({len(study.points)} point(s), {source})"
        )
        return job_id, "queued"

    # --------------------------------------------------------------- execution

    def run_pending(self) -> List[JobReport]:
        """Execute every queued job in submission order; returns the reports."""
        from repro.experiments.resilience import active_policy

        reports: List[JobReport] = []
        queue, self._queue = self._queue, []
        with active_policy(self.policy):
            for job_id, study, source, fingerprint in queue:
                if fingerprint is not None and fingerprint in self._completed:
                    original = self._completed[fingerprint]
                    reports.append(
                        JobReport(
                            job_id=original.job_id,
                            name=study.name,
                            source=source,
                            status="duplicate",
                            fingerprint=fingerprint,
                            metric=study.metric,
                            points=original.points,
                            duplicate_of=original.job_id,
                        )
                    )
                    continue
                reports.append(self._run_job(job_id, study, source, fingerprint))
        return reports

    def _run_job(
        self, job_id: str, study: Any, source: str, fingerprint: Optional[str]
    ) -> JobReport:
        report = JobReport(
            job_id=job_id,
            name=study.name,
            source=source,
            status="completed",
            fingerprint=fingerprint,
            metric=study.metric,
        )
        rule = self.adaptive.resolved(study.metric) if self.adaptive is not None else None
        total = len(study.points)
        self.progress(f"job {job_id}: running study {study.name!r} ({total} point(s))")
        started = time.perf_counter()
        pool = self._shared_pool()
        for index, point in enumerate(study.points):
            report.points.append(self._run_point(job_id, index, total, point, pool, rule))
        report.elapsed = time.perf_counter() - started
        lookups = report.lookups
        self.progress(
            f"job {job_id}: done in {report.elapsed:.2f}s -- "
            f"{report.trials_executed} trial(s) executed, "
            f"{report.hits}/{lookups} cache hit(s)"
        )
        if fingerprint is not None:
            self._completed[fingerprint] = report
        return report

    def _run_point(
        self, job_id: str, index: int, total: int, point: Any, pool: Any, rule: Any
    ) -> PointReport:
        from repro.scenarios.runtime import run_scenario

        hits_before, misses_before = self.store.hits, self.store.misses
        started = time.perf_counter()
        results = run_scenario(point, pool=pool, adaptive=rule, checkpoint=self.store)
        elapsed = time.perf_counter() - started
        hits = self.store.hits - hits_before
        misses = self.store.misses - misses_before
        fingerprint = _fingerprint.spec_fingerprint(point)
        # With a keyed point every executed trial is a recorded store miss;
        # an unkeyed point (fingerprint refused) never consulted the store,
        # so everything it returned was computed.
        executed = misses if fingerprint is not None else len(results)
        report = PointReport(
            index=index,
            label=point.label or f"point{index}",
            algorithm=point.algorithm,
            fingerprint=fingerprint,
            spec=point.to_dict(),
            summary=_point_summary(results),
            results=list(results),
            lookups=hits + misses,
            hits=hits,
            executed=executed,
            elapsed=elapsed,
        )
        self.progress(
            f"job {job_id}: point {index + 1}/{total} ({report.label}) -- "
            f"{len(results)} result(s), {hits} cached, {executed} executed, "
            f"{elapsed:.2f}s"
        )
        return report

    # ------------------------------------------------------------------ export

    def export(self, report: JobReport, directory: Any) -> str:
        """Write one job's JSON document to ``<directory>/<job_id>.json``.

        The file's ``points`` block is free of cache/timing noise: exporting
        the same study from a cold and a warm store produces byte-identical
        ``points``, which is how the CI smoke asserts "zero redundant
        compute, same science".
        """
        directory = str(directory)
        os.makedirs(directory, exist_ok=True)
        path = os.path.join(directory, f"{report.job_id}.json")
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(report.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        return path
