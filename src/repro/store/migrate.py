"""One-shot migration of JSONL checkpoint journals into a sqlite store.

PR 6 journals predate the code-version stamp, so their lines carry no
``version`` field.  Migration preserves what is actually known: version-less
lines are stored under the stamp ``"unversioned"`` by default -- visible,
never silently served -- and can be *promoted* to an explicit stamp via
``assume_version`` when the operator knows which code produced them (e.g.
``assume_version=code_version()`` right after an upgrade that changed no
behaviour).  Payloads are copied byte-for-byte (no decode/re-encode round
trip), so aggregates resumed from the migrated store match the journal
exactly.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Optional

from repro.store.result_store import ResultStore

__all__ = ["MigrationReport", "migrate_journal"]


@dataclass
class MigrationReport:
    """What a :func:`migrate_journal` pass did."""

    source: str
    migrated: int = 0
    duplicates: int = 0
    skipped_lines: int = 0

    def summary(self) -> str:
        return (
            f"{self.source}: migrated {self.migrated} result(s)"
            f" ({self.duplicates} already present, {self.skipped_lines} unparsable line(s))"
        )


def migrate_journal(
    journal_path: Any, store: ResultStore, assume_version: Optional[str] = None
) -> MigrationReport:
    """Copy every parsable line of a JSONL journal into ``store``.

    Lines carrying their own ``version`` keep it; version-less (PR 6) lines
    are stamped ``assume_version`` or ``"unversioned"``.  Torn or foreign
    lines are skipped individually, duplicates (already-present
    ``(key, seed, version)`` rows) are counted but not overwritten.
    """
    report = MigrationReport(source=str(journal_path))
    fallback = assume_version if assume_version is not None else "unversioned"
    with open(str(journal_path), "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
                key = str(record["key"])
                seed = int(record["seed"])
                payload = record["result"]
            except (ValueError, KeyError, TypeError):
                report.skipped_lines += 1
                continue
            version = str(record.get("version") or fallback)
            if store.record_payload(key, seed, payload, version):
                report.migrated += 1
            else:
                report.duplicates += 1
    return report
