"""Sqlite-backed persistent result store with O(1) appends.

The schema is one table::

    results(key TEXT, seed INTEGER, version TEXT, payload TEXT, created_at REAL,
            PRIMARY KEY (key, seed, version))

``key`` is a :func:`~repro.store.fingerprint.spec_fingerprint` or
:func:`~repro.store.fingerprint.callable_fingerprint`, ``seed`` the derived
trial seed, ``version`` the :func:`~repro.store.fingerprint.code_version`
stamp, ``payload`` the :func:`~repro.store.codec.encode_result` JSON.  The
primary key makes recording idempotent (``INSERT OR IGNORE``), and each
``record_many`` is one transaction over just the new rows -- cost is
proportional to the batch, never to the store size.

Lookups are filtered to the current code version; rows recorded under a
different version are *ignored with a stderr note* (results from different
code must never be mixed into one aggregate) unless the store was opened
with ``allow_stale=True`` (the ``--allow-stale-cache`` escape hatch, for
consciously reusing results across a version bump that did not change
behaviour).
"""

from __future__ import annotations

import json
import os
import sqlite3
import sys
import time
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.store import fingerprint as _fingerprint
from repro.store.codec import decode_result, encode_result

__all__ = ["ResultStore"]

#: sqlite bind-parameter budget per query (the historical hard limit is 999).
_CHUNK = 500


def _stale_note(path: str, ignored: int, current: str) -> None:
    print(
        f"note: {path}: ignoring {ignored} cached result(s) recorded under a "
        f"different code version than the current {current!r}; "
        "pass --allow-stale-cache to reuse them",
        file=sys.stderr,
    )


class ResultStore:
    """Persistent ``(key, seed, code_version)``-keyed trial-result store.

    Implements the same ``lookup`` / ``record`` / ``record_many`` /
    ``__len__`` / ``__contains__`` surface as the PR 6 journal, so every
    Monte-Carlo resume path (``monte_carlo``, ``run_scenario``, ``run_study``,
    ``SweepPool``) accepts a store wherever it accepted a journal.

    Parameters
    ----------
    path:
        Database file location (created with parents if missing).
    fresh:
        ``True`` discards any existing content first (the ``--checkpoint``
        without ``--resume`` semantics); default keeps everything -- a store
        is a cache, accumulating results across runs is its purpose.
    allow_stale:
        Serve results recorded under other code versions too (current-version
        rows still win when both exist).  Off by default.
    """

    kind = "sqlite"

    def __init__(self, path: Any, fresh: bool = False, allow_stale: bool = False) -> None:
        self.path = str(path)
        self.allow_stale = bool(allow_stale)
        self.version = _fingerprint.code_version()
        #: Lookup counters (reset never; snapshot deltas for per-run stats).
        self.hits = 0
        self.misses = 0
        #: Payload bytes appended this process (for the O(1)-append bench).
        self.bytes_written = 0
        directory = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(directory, exist_ok=True)
        if fresh and os.path.exists(self.path):
            os.remove(self.path)
        self._conn = sqlite3.connect(self.path)
        self._conn.execute(
            "CREATE TABLE IF NOT EXISTS results ("
            " key TEXT NOT NULL,"
            " seed INTEGER NOT NULL,"
            " version TEXT NOT NULL,"
            " payload TEXT NOT NULL,"
            " created_at REAL NOT NULL,"
            " PRIMARY KEY (key, seed, version))"
        )
        self._conn.commit()
        self.stale_ignored = self._count_other_versions()
        if self.stale_ignored and not self.allow_stale:
            _stale_note(self.path, self.stale_ignored, self.version)

    # --------------------------------------------------------------- plumbing

    def _count_other_versions(self) -> int:
        row = self._conn.execute(
            "SELECT COUNT(*) FROM results WHERE version != ?", (self.version,)
        ).fetchone()
        return int(row[0])

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    # -------------------------------------------------------------------- api

    def __len__(self) -> int:
        if self.allow_stale:
            row = self._conn.execute(
                "SELECT COUNT(DISTINCT key || '/' || seed) FROM results"
            ).fetchone()
        else:
            row = self._conn.execute(
                "SELECT COUNT(*) FROM results WHERE version = ?", (self.version,)
            ).fetchone()
        return int(row[0])

    def __contains__(self, key_seed: Tuple[str, int]) -> bool:
        key, seed = str(key_seed[0]), int(key_seed[1])
        if self.allow_stale:
            row = self._conn.execute(
                "SELECT 1 FROM results WHERE key = ? AND seed = ? LIMIT 1", (key, seed)
            ).fetchone()
        else:
            row = self._conn.execute(
                "SELECT 1 FROM results WHERE key = ? AND seed = ? AND version = ? LIMIT 1",
                (key, seed, self.version),
            ).fetchone()
        return row is not None

    def lookup(self, key: str, seeds: Sequence[int]) -> Dict[int, Any]:
        """Decoded results for the given seeds already completed under ``key``.

        Current-version rows only, unless ``allow_stale`` -- and even then a
        current-version row always wins over a stale one for the same seed.
        """
        seeds = [int(seed) for seed in seeds]
        current: Dict[int, Any] = {}
        stale: Dict[int, Any] = {}
        for start in range(0, len(seeds), _CHUNK):
            chunk = seeds[start : start + _CHUNK]
            marks = ",".join("?" * len(chunk))
            rows = self._conn.execute(
                f"SELECT seed, version, payload FROM results"
                f" WHERE key = ? AND seed IN ({marks})",
                [key, *chunk],
            )
            for seed, version, payload in rows:
                if version == self.version:
                    current[seed] = payload
                elif self.allow_stale and seed not in stale:
                    stale[seed] = payload
        found: Dict[int, Any] = {}
        for seed in seeds:
            payload = current.get(seed)
            if payload is None and self.allow_stale:
                payload = stale.get(seed)
            if payload is not None:
                found[seed] = decode_result(json.loads(payload))
        self.hits += len(found)
        self.misses += len(seeds) - len(found)
        return found

    def record(self, key: str, seed: int, result: Any) -> bool:
        """Store one completed trial; returns whether a new row was written."""
        return self.record_many(key, [(seed, result)]) > 0

    def record_many(self, key: str, pairs: Sequence[Tuple[int, Any]]) -> int:
        """Store a batch of ``(seed, result)`` pairs in one transaction.

        Cost is O(batch): one ``INSERT OR IGNORE`` per pair inside a single
        commit, independent of how many results the store already holds.
        """
        rows: List[Tuple[str, int, str, str, float]] = []
        for seed, result in pairs:
            try:
                payload = json.dumps(encode_result(result), sort_keys=True)
            except TypeError:
                continue  # unjournalable result: run it again next time
            rows.append((key, int(seed), self.version, payload, time.time()))
        if not rows:
            return 0
        before = self._conn.total_changes
        with self._conn:
            self._conn.executemany(
                "INSERT OR IGNORE INTO results (key, seed, version, payload, created_at)"
                " VALUES (?, ?, ?, ?, ?)",
                rows,
            )
        written = self._conn.total_changes - before
        self.bytes_written += sum(len(row[3]) for row in rows[:written])
        return written

    def record_payload(self, key: str, seed: int, payload: Any, version: str) -> bool:
        """Low-level insert of an already-encoded payload under an explicit
        version stamp (the migration path; normal recording stamps the
        current :func:`~repro.store.fingerprint.code_version`)."""
        before = self._conn.total_changes
        with self._conn:
            self._conn.execute(
                "INSERT OR IGNORE INTO results (key, seed, version, payload, created_at)"
                " VALUES (?, ?, ?, ?, ?)",
                (str(key), int(seed), str(version), json.dumps(payload, sort_keys=True), time.time()),
            )
        return self._conn.total_changes > before

    # ------------------------------------------------------------ introspection

    def iter_rows(
        self, all_versions: bool = False
    ) -> Iterable[Tuple[str, int, str, float, Any]]:
        """Yield ``(key, seed, version, created_at, decoded_result)`` rows.

        Deterministic order (key, seed, version); current code version only
        unless ``all_versions``.  This is the analysis-export surface
        (``abe-repro export-store``) -- it never touches the hit/miss
        counters, so exporting a store does not distort its cache stats.
        """
        if all_versions:
            rows = self._conn.execute(
                "SELECT key, seed, version, created_at, payload FROM results"
                " ORDER BY key, seed, version"
            )
        else:
            rows = self._conn.execute(
                "SELECT key, seed, version, created_at, payload FROM results"
                " WHERE version = ? ORDER BY key, seed, version",
                (self.version,),
            )
        for key, seed, version, created_at, payload in rows:
            yield (
                str(key),
                int(seed),
                str(version),
                float(created_at),
                decode_result(json.loads(payload)),
            )

    def keys(self) -> List[str]:
        """Distinct fingerprints present (any version)."""
        return [row[0] for row in self._conn.execute("SELECT DISTINCT key FROM results")]

    def counts_by_version(self) -> Dict[str, int]:
        return {
            str(version): int(count)
            for version, count in self._conn.execute(
                "SELECT version, COUNT(*) FROM results GROUP BY version"
            )
        }
