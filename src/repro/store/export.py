"""Columnar export of a :class:`~repro.store.result_store.ResultStore`.

The first slice of the ROADMAP's columnar-analysis item: ``abe-repro
export-store <store> --csv`` dumps every cached trial as one CSV row, ready
for pandas/duckdb/spreadsheet analysis without this package installed.

The schema is data-driven: four identity columns (``key``, ``seed``,
``version``, ``created_at``) followed by the sorted union of the scalar
fields found across all decoded payloads (minus any that shadow an
identity column).  Scalars export natively;
anything structured (nested dicts, lists, one-shot row batteries) is
JSON-encoded in place so no information is dropped.  Row order follows
:meth:`~repro.store.result_store.ResultStore.iter_rows` (key, seed,
version), so the same store always exports byte-identically.
"""

from __future__ import annotations

import csv
import dataclasses
import json
from typing import Any, Dict, IO, List, Tuple

from repro.store.result_store import ResultStore

__all__ = ["store_rows", "write_store_csv"]

_IDENTITY_COLUMNS = ("key", "seed", "version", "created_at")


def _flatten(result: Any) -> Dict[str, Any]:
    """One payload as a flat field dict (non-mapping payloads get ``result``)."""
    if dataclasses.is_dataclass(result) and not isinstance(result, type):
        return dataclasses.asdict(result)
    if isinstance(result, dict):
        return dict(result)
    return {"result": result}


def _cell(value: Any) -> Any:
    if value is None or isinstance(value, (int, float, str, bool)):
        return value
    return json.dumps(value, sort_keys=True, separators=(",", ":"), default=str)


def store_rows(
    store: ResultStore, all_versions: bool = False
) -> Tuple[List[str], List[List[Any]]]:
    """``(header, rows)`` of the store's columnar form."""
    flattened: List[Tuple[Tuple[str, int, str, float], Dict[str, Any]]] = [
        ((key, seed, version, created_at), _flatten(result))
        for key, seed, version, created_at, result in store.iter_rows(all_versions)
    ]
    # Payload fields shadowed by an identity column (a result's own ``seed``
    # always equals the store key's) would duplicate the header; drop them.
    fields = sorted(
        {name for _, data in flattened for name in data} - set(_IDENTITY_COLUMNS)
    )
    header = list(_IDENTITY_COLUMNS) + fields
    rows = [
        list(identity) + [_cell(data.get(name)) for name in fields]
        for identity, data in flattened
    ]
    return header, rows


def write_store_csv(store: ResultStore, handle: IO[str], all_versions: bool = False) -> int:
    """Write the store as CSV to ``handle``; returns the data-row count."""
    header, rows = store_rows(store, all_versions)
    writer = csv.writer(handle, lineterminator="\n")
    writer.writerow(header)
    writer.writerows(rows)
    return len(rows)
