"""Persistent, fingerprint-keyed result storage.

The execution layer (:mod:`repro.experiments.resilience`) established the
contract that makes results cacheable at all: **a trial is a pure function of
its derived seed**, and a :class:`~repro.scenarios.spec.ScenarioSpec` is a
frozen, JSON-round-trippable description of the workload -- i.e. a
content-addressable key.  This package turns that contract into storage:

:mod:`repro.store.codec`
    ``encode_result`` / ``decode_result``: the exact-float JSON codec for
    trial results (dataclasses round-trip field for field), shared by every
    backend.

:mod:`repro.store.fingerprint`
    The key discipline.  ``spec_fingerprint`` canonicalizes a spec (dataclass
    overrides are hashed field by field; anything with a memory-address repr
    refuses a key instead of producing a per-process one), and
    ``code_version`` stamps every stored result with
    ``repro.__version__`` plus a content hash of the recorded behaviour
    goldens -- so results cached under different code are never silently
    mixed into aggregates.

:mod:`repro.store.result_store`
    :class:`ResultStore`: the sqlite-backed persistent store, keyed by
    ``(key, seed, code_version)`` with O(1) appends.  It implements the same
    ``lookup`` / ``record`` / ``record_many`` surface the PR 6 journal
    exposed, so every Monte-Carlo resume path accepts it unchanged.

:mod:`repro.store.journal`
    :class:`CheckpointJournal`: the ``--checkpoint`` entry point, retained as
    a thin adapter that picks its backend from the path suffix -- append-only
    JSONL by default, the sqlite :class:`ResultStore` for ``*.sqlite`` /
    ``*.db`` paths.

:mod:`repro.store.migrate`
    One-shot migration of PR 6 JSONL journals into a :class:`ResultStore`
    (``abe-repro migrate``).

:mod:`repro.store.service`
    :class:`StudyService` and the ``abe-repro serve`` job queue: spec
    submissions deduplicated by fingerprint, one warm
    :class:`~repro.experiments.parallel.SweepPool`, incremental progress and
    scenario-level JSON/table export.  See ``docs/SERVICE.md``.
"""

from repro.store.codec import decode_result, encode_result
from repro.store.fingerprint import (
    callable_fingerprint,
    code_version,
    spec_fingerprint,
    study_fingerprint,
)
from repro.store.journal import JOURNAL_DISABLED, CheckpointJournal, JsonlResultStore
from repro.store.migrate import MigrationReport, migrate_journal
from repro.store.result_store import ResultStore

__all__ = [
    "CheckpointJournal",
    "JOURNAL_DISABLED",
    "JsonlResultStore",
    "MigrationReport",
    "ResultStore",
    "callable_fingerprint",
    "code_version",
    "decode_result",
    "encode_result",
    "migrate_journal",
    "spec_fingerprint",
    "study_fingerprint",
]
