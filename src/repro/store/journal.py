"""The ``--checkpoint`` journal: append-only JSONL, or sqlite by suffix.

:class:`CheckpointJournal` keeps the exact constructor and method surface it
had in PR 6 (``monte_carlo`` / ``run_scenario`` / ``run_study`` /
``SweepPool`` resume paths are unchanged byte for byte) but is now a thin
adapter over two backends:

* :class:`JsonlResultStore` -- the default, one JSON line per completed
  trial.  Unlike the PR 6 implementation (which *rewrote and fsynced the
  whole file on every record*, despite its "append-only" docstring -- an
  O(n^2) total-bytes flaw), recording now appends exactly the new lines and
  fsyncs them; the only full write left is the fresh-start truncation.
* :class:`~repro.store.result_store.ResultStore` -- chosen automatically for
  ``*.sqlite`` / ``*.sqlite3`` / ``*.db`` paths.

Both backends stamp every record with the current
:func:`~repro.store.fingerprint.code_version` and ignore entries recorded
under a different version (stderr note; ``allow_stale=True`` overrides), so
resuming after a behaviour-changing code change re-runs trials instead of
silently mixing stale results into aggregates.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.store import fingerprint as _fingerprint
from repro.store.codec import decode_result, encode_result
from repro.store.result_store import ResultStore, _stale_note

__all__ = ["CheckpointJournal", "JOURNAL_DISABLED", "JsonlResultStore"]


class _JournalDisabled:
    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<JOURNAL_DISABLED>"


#: Passed as ``checkpoint_key`` by callers that *positively know* the
#: workload has no canonical fingerprint (e.g. a spec override with an
#: address-bearing repr).  ``resolve_checkpoint`` short-circuits on it so no
#: fallback key is guessed -- journaling is skipped, never wrong.
JOURNAL_DISABLED = _JournalDisabled()


class JsonlResultStore:
    """Append-only JSONL trial-result store, keyed by ``(key, seed)``.

    One line per completed trial::

        {"key": "<fingerprint>", "result": {...}, "seed": 123, "version": "1.0.0+gab12cd34ef56"}

    ``key`` is a :func:`~repro.store.fingerprint.spec_fingerprint`
    (declarative runs) or a
    :func:`~repro.store.fingerprint.callable_fingerprint` (raw
    ``monte_carlo`` calls), so one journal file can serve a whole study --
    every point disambiguates itself.  Records are appended and fsynced, so
    journaling N trials writes O(N) total bytes; a crash can tear at most
    the line being appended, and loading skips unparsable or foreign lines
    individually (everything else in the file stays usable).

    Parameters
    ----------
    path:
        Journal file location.
    resume:
        ``True`` loads previously completed trials (missing file = empty
        journal); ``False`` starts a fresh journal, atomically truncating any
        existing file.
    allow_stale:
        Serve entries recorded under other code versions too (current-version
        entries still win).  Off by default: stale entries are counted,
        noted on stderr, and re-recorded under the current version when
        their trials re-run.
    """

    kind = "jsonl"

    def __init__(self, path: Any, resume: bool = False, allow_stale: bool = False) -> None:
        self.path = str(path)
        self.resume = bool(resume)
        self.allow_stale = bool(allow_stale)
        self.version = _fingerprint.code_version()
        self._entries: Dict[Tuple[str, int], Any] = {}
        self._stale: Dict[Tuple[str, int], Any] = {}
        self.hits = 0
        self.misses = 0
        self.bytes_written = 0
        self.stale_ignored = 0
        self.skipped_lines = 0
        if self.resume:
            self._load()
        else:
            self._truncate()

    # --------------------------------------------------------------- storage

    def _truncate(self) -> None:
        """Fresh start: the one remaining whole-file write."""
        directory = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(directory, exist_ok=True)
        tmp_path = self.path + ".tmp"
        with open(tmp_path, "w", encoding="utf-8") as handle:
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, self.path)

    def _load(self) -> None:
        if not os.path.exists(self.path):
            self._truncate()
            return
        with open(self.path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                    key = str(record["key"])
                    seed = int(record["seed"])
                    payload = record["result"]
                except (ValueError, KeyError, TypeError):
                    # A torn tail or a foreign line.  Appends are strictly
                    # sequential, so no later line depends on this one: skip
                    # it and keep reading (the affected trials just re-run).
                    self.skipped_lines += 1
                    continue
                if record.get("version") == self.version:
                    self._entries[(key, seed)] = payload
                elif self.allow_stale:
                    self._stale[(key, seed)] = payload
                else:
                    self.stale_ignored += 1
        if self.stale_ignored:
            _stale_note(self.path, self.stale_ignored, self.version)

    # ------------------------------------------------------------------- api

    def __len__(self) -> int:
        return len(self._entries) + sum(
            1 for key_seed in self._stale if key_seed not in self._entries
        )

    def __contains__(self, key_seed: Tuple[str, int]) -> bool:
        key_seed = (str(key_seed[0]), int(key_seed[1]))
        return key_seed in self._entries or key_seed in self._stale

    def lookup(self, key: str, seeds: Sequence[int]) -> Dict[int, Any]:
        """Decoded results for the given seeds already completed under ``key``."""
        found: Dict[int, Any] = {}
        for seed in seeds:
            payload = self._entries.get((key, seed))
            if payload is None:
                payload = self._stale.get((key, seed))
            if payload is not None:
                found[seed] = decode_result(payload)
        self.hits += len(found)
        self.misses += len(seeds) - len(found)
        return found

    def record(self, key: str, seed: int, result: Any) -> bool:
        """Journal one completed trial; returns whether it was written."""
        return self.record_many(key, [(seed, result)]) > 0

    def record_many(self, key: str, pairs: Sequence[Tuple[int, Any]]) -> int:
        """Journal a batch of ``(seed, result)`` pairs in one append+fsync.

        Cost is O(batch): only the new lines are written, never the file.
        """
        lines: List[str] = []
        for seed, result in pairs:
            if (key, seed) in self:
                continue
            try:
                payload = encode_result(result)
            except TypeError:
                continue  # unjournalable result: run it again next time
            self._entries[(key, int(seed))] = payload
            lines.append(
                json.dumps(
                    {"key": key, "seed": seed, "result": payload, "version": self.version},
                    sort_keys=True,
                )
                + "\n"
            )
        if not lines:
            return 0
        data = "".join(lines)
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        self.bytes_written += len(data.encode("utf-8"))
        return len(lines)


class CheckpointJournal:
    """The ``--checkpoint`` entry point: a thin adapter over a store backend.

    Construction is exactly the PR 6 signature plus ``allow_stale``; the
    backend is chosen from the path suffix (``*.sqlite`` / ``*.sqlite3`` /
    ``*.db`` open a persistent :class:`~repro.store.result_store.ResultStore`,
    anything else the append-only :class:`JsonlResultStore`).  All resume
    entry points -- ``monte_carlo``, ``run_scenario``, ``run_study``,
    ``SweepPool`` -- talk only to the shared ``lookup`` / ``record`` /
    ``record_many`` surface, so they are unchanged byte for byte.
    """

    _SQLITE_SUFFIXES = (".sqlite", ".sqlite3", ".db")

    def __init__(self, path: Any, resume: bool = False, allow_stale: bool = False) -> None:
        self.path = str(path)
        self.resume = bool(resume)
        self.allow_stale = bool(allow_stale)
        if self.path.endswith(self._SQLITE_SUFFIXES):
            self.backend: Union[ResultStore, JsonlResultStore] = ResultStore(
                self.path, fresh=not resume, allow_stale=allow_stale
            )
        else:
            self.backend = JsonlResultStore(self.path, resume=resume, allow_stale=allow_stale)

    # ------------------------------------------------------------- delegation

    def __len__(self) -> int:
        return len(self.backend)

    def __contains__(self, key_seed: Tuple[str, int]) -> bool:
        return key_seed in self.backend

    def lookup(self, key: str, seeds: Sequence[int]) -> Dict[int, Any]:
        return self.backend.lookup(key, seeds)

    def record(self, key: str, seed: int, result: Any) -> bool:
        return self.backend.record(key, seed, result)

    def record_many(self, key: str, pairs: Sequence[Tuple[int, Any]]) -> int:
        return self.backend.record_many(key, pairs)

    @property
    def kind(self) -> str:
        return self.backend.kind

    @property
    def version(self) -> str:
        return self.backend.version

    @property
    def hits(self) -> int:
        return self.backend.hits

    @property
    def misses(self) -> int:
        return self.backend.misses

    @property
    def bytes_written(self) -> int:
        return self.backend.bytes_written

    @property
    def stale_ignored(self) -> int:
        return self.backend.stale_ignored
