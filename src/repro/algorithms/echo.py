"""The echo (wave) algorithm.

A classic termination-detecting broadcast: the initiator sends tokens to all
neighbours; every other node, upon its first token, records the sender as its
parent and forwards tokens to its remaining neighbours; once a node has
received tokens from *all* neighbours it echoes back to its parent.  When the
initiator has heard from all neighbours the wave has covered the network and
the initiator *decides*.

The echo algorithm serves two purposes in this library: it exercises the
substrate on arbitrary (non-ring) topologies, and its decide event gives the
integration tests a natural "global termination" milestone whose time can be
related to the expected-delay bound of the ABE model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.network.node import NodeProgram

__all__ = ["EchoToken", "EchoProgram"]


@dataclass(frozen=True)
class EchoToken:
    """A wave token; ``is_echo`` marks the reply travelling back to the parent."""

    wave_id: int
    is_echo: bool = False


class EchoProgram(NodeProgram):
    """Per-node echo/wave program for bidirectional topologies.

    The algorithm identifies its parent by the uid of the neighbour whose
    token arrived first and replies over the outgoing channel leading back to
    it, so it works on any topology in which every link is bidirectional
    (line, star, tree, grid, bidirectional ring, connected random graphs).
    """

    def __init__(self, is_initiator: bool = False, wave_id: int = 0) -> None:
        super().__init__()
        self.is_initiator = is_initiator
        self.wave_id = wave_id
        self.parent_uid: Optional[int] = None
        self.tokens_received = 0
        self.decided = False

    def on_start(self) -> None:
        if self.is_initiator:
            self.send_all(EchoToken(wave_id=self.wave_id))

    def on_receive(self, payload: EchoToken, port: int) -> None:
        if not isinstance(payload, EchoToken):
            raise TypeError(f"unexpected payload {payload!r}")
        self.tokens_received += 1
        sender_uid = self.in_neighbor(port)
        if not self.is_initiator and self.parent_uid is None and not payload.is_echo:
            self.parent_uid = sender_uid
            for out_port in range(self.out_degree):
                if self.out_neighbor(out_port) != sender_uid:
                    self.send(out_port, EchoToken(wave_id=self.wave_id))
        if self.tokens_received == self.in_degree:
            self._complete()

    def _complete(self) -> None:
        if self.is_initiator:
            self.decided = True
            self.metrics.increment("echo_decisions")
            self.metrics.mark("echo_decided", self.now)
            self.trace("decide", wave=self.wave_id)
        else:
            assert self.parent_uid is not None
            self.send(self.port_to(self.parent_uid), EchoToken(wave_id=self.wave_id, is_echo=True))

    def result(self) -> bool:
        """``True`` at the initiator once the wave has completed."""
        return self.decided
