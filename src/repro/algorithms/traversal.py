"""Ring traversal (token circulation).

The simplest possible ring workload: a single token is passed around the ring
a configurable number of laps.  It is used by the substrate tests (delivery
order, delay accounting, clock interaction) and by the examples to illustrate
how expected traversal time relates to the expected-delay bound ``delta`` of
the ABE model: one lap over ``n`` channels with expected per-hop delay
``delta`` takes ``n * delta`` expected time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.network.node import NodeProgram

__all__ = ["TraversalToken", "RingTraversalProgram"]

RING_PORT = 0


@dataclass(frozen=True)
class TraversalToken:
    """The circulating token: total hops travelled and lap count so far."""

    hops: int
    laps: int


class RingTraversalProgram(NodeProgram):
    """Per-node token-passing program for unidirectional rings.

    Parameters
    ----------
    is_initiator:
        The single node that injects the token and counts laps.
    target_laps:
        Number of full laps after which the initiator stops the circulation.
    """

    def __init__(self, is_initiator: bool = False, target_laps: int = 1) -> None:
        super().__init__()
        if target_laps < 1:
            raise ValueError("target_laps must be >= 1")
        self.is_initiator = is_initiator
        self.target_laps = target_laps
        self.completed_laps = 0
        self.lap_times: List[float] = []
        self.tokens_seen = 0
        self._lap_start: Optional[float] = None

    def on_start(self) -> None:
        if self.is_initiator:
            self._lap_start = self.now
            self.send(RING_PORT, TraversalToken(hops=1, laps=0))

    def on_receive(self, payload: TraversalToken, port: int) -> None:
        if not isinstance(payload, TraversalToken):
            raise TypeError(f"unexpected payload {payload!r}")
        self.tokens_seen += 1
        if self.is_initiator:
            self._complete_lap(payload)
        else:
            self.send(RING_PORT, TraversalToken(hops=payload.hops + 1, laps=payload.laps))

    def _complete_lap(self, payload: TraversalToken) -> None:
        self.completed_laps += 1
        if self._lap_start is not None:
            self.lap_times.append(self.now - self._lap_start)
        self.metrics.increment("laps_completed")
        if self.completed_laps >= self.target_laps:
            self.trace("done", laps=self.completed_laps)
            self._require_node().network.request_stop()
            return
        self._lap_start = self.now
        self.send(RING_PORT, TraversalToken(hops=payload.hops + 1, laps=self.completed_laps))

    def result(self) -> int:
        """Number of completed laps observed by this node (initiator only)."""
        return self.completed_laps
