"""Distributed algorithms used as baselines and substrates.

Two families live here:

* **Leader-election baselines** (:mod:`repro.algorithms.leader_election`) --
  the algorithms the paper positions itself against: the probabilistic
  Itai-Rodeh election for anonymous rings, and the classical
  identifier-based ring elections (Chang-Roberts, Dolev-Klawe-Rodeh /
  Peterson, Franklin).  Experiment E6 compares their message complexity with
  the ABE election algorithm.
* **Auxiliary algorithms** -- asynchronous flooding, echo (wave) and ring
  traversal used as building blocks and test workloads, plus the *synchronous*
  client algorithms (:mod:`repro.algorithms.synchronous`) that the
  synchronizers of :mod:`repro.synchronizers` execute round-by-round.
"""

from repro.algorithms.base import ElectionTally, LeaderElectionProgram, run_ring_election
from repro.algorithms.flooding import FloodingProgram
from repro.algorithms.echo import EchoProgram
from repro.algorithms.traversal import RingTraversalProgram
from repro.algorithms.synchronous import (
    FloodingSync,
    MaxComputationSync,
    RoundCounterSync,
    SynchronousExecutor,
    SyncProcess,
)

__all__ = [
    "ElectionTally",
    "LeaderElectionProgram",
    "run_ring_election",
    "FloodingProgram",
    "EchoProgram",
    "RingTraversalProgram",
    "SyncProcess",
    "SynchronousExecutor",
    "FloodingSync",
    "MaxComputationSync",
    "RoundCounterSync",
]
