"""Asynchronous flooding (information dissemination).

A designated initiator floods a value through the network: every node forwards
the value to all neighbours the first time it receives it.  Flooding is used
as a simple workload for the network substrate tests and as the asynchronous
counterpart of :class:`repro.algorithms.synchronous.FloodingSync`, whose
round-by-round behaviour under a synchronizer is compared against it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from repro.network.node import NodeProgram

__all__ = ["FloodMessage", "FloodingProgram"]


@dataclass(frozen=True)
class FloodMessage:
    """The flooded value plus the hop distance it has travelled."""

    value: Any
    hops: int


class FloodingProgram(NodeProgram):
    """Per-node flooding program.

    Parameters
    ----------
    is_initiator:
        Whether this node starts the flood.
    value:
        The value the initiator floods (ignored at non-initiators).
    """

    def __init__(self, is_initiator: bool = False, value: Any = None) -> None:
        super().__init__()
        self.is_initiator = is_initiator
        self.initial_value = value
        self.received_value: Any = None
        self.received_hops: Optional[int] = None
        self.informed = False

    def on_start(self) -> None:
        if not self.is_initiator:
            return
        self.informed = True
        self.received_value = self.initial_value
        self.received_hops = 0
        self.send_all(FloodMessage(value=self.initial_value, hops=1))

    def on_receive(self, payload: FloodMessage, port: int) -> None:
        if not isinstance(payload, FloodMessage):
            raise TypeError(f"unexpected payload {payload!r}")
        if self.informed:
            return
        self.informed = True
        self.received_value = payload.value
        self.received_hops = payload.hops
        self.metrics.increment("flood_informed")
        self.send_all(FloodMessage(value=payload.value, hops=payload.hops + 1))

    def result(self) -> Any:
        """The value this node learned (``None`` if never informed)."""
        return self.received_value
