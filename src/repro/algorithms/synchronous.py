"""Synchronous algorithms and their round-by-round executor.

Synchronizers (Section 2 of the paper, Theorem 1) exist to run *synchronous*
algorithms on weaker network models.  This module defines

* :class:`SyncProcess` -- the interface of a per-node synchronous algorithm:
  produce the messages of round 0, then repeatedly consume the messages
  delivered in round ``r`` and produce the messages of round ``r + 1``;
* :class:`SynchronousExecutor` -- the ground-truth executor that runs
  :class:`SyncProcess` instances in lockstep global rounds (the "synchronous
  network" of the paper);
* three concrete synchronous algorithms used as synchronizer clients:
  :class:`FloodingSync`, :class:`MaxComputationSync` and
  :class:`RoundCounterSync`.

The synchronizers in :mod:`repro.synchronizers` host the very same
:class:`SyncProcess` objects and must deliver the same per-node results as the
executor -- that equivalence is one of the correctness obligations listed in
DESIGN.md.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

from repro.network.topology import Topology

__all__ = [
    "SyncContext",
    "SyncProcess",
    "SynchronousExecutor",
    "SyncExecutionResult",
    "FloodingSync",
    "MaxComputationSync",
    "RoundCounterSync",
]


@dataclass(frozen=True)
class SyncContext:
    """Static knowledge handed to a :class:`SyncProcess` before round 0."""

    uid: int
    n: int
    out_degree: int
    in_degree: int


class SyncProcess(abc.ABC):
    """A per-node synchronous algorithm.

    Life cycle::

        process.setup(ctx)
        outbox = process.initial_messages()          # round 0 sends
        while not process.finished:
            inbox = <messages delivered this round>   # {in_port: payload}
            outbox = process.compute(r, inbox)        # round r+1 sends

    Messages are addressed by *outgoing port*; the inbox is keyed by
    *incoming port*.  A process that returns an empty outbox simply sends
    nothing that round (the synchronizer may still need to send padding
    messages -- that is exactly the overhead Theorem 1 is about).
    """

    def __init__(self) -> None:
        self.ctx: Optional[SyncContext] = None

    def setup(self, ctx: SyncContext) -> None:
        """Install the static context (called once before round 0)."""
        self.ctx = ctx

    def _require_ctx(self) -> SyncContext:
        if self.ctx is None:
            raise RuntimeError(f"{type(self).__name__}.setup() was never called")
        return self.ctx

    @abc.abstractmethod
    def initial_messages(self) -> Dict[int, Any]:
        """Messages to send in round 0, keyed by outgoing port."""

    @abc.abstractmethod
    def compute(self, round_index: int, inbox: Dict[int, Any]) -> Dict[int, Any]:
        """Consume round ``round_index`` messages, return round ``r+1`` sends."""

    @property
    @abc.abstractmethod
    def finished(self) -> bool:
        """Whether the process has terminated locally."""

    def result(self) -> Any:
        """Algorithm-specific output (defaults to ``None``)."""
        return None


@dataclass
class SyncExecutionResult:
    """Outcome of a synchronous (or synchronized) execution."""

    rounds: int
    results: List[Any]
    algorithm_messages: int

    def __iter__(self):
        return iter(self.results)


class SynchronousExecutor:
    """Runs :class:`SyncProcess` instances in lockstep global rounds.

    This is the reference semantics ("synchronous network"): all round-``r``
    messages are delivered before any round-``r+1`` computation happens.  The
    synchronizer correctness tests compare against its output.
    """

    def __init__(
        self,
        topology: Topology,
        process_factory: Callable[[int], SyncProcess],
    ) -> None:
        self.topology = topology
        self.processes: List[SyncProcess] = []
        # Port maps identical to the ones Network builds: the k-th outgoing
        # edge of u is out-port k; the k-th incoming edge of v is in-port k.
        self._out_ports: Dict[int, List[int]] = {u: [] for u in range(topology.n)}
        self._in_port_of_edge: Dict[int, int] = {}
        in_counts = {u: 0 for u in range(topology.n)}
        for edge_index, (source, destination) in enumerate(topology.edges):
            self._out_ports[source].append(edge_index)
            self._in_port_of_edge[edge_index] = in_counts[destination]
            in_counts[destination] += 1
        for uid in range(topology.n):
            process = process_factory(uid)
            process.setup(
                SyncContext(
                    uid=uid,
                    n=topology.n,
                    out_degree=topology.out_degree(uid),
                    in_degree=topology.in_degree(uid),
                )
            )
            self.processes.append(process)

    def _route(self, sender: int, outbox: Dict[int, Any]) -> List:
        """Translate an outbox into ``(destination, in_port, payload)`` triples."""
        deliveries = []
        for out_port, payload in outbox.items():
            if not (0 <= out_port < len(self._out_ports[sender])):
                raise ValueError(
                    f"process {sender} addressed non-existent out port {out_port}"
                )
            edge_index = self._out_ports[sender][out_port]
            destination = self.topology.edges[edge_index][1]
            in_port = self._in_port_of_edge[edge_index]
            deliveries.append((destination, in_port, payload))
        return deliveries

    def run(self, max_rounds: int = 10_000) -> SyncExecutionResult:
        """Execute until every process is finished (or ``max_rounds`` is hit)."""
        if max_rounds < 1:
            raise ValueError("max_rounds must be >= 1")
        total_messages = 0
        outboxes = [process.initial_messages() for process in self.processes]
        rounds = 0
        for round_index in range(max_rounds):
            if all(process.finished for process in self.processes):
                break
            inboxes: List[Dict[int, Any]] = [dict() for _ in self.processes]
            for sender, outbox in enumerate(outboxes):
                for destination, in_port, payload in self._route(sender, outbox):
                    inboxes[destination][in_port] = payload
                total_messages += len(outbox)
            outboxes = [
                process.compute(round_index, inboxes[uid]) if not process.finished else {}
                for uid, process in enumerate(self.processes)
            ]
            rounds = round_index + 1
        return SyncExecutionResult(
            rounds=rounds,
            results=[process.result() for process in self.processes],
            algorithm_messages=total_messages,
        )


# --------------------------------------------------------------------- clients


class FloodingSync(SyncProcess):
    """Synchronous flooding: the initiator's value spreads one hop per round.

    A node terminates once it has known the value for one full round (so its
    forwarding send has happened); the executor stops when everyone is done.
    """

    def __init__(self, is_initiator: bool = False, value: Any = None, max_rounds: int = 0) -> None:
        super().__init__()
        self.is_initiator = is_initiator
        self.value = value if is_initiator else None
        self.learned_round: Optional[int] = -1 if is_initiator else None
        self.max_rounds = max_rounds
        self._forwarded = False
        self._rounds_seen = 0

    def initial_messages(self) -> Dict[int, Any]:
        ctx = self._require_ctx()
        if self.is_initiator:
            self._forwarded = True
            return {port: self.value for port in range(ctx.out_degree)}
        return {}

    def compute(self, round_index: int, inbox: Dict[int, Any]) -> Dict[int, Any]:
        ctx = self._require_ctx()
        self._rounds_seen = round_index + 1
        if self.value is None and inbox:
            self.value = next(iter(inbox.values()))
            self.learned_round = round_index
            self._forwarded = True
            return {port: self.value for port in range(ctx.out_degree)}
        return {}

    @property
    def finished(self) -> bool:
        # Flooding needs at most n - 1 rounds to reach everyone; the process
        # simply runs for that fixed horizon (or the user-supplied one).
        ctx = self.ctx
        horizon = self.max_rounds if self.max_rounds else (ctx.n if ctx else 1)
        return self._rounds_seen >= horizon

    def result(self) -> Any:
        return (self.value, self.learned_round)


class MaxComputationSync(SyncProcess):
    """Every node learns the global maximum of the per-node inputs.

    Each round a node sends its current maximum to all neighbours and adopts
    the largest value it hears.  After ``rounds_needed`` rounds (defaults to
    ``n``, an upper bound on the diameter) every node holds the global
    maximum.  This is the canonical client for the synchronizer-equivalence
    tests because its result is sensitive to any lost or mis-rounded message.
    """

    def __init__(self, value: float, rounds_needed: Optional[int] = None) -> None:
        super().__init__()
        self.current = value
        self.rounds_needed = rounds_needed
        self._round = 0

    def initial_messages(self) -> Dict[int, Any]:
        ctx = self._require_ctx()
        return {port: self.current for port in range(ctx.out_degree)}

    def compute(self, round_index: int, inbox: Dict[int, Any]) -> Dict[int, Any]:
        ctx = self._require_ctx()
        for value in inbox.values():
            if value > self.current:
                self.current = value
        self._round = round_index + 1
        if self.finished:
            return {}
        return {port: self.current for port in range(ctx.out_degree)}

    @property
    def finished(self) -> bool:
        ctx = self.ctx
        needed = self.rounds_needed if self.rounds_needed is not None else (ctx.n if ctx else 1)
        return self._round >= needed

    def result(self) -> float:
        return self.current


class RoundCounterSync(SyncProcess):
    """A heartbeat process that runs a fixed number of rounds.

    Every round it sends one message per outgoing port, so the *algorithm*
    message count is exactly ``rounds * sum(out_degree)`` -- a known baseline
    against which the synchronizer's added control messages (Theorem 1's
    ``>= n`` per round) can be measured precisely.
    """

    def __init__(self, rounds: int) -> None:
        super().__init__()
        if rounds < 1:
            raise ValueError("rounds must be >= 1")
        self.rounds = rounds
        self._round = 0
        self.heartbeats_received = 0

    def initial_messages(self) -> Dict[int, Any]:
        ctx = self._require_ctx()
        return {port: ("hb", 0) for port in range(ctx.out_degree)}

    def compute(self, round_index: int, inbox: Dict[int, Any]) -> Dict[int, Any]:
        ctx = self._require_ctx()
        self.heartbeats_received += len(inbox)
        self._round = round_index + 1
        if self.finished:
            return {}
        return {port: ("hb", self._round) for port in range(ctx.out_degree)}

    @property
    def finished(self) -> bool:
        return self._round >= self.rounds

    def result(self) -> int:
        return self.heartbeats_received
