"""Dolev-Klawe-Rodeh (Peterson) election for unidirectional rings.

The classical O(n log n) *worst-case* election for unidirectional rings with
unique identifiers (discovered independently by Peterson).  Execution proceeds
in phases; in every phase an active node compares the identifier of its
nearest active predecessor against both its own identifier and that of the
second-nearest active predecessor, and survives exactly when the predecessor's
identifier is the local maximum of the three.  At least half of the active
nodes become relays each phase, hence the logarithmic number of phases.

The algorithm assumes FIFO channels (a phase-2 message must not overtake the
phase-1 message it follows); :func:`run_dolev_klawe_rodeh` therefore builds
the ring with FIFO channels.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from repro.algorithms.base import (
    ElectionTally,
    LeaderElectionProgram,
    RingElectionResult,
    run_ring_election,
)
from repro.network.adversary import AdversarialDelay
from repro.network.delays import DelayDistribution

__all__ = ["DolevKlaweRodehProgram", "run_dolev_klawe_rodeh"]

RING_PORT = 0


@dataclass(frozen=True)
class _DkrToken:
    """A DKR message: ``kind`` is 1 (first forward) or 2 (second forward)."""

    kind: int
    value: int


class DolevKlaweRodehProgram(LeaderElectionProgram):
    """Per-node Dolev-Klawe-Rodeh program."""

    def __init__(self, tally: ElectionTally) -> None:
        super().__init__(tally)
        self.current_value: Optional[int] = None
        self.neighbour_value: Optional[int] = None
        self.relay = False

    def on_start(self) -> None:
        identifier = self.knowledge_item("id")
        if identifier is None:
            raise RuntimeError(
                "Dolev-Klawe-Rodeh requires unique identifiers (knowledge key 'id')"
            )
        self.current_value = identifier
        self.send(RING_PORT, _DkrToken(kind=1, value=identifier))

    def on_receive(self, payload: _DkrToken, port: int) -> None:
        if not isinstance(payload, _DkrToken):
            raise TypeError(f"unexpected payload {payload!r}")
        if self.relay:
            self.send(RING_PORT, payload)
            return
        if payload.kind == 1:
            self._receive_first(payload)
        else:
            self._receive_second(payload)

    def _receive_first(self, payload: _DkrToken) -> None:
        assert self.current_value is not None
        if payload.value == self.current_value:
            # The value survived a full circuit of active nodes: it is the
            # global maximum and this node currently represents it.
            self.declare_leader()
            return
        self.neighbour_value = payload.value
        self.send(RING_PORT, _DkrToken(kind=2, value=payload.value))

    def _receive_second(self, payload: _DkrToken) -> None:
        assert self.current_value is not None
        neighbour = self.neighbour_value
        if neighbour is not None and neighbour > self.current_value and neighbour > payload.value:
            # The nearest active predecessor's value is a local maximum: adopt
            # it and stay active for the next phase.
            self.current_value = neighbour
            self.neighbour_value = None
            self.send(RING_PORT, _DkrToken(kind=1, value=self.current_value))
        else:
            self.relay = True


def run_dolev_klawe_rodeh(
    n: int,
    *,
    delay: Optional[Union[DelayDistribution, AdversarialDelay]] = None,
    seed: int = 0,
    batch_sampling: bool = True,
    max_events: Optional[int] = None,
    on_budget: str = "stop",
) -> RingElectionResult:
    """Run Dolev-Klawe-Rodeh on a unidirectional FIFO ring of size ``n``."""
    return run_ring_election(
        lambda uid, tally: DolevKlaweRodehProgram(tally),
        n,
        algorithm_name="dolev-klawe-rodeh",
        bidirectional=False,
        delay=delay,
        seed=seed,
        batch_sampling=batch_sampling,
        fifo=True,
        with_identifiers=True,
        max_events=max_events,
        on_budget=on_budget,
    )
