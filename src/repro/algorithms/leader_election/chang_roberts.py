"""Chang-Roberts leader election for unidirectional rings with identifiers.

The classical identifier-based election: every node sends its identifier
around the ring; identifiers smaller than the local one are swallowed, larger
ones are forwarded, and the node that receives its own identifier back has the
ring maximum and becomes leader.

Message complexity is O(n log n) on average over random identifier placements
and O(n^2) in the worst case -- both superlinear, which is the comparison
point experiment E6 sets against the ABE election's linear average.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from repro.algorithms.base import (
    ElectionTally,
    LeaderElectionProgram,
    RingElectionResult,
    run_ring_election,
)
from repro.network.adversary import AdversarialDelay
from repro.network.delays import DelayDistribution

__all__ = ["ChangRobertsProgram", "run_chang_roberts"]

RING_PORT = 0


@dataclass(frozen=True)
class _IdToken:
    """An identifier travelling around the ring."""

    identifier: int


class ChangRobertsProgram(LeaderElectionProgram):
    """Per-node Chang-Roberts program.

    Every node is an initiator.  The node's identifier comes from the
    ``"id"`` knowledge item installed by :func:`run_ring_election`.
    """

    def __init__(self, tally: ElectionTally) -> None:
        super().__init__(tally)
        self.identifier: Optional[int] = None
        self.passive = False

    def on_start(self) -> None:
        self.identifier = self.knowledge_item("id")
        if self.identifier is None:
            raise RuntimeError(
                "Chang-Roberts requires unique identifiers (knowledge key 'id')"
            )
        self.send(RING_PORT, _IdToken(self.identifier))

    def on_receive(self, payload: _IdToken, port: int) -> None:
        if not isinstance(payload, _IdToken):
            raise TypeError(f"unexpected payload {payload!r}")
        assert self.identifier is not None
        if payload.identifier == self.identifier:
            self.declare_leader()
            return
        if payload.identifier > self.identifier:
            self.passive = True
            self.send(RING_PORT, payload)
        # Smaller identifiers are swallowed.


def run_chang_roberts(
    n: int,
    *,
    delay: Optional[Union[DelayDistribution, AdversarialDelay]] = None,
    seed: int = 0,
    batch_sampling: bool = True,
    max_events: Optional[int] = None,
    on_budget: str = "stop",
) -> RingElectionResult:
    """Run Chang-Roberts on a unidirectional ring of size ``n``."""
    return run_ring_election(
        lambda uid, tally: ChangRobertsProgram(tally),
        n,
        algorithm_name="chang-roberts",
        bidirectional=False,
        delay=delay,
        seed=seed,
        batch_sampling=batch_sampling,
        with_identifiers=True,
        max_events=max_events,
        on_budget=on_budget,
    )
