"""Itai-Rodeh probabilistic leader election for anonymous rings of known size.

The reference algorithm for anonymous rings [Itai & Rodeh 1990], cited by the
paper as "the most optimal leader election algorithms known for anonymous,
synchronous rings".  Nodes have no identifiers; instead each election round
every active node draws a random identity from ``{1, .., n}`` and sends it
around the ring.  The round's maximum identity wins unless several nodes drew
it (detected via the ``unique`` bit), in which case the tied nodes run another
round among themselves.

The variant implemented here carries explicit round numbers in the messages
(the original formulation), which makes it correct on asynchronous -- and
hence ABE -- rings without FIFO assumptions: a message is compared to the
receiving active node's ``(round, id)`` pair lexicographically.

Expected message complexity is Theta(n log n): each round costs Theta(n)
messages per surviving candidate group and the expected number of rounds is
O(log n) in the worst case over adversarial timings (O(1) rounds for the
synchronous schedule).  Experiment E6 measures the actual cost next to the ABE
election.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from repro.algorithms.base import (
    ElectionTally,
    LeaderElectionProgram,
    RingElectionResult,
    run_ring_election,
)
from repro.network.adversary import AdversarialDelay
from repro.network.delays import DelayDistribution

__all__ = ["ItaiRodehProgram", "run_itai_rodeh"]

RING_PORT = 0


@dataclass(frozen=True)
class _IrToken:
    """An Itai-Rodeh election message.

    Attributes
    ----------
    round_number:
        Election round the message belongs to.
    identity:
        The random identity drawn by the originator for this round.
    hop:
        Hop counter (1 when freshly sent; ``n`` when back at the originator).
    unique:
        Cleared by any other active node that drew the same identity in the
        same round, signalling a tie.
    """

    round_number: int
    identity: int
    hop: int
    unique: bool


class ItaiRodehProgram(LeaderElectionProgram):
    """Per-node Itai-Rodeh program (anonymous, known ring size)."""

    def __init__(self, tally: ElectionTally, identity_space: Optional[int] = None) -> None:
        super().__init__(tally)
        self.identity_space = identity_space
        self.active = True
        self.round_number = 1
        self.identity: Optional[int] = None

    # ------------------------------------------------------------------ start

    def on_start(self) -> None:
        if self.n is None:
            raise RuntimeError("Itai-Rodeh requires the ring size n to be known")
        self._start_round(1)

    def _start_round(self, round_number: int) -> None:
        space = self.identity_space if self.identity_space is not None else self.n or 2
        self.round_number = round_number
        self.identity = self.rng.randint(1, space)
        self.tally.rounds = max(self.tally.rounds, round_number)
        self.metrics.increment("ir_rounds_started")
        self.send(
            RING_PORT,
            _IrToken(round_number=round_number, identity=self.identity, hop=1, unique=True),
        )

    # ---------------------------------------------------------------- receive

    def on_receive(self, payload: _IrToken, port: int) -> None:
        if not isinstance(payload, _IrToken):
            raise TypeError(f"unexpected payload {payload!r}")
        if not self.active:
            self.send(
                RING_PORT,
                _IrToken(
                    round_number=payload.round_number,
                    identity=payload.identity,
                    hop=payload.hop + 1,
                    unique=payload.unique,
                ),
            )
            return
        self._receive_while_active(payload)

    def _receive_while_active(self, payload: _IrToken) -> None:
        assert self.identity is not None
        ring_size = self.n or 0
        own_key = (self.round_number, self.identity)
        msg_key = (payload.round_number, payload.identity)

        if payload.hop == ring_size and msg_key == own_key:
            # The node's own message returned after a full traversal.
            if payload.unique:
                self.declare_leader()
            else:
                # Tie: every node that drew the winning identity starts the
                # next round.
                self._start_round(self.round_number + 1)
            return

        if msg_key > own_key:
            # A strictly stronger candidate exists: defer to it.
            self.active = False
            self.send(
                RING_PORT,
                _IrToken(
                    round_number=payload.round_number,
                    identity=payload.identity,
                    hop=payload.hop + 1,
                    unique=payload.unique,
                ),
            )
        elif msg_key == own_key:
            # Same round and identity but not the node's own message (hop < n):
            # another candidate drew the same identity -- mark the tie.
            self.send(
                RING_PORT,
                _IrToken(
                    round_number=payload.round_number,
                    identity=payload.identity,
                    hop=payload.hop + 1,
                    unique=False,
                ),
            )
        # Strictly weaker messages are swallowed.

    def result(self) -> bool:
        return self.elected


def run_itai_rodeh(
    n: int,
    *,
    delay: Optional[Union[DelayDistribution, AdversarialDelay]] = None,
    seed: int = 0,
    identity_space: Optional[int] = None,
    batch_sampling: bool = True,
    max_events: Optional[int] = None,
    on_budget: str = "stop",
) -> RingElectionResult:
    """Run Itai-Rodeh on an anonymous unidirectional ring of size ``n``."""
    return run_ring_election(
        lambda uid, tally: ItaiRodehProgram(tally, identity_space=identity_space),
        n,
        algorithm_name="itai-rodeh",
        bidirectional=False,
        delay=delay,
        seed=seed,
        batch_sampling=batch_sampling,
        with_identifiers=False,
        max_events=max_events,
        on_budget=on_budget,
    )
