"""Franklin's election algorithm for bidirectional rings.

Franklin's O(n log n) election: in each round every active node sends its
identifier to both neighbours and receives the identifiers of its nearest
active neighbours on both sides (relayed transparently by passive nodes).  A
node stays active only if its identifier is a strict local maximum; receiving
its own identifier means it is the only active node left and it becomes
leader.  At least half of the active nodes drop out per round, giving the
logarithmic round count.

Messages carry the round number so that rounds may overlap in an asynchronous
(ABE) execution; a node buffers messages of future rounds until it gets there.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple, Union

from repro.algorithms.base import (
    ElectionTally,
    LeaderElectionProgram,
    RingElectionResult,
    run_ring_election,
)
from repro.network.adversary import AdversarialDelay
from repro.network.delays import DelayDistribution

__all__ = ["FranklinProgram", "run_franklin"]

#: Port numbering in :func:`repro.network.topology.bidirectional_ring`:
#: port 0 sends clockwise (to uid + 1), port 1 sends counter-clockwise.
CLOCKWISE = 0
COUNTER_CLOCKWISE = 1


@dataclass(frozen=True)
class _FranklinToken:
    """An identifier travelling in one direction during one round."""

    round_number: int
    identifier: int
    direction: int  # the port it keeps travelling on


class FranklinProgram(LeaderElectionProgram):
    """Per-node Franklin program (bidirectional ring, unique identifiers)."""

    def __init__(self, tally: ElectionTally) -> None:
        super().__init__(tally)
        self.identifier: Optional[int] = None
        self.active = True
        self.round_number = 1
        # Buffered identifiers keyed by (round, arrival side).
        self._pending: Dict[Tuple[int, int], int] = {}

    def on_start(self) -> None:
        self.identifier = self.knowledge_item("id")
        if self.identifier is None:
            raise RuntimeError(
                "Franklin's algorithm requires unique identifiers (knowledge key 'id')"
            )
        self._send_round()

    def _send_round(self) -> None:
        assert self.identifier is not None
        self.tally.rounds = max(self.tally.rounds, self.round_number)
        for direction in (CLOCKWISE, COUNTER_CLOCKWISE):
            self.send(
                direction,
                _FranklinToken(
                    round_number=self.round_number,
                    identifier=self.identifier,
                    direction=direction,
                ),
            )

    # ---------------------------------------------------------------- receive

    def on_receive(self, payload: _FranklinToken, port: int) -> None:
        if not isinstance(payload, _FranklinToken):
            raise TypeError(f"unexpected payload {payload!r}")
        if not self.active:
            # Passive nodes relay the token onward in its direction of travel.
            self.send(payload.direction, payload)
            return
        if payload.identifier == self.identifier:
            # Own identifier came back around: no other active node remains.
            self.declare_leader()
            return
        arrival_side = payload.direction
        self._pending[(payload.round_number, arrival_side)] = payload.identifier
        self._try_complete_round()

    def _try_complete_round(self) -> None:
        assert self.identifier is not None
        key_cw = (self.round_number, CLOCKWISE)
        key_ccw = (self.round_number, COUNTER_CLOCKWISE)
        if key_cw not in self._pending or key_ccw not in self._pending:
            return
        from_cw = self._pending.pop(key_cw)
        from_ccw = self._pending.pop(key_ccw)
        strongest_neighbour = max(from_cw, from_ccw)
        if strongest_neighbour > self.identifier:
            self.active = False
            # Any buffered future-round tokens must now be relayed onward,
            # unchanged, in their original direction of travel.
            for (round_number, side), identifier in sorted(self._pending.items()):
                self.send(
                    side,
                    _FranklinToken(
                        round_number=round_number,
                        identifier=identifier,
                        direction=side,
                    ),
                )
            self._pending.clear()
            return
        # Local maximum: proceed to the next round.
        self.round_number += 1
        self._send_round()
        self._try_complete_round()


def run_franklin(
    n: int,
    *,
    delay: Optional[Union[DelayDistribution, AdversarialDelay]] = None,
    seed: int = 0,
    batch_sampling: bool = True,
    max_events: Optional[int] = None,
    on_budget: str = "stop",
) -> RingElectionResult:
    """Run Franklin's algorithm on a bidirectional FIFO ring of size ``n``."""
    return run_ring_election(
        lambda uid, tally: FranklinProgram(tally),
        n,
        algorithm_name="franklin",
        bidirectional=True,
        delay=delay,
        seed=seed,
        batch_sampling=batch_sampling,
        fifo=True,
        with_identifiers=True,
        max_events=max_events,
        on_budget=on_budget,
    )
