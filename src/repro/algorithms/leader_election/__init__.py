"""Baseline leader-election algorithms for rings.

These are the algorithms the paper's introduction measures itself against:

* :mod:`~repro.algorithms.leader_election.itai_rodeh` -- probabilistic
  election for *anonymous* rings with known size (Itai & Rodeh 1990), the
  reference point for "the most optimal leader election algorithms known for
  anonymous, synchronous rings".
* :mod:`~repro.algorithms.leader_election.chang_roberts` -- the classical
  identifier-based unidirectional election (O(n log n) average, O(n^2) worst
  case messages).
* :mod:`~repro.algorithms.leader_election.dolev_klawe_rodeh` -- the
  O(n log n) worst-case unidirectional election (independently discovered by
  Peterson).
* :mod:`~repro.algorithms.leader_election.franklin` -- the O(n log n)
  bidirectional election.

Each module exposes both the :class:`~repro.network.node.NodeProgram`
subclass and a ``run_*`` convenience wrapper returning a
:class:`~repro.algorithms.base.RingElectionResult`, so experiment E6 can drive
all of them uniformly.
"""

from repro.algorithms.leader_election.itai_rodeh import ItaiRodehProgram, run_itai_rodeh
from repro.algorithms.leader_election.chang_roberts import (
    ChangRobertsProgram,
    run_chang_roberts,
)
from repro.algorithms.leader_election.dolev_klawe_rodeh import (
    DolevKlaweRodehProgram,
    run_dolev_klawe_rodeh,
)
from repro.algorithms.leader_election.franklin import FranklinProgram, run_franklin

__all__ = [
    "ItaiRodehProgram",
    "run_itai_rodeh",
    "ChangRobertsProgram",
    "run_chang_roberts",
    "DolevKlaweRodehProgram",
    "run_dolev_klawe_rodeh",
    "FranklinProgram",
    "run_franklin",
]
