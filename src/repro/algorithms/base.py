"""Shared machinery for the leader-election baselines.

All baseline election programs report their outcome through a shared
:class:`ElectionTally` (mirroring :class:`repro.core.election.ElectionStatus`)
so that the comparison experiment (E6) can treat the ABE election and every
baseline uniformly: build a ring, run until the tally reports a leader, read
the message counters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Union

from repro.network.adversary import AdversarialDelay
from repro.network.delays import DelayDistribution, ExponentialDelay
from repro.network.network import Network, NetworkConfig
from repro.network.node import NodeProgram
from repro.network.topology import Topology, bidirectional_ring, unidirectional_ring

__all__ = [
    "ElectionTally",
    "LeaderElectionProgram",
    "RingElectionResult",
    "build_ring_election",
    "run_ring_election",
]

DelayModel = Union[DelayDistribution, AdversarialDelay]


@dataclass
class ElectionTally:
    """Shared outcome record for one baseline election run.

    ``leaders_elected`` is a plain integer hot-path counter (mirroring
    :class:`repro.core.election.ElectionStatus`); :meth:`bind_metrics`
    republishes it through the network's metrics collector under the
    historical counter name.
    """

    leader_uid: Optional[int] = None
    election_time: Optional[float] = None
    leaders_elected: int = 0
    rounds: int = 0

    @property
    def decided(self) -> bool:
        """Whether some node has announced itself leader."""
        return self.leader_uid is not None

    def bind_metrics(self, metrics) -> None:
        """Expose the tally's counters through ``metrics`` (idempotent)."""
        metrics.bind_external_sum("leaders_elected", self, lambda: self.leaders_elected)


class LeaderElectionProgram(NodeProgram):
    """Base class for baseline election programs.

    Provides the ``declare_leader`` helper that fills in the shared tally,
    marks the metrics and (by default) stops the simulation, so concrete
    algorithms only implement their message handling.
    """

    def __init__(self, tally: ElectionTally, stop_network_on_election: bool = True) -> None:
        super().__init__()
        self.tally = tally
        self.stop_network_on_election = stop_network_on_election
        self.elected = False

    def bind(self, node) -> None:
        """Bind to the node and publish the shared tally's counters."""
        super().bind(node)
        self.tally.bind_metrics(node.network.metrics)

    def declare_leader(self) -> None:
        """Announce this node as the leader and record the outcome."""
        node = self._require_node()
        self.elected = True
        self.tally.leader_uid = node.uid
        self.tally.election_time = self.now
        self.tally.leaders_elected += 1
        self.metrics.mark("leader_elected", self.now)
        self.trace("decide", algorithm=type(self).__name__)
        if self.stop_network_on_election:
            node.network.request_stop()

    @property
    def is_leader(self) -> bool:
        """Whether this node declared itself leader."""
        return self.elected

    def result(self) -> bool:
        """``True`` for the leader, ``False`` otherwise."""
        return self.elected


@dataclass
class RingElectionResult:
    """Outcome and cost of one baseline election run (shape mirrors E6 needs)."""

    algorithm: str
    n: int
    elected: bool
    leader_uid: Optional[int]
    election_time: Optional[float]
    messages_total: int
    leaders_elected: int
    events_processed: int
    seed: int


def build_ring_election(
    program_factory: Callable[[int, ElectionTally], LeaderElectionProgram],
    n: int,
    *,
    bidirectional: bool = False,
    delay: Optional[DelayModel] = None,
    seed: int = 0,
    fifo: bool = False,
    with_identifiers: bool = True,
    size_known: bool = True,
    batch_sampling: bool = True,
    topology: Optional[Topology] = None,
) -> tuple:
    """Construct the network and shared tally for one baseline election run.

    Returns ``(network, tally)``.  Exposed separately from
    :func:`run_ring_election` (mirroring
    :func:`repro.core.runner.build_election_network`) so tests and the
    differential harness can inspect or instrument the network before
    running it.

    Parameters
    ----------
    program_factory:
        ``(uid, tally) -> LeaderElectionProgram``.
    with_identifiers:
        Whether nodes receive a unique identifier under the knowledge key
        ``"id"`` (a pseudo-random permutation of ``0..n-1`` derived from the
        seed).  Anonymous algorithms (Itai-Rodeh) set this to ``False``.
    bidirectional:
        Ring orientation; Franklin's algorithm needs both directions.
    batch_sampling:
        Draw channel delays through block samplers (a different deterministic
        random stream; see :class:`~repro.network.network.NetworkConfig`).
    """
    if n < 2:
        raise ValueError("ring elections need n >= 2")
    if topology is None:
        topology = bidirectional_ring(n) if bidirectional else unidirectional_ring(n)
    delay_model: DelayModel = delay if delay is not None else ExponentialDelay(mean=1.0)
    tally = ElectionTally()

    knowledge_factory = None
    if with_identifiers:
        # A deterministic, seed-dependent permutation of 0..n-1 as identifiers.
        import random as _random

        permutation = list(range(n))
        _random.Random(seed ^ 0x5EED1D5).shuffle(permutation)

        def knowledge_factory(uid: int):  # noqa: D401 - small closure
            return {"id": permutation[uid]}

    config = NetworkConfig(
        topology=topology,
        delay_model=delay_model,
        seed=seed,
        fifo=fifo,
        size_known=size_known,
        knowledge_factory=knowledge_factory,
        enable_trace=False,
        batch_sampling=batch_sampling,
    )
    network = Network(config, lambda uid: program_factory(uid, tally))
    network.stop_when(lambda: tally.decided)
    return network, tally


def run_ring_election(
    program_factory: Callable[[int, ElectionTally], LeaderElectionProgram],
    n: int,
    *,
    algorithm_name: str = "baseline",
    bidirectional: bool = False,
    delay: Optional[DelayModel] = None,
    seed: int = 0,
    fifo: bool = False,
    with_identifiers: bool = True,
    size_known: bool = True,
    batch_sampling: bool = True,
    max_events: Optional[int] = None,
    max_time: Optional[float] = None,
    topology: Optional[Topology] = None,
    on_budget: str = "stop",
) -> RingElectionResult:
    """Run a baseline leader election on a ring and collect cost metrics.

    See :func:`build_ring_election` for the parameters.  ``on_budget="raise"``
    arms the divergence watchdog: exhausting ``max_events``/``max_time``
    without electing raises :class:`~repro.sim.engine.SimulationDiverged`
    instead of returning a truncated result.
    """
    if on_budget not in ("stop", "raise"):
        raise ValueError(f"on_budget must be 'stop' or 'raise', got {on_budget!r}")
    network, tally = build_ring_election(
        program_factory,
        n,
        bidirectional=bidirectional,
        delay=delay,
        seed=seed,
        fifo=fifo,
        with_identifiers=with_identifiers,
        size_known=size_known,
        batch_sampling=batch_sampling,
        topology=topology,
    )
    if max_events is None:
        max_events = 500_000 + 50_000 * n
    network.run(
        until=max_time, max_events=max_events, raise_on_limit=(on_budget == "raise")
    )
    return RingElectionResult(
        algorithm=algorithm_name,
        n=n,
        elected=tally.decided,
        leader_uid=tally.leader_uid,
        election_time=tally.election_time,
        messages_total=network.messages_sent(),
        leaders_elected=tally.leaders_elected,
        events_processed=network.simulator.events_processed,
        seed=seed,
    )
