"""Plain-text rendering of scenario runs (the ``abe-repro scenario`` output).

Scenario results are heterogeneous (election results, wave results, battery
rows, measurement tuples), so the renderer is generic: dataclass results
become per-trial table rows plus aggregate statistics over their numeric
fields; battery rows (lists of dicts) render as one table; anything else
falls back to ``repr``.  The fixed-width layout is shared with the
experiment reports (:mod:`repro.experiments.reporting`).
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, List, Optional, Sequence

from repro.experiments.reporting import format_cell, format_table
from repro.experiments.results import ResultTable
from repro.scenarios.spec import ScenarioSpec, StudySpec

__all__ = [
    "scenario_table",
    "render_scenario",
    "study_scaling_fits",
    "render_study_scaling",
]

#: Cap on per-trial rows printed; aggregates always cover every trial.
MAX_ROWS = 20


def _result_rows(results: Sequence[Any]) -> List[Dict[str, Any]]:
    rows: List[Dict[str, Any]] = []
    for result in results:
        if dataclasses.is_dataclass(result) and not isinstance(result, type):
            rows.append(dataclasses.asdict(result))
        elif isinstance(result, dict):
            rows.append(dict(result))
        elif isinstance(result, (list, tuple)):
            rows.append({f"value_{i}": value for i, value in enumerate(result)})
        else:
            rows.append({"result": repr(result)})
    return rows


def scenario_table(spec: ScenarioSpec, results: Sequence[Any]) -> ResultTable:
    """Per-trial rows of one scenario run as a :class:`ResultTable`."""
    flat: List[Any] = []
    for result in results:
        # One-shot batteries return a list of rows per evaluation.
        if isinstance(result, list):
            flat.extend(result)
        else:
            flat.append(result)
    rows = _result_rows(flat)
    columns: List[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    table = ResultTable(
        title=f"scenario: {spec.algorithm} on {spec.topology.kind}", columns=columns
    )
    for row in rows[:MAX_ROWS]:
        table.add_row(**row)
    if len(rows) > MAX_ROWS:
        table.add_note(f"{len(rows) - MAX_ROWS} further row(s) omitted")
    return table


#: Identifier-like columns excluded from the aggregate statistics -- a mean
#: over derived 64-bit seeds or anonymous node uids is noise, not a metric.
_IDENTIFIER_COLUMNS = frozenset({"seed", "leader_uid", "node_uid", "uid"})


def _aggregates(rows: List[Dict[str, Any]]) -> List[str]:
    lines: List[str] = []
    if len(rows) < 2:
        return lines
    for key in rows[0]:
        if key in _IDENTIFIER_COLUMNS:
            continue
        values = [row.get(key) for row in rows]
        numeric = [float(v) for v in values if isinstance(v, (int, float)) and not isinstance(v, bool)]
        if len(numeric) == len(values) and numeric:
            mean = sum(numeric) / len(numeric)
            lines.append(
                f"  {key}: mean={format_cell(mean)} "
                f"min={format_cell(min(numeric))} max={format_cell(max(numeric))}"
            )
        elif all(isinstance(v, bool) for v in values):
            lines.append(f"  {key}: {sum(values)}/{len(values)} true")
    return lines


#: Metrics a ring-size study fits growth orders for (result attribute ->
#: whether only elected trials contribute).
_SCALING_METRICS = (("election_time", True), ("messages_total", False))


def study_scaling_fits(
    study: StudySpec, per_point: Sequence[Sequence[Any]]
) -> Optional[Dict[str, Any]]:
    """Fitted growth orders for a ring study sweeping >= 2 distinct sizes.

    Returns ``{"sizes": [...], "fits": {metric: fits}}`` where each ``fits``
    is the ordered mapping of :func:`repro.stats.complexity_fit.best_growth_order`
    (best first), or ``None`` when the study is not a ring-size scaling sweep
    (non-ring points, a single size, or no completed elections at some size).
    """
    from repro.stats.complexity_fit import best_growth_order

    sizes: List[int] = []
    means: Dict[str, List[float]] = {metric: [] for metric, _ in _SCALING_METRICS}
    for point, results in zip(study.points, per_point):
        node = point.topology
        if node.kind != "uniring" or "n" not in node.params:
            return None
        for metric, elected_only in _SCALING_METRICS:
            values = [
                float(getattr(result, metric))
                for result in results
                if getattr(result, metric, None) is not None
                and (not elected_only or getattr(result, "elected", False))
            ]
            if not values:
                return None
            means[metric].append(sum(values) / len(values))
        sizes.append(int(node.params["n"]))
    if len(set(sizes)) < 2:
        return None
    return {
        "sizes": sizes,
        "fits": {
            metric: best_growth_order(sizes, means[metric])
            for metric, _ in _SCALING_METRICS
        },
    }


def render_study_scaling(
    study: StudySpec, per_point: Sequence[Sequence[Any]]
) -> Optional[str]:
    """Plain-text scaling-law block for a ring-size study, or ``None``."""
    fitted = study_scaling_fits(study, per_point)
    if fitted is None:
        return None
    sizes = fitted["sizes"]
    lines = [
        f"== fitted scaling laws ({len(sizes)} sizes, "
        f"n = {min(sizes)} .. {max(sizes)}) ==",
    ]
    for metric, fits in fitted["fits"].items():
        best = next(iter(fits.values()))
        alternatives = ", ".join(
            f"{fit.model}: {fit.relative_error:.1%}"
            for fit in list(fits.values())[1:]
        )
        lines.append(
            f"  {metric}: best fit ~ {best.coefficient:.4g} * {best.model} "
            f"(rel err {best.relative_error:.1%}; next: {alternatives})"
        )
    return "\n".join(lines)


def render_scenario(spec: ScenarioSpec, results: Sequence[Any]) -> str:
    """Full plain-text report of one scenario run."""
    lines = [
        f"== scenario: {spec.algorithm} ==",
        f"topology : {spec.topology.kind} {spec.topology.params or ''}".rstrip(),
        f"trials   : {len(results)} (seed {spec.seed})",
        "",
    ]
    table = scenario_table(spec, results)
    lines.append(format_table(table))
    rows = _result_rows(
        [row for result in results for row in (result if isinstance(result, list) else [result])]
    )
    aggregates = _aggregates(rows)
    if aggregates:
        lines.append("")
        lines.append("aggregates over all trials:")
        lines.extend(aggregates)
    return "\n".join(lines)
