"""Declarative scenario API: one spec object, one registry, one entry point.

Any workload the library can simulate is described by a
:class:`~repro.scenarios.spec.ScenarioSpec` (a frozen, JSON-round-trippable
dataclass), resolved against string-keyed registries
(:mod:`repro.scenarios.registry`, :data:`~repro.scenarios.algorithms.ALGORITHMS`)
and executed through :func:`~repro.scenarios.runtime.run_scenario` /
:func:`~repro.scenarios.runtime.run_study`.  The experiments (e1..e8, a1,
a2) are thin analysis callbacks over :class:`~repro.scenarios.spec.StudySpec`
batteries, and ``abe-repro scenario <spec.json>`` runs spec files directly
-- see ``docs/SCENARIOS.md`` for the schema and the extension points.
"""

from repro.scenarios.spec import (
    ScenarioSpec,
    SpecNode,
    StudySpec,
    SweepSpec,
    load_spec,
    spec_from_dict,
)
from repro.scenarios.registry import (
    CHURN,
    CHURN_EVENTS,
    DELAYS,
    DRIFTS,
    SCHEDULES,
    TOPOLOGIES,
    Registry,
)
from repro.scenarios.algorithms import ALGORITHMS, AlgorithmEntry, WaveResult
from repro.scenarios.runtime import compile_trial, run_scenario, run_study
from repro.scenarios.report import (
    render_scenario,
    render_study_scaling,
    scenario_table,
    study_scaling_fits,
)

__all__ = [
    "ScenarioSpec",
    "SpecNode",
    "StudySpec",
    "SweepSpec",
    "load_spec",
    "spec_from_dict",
    "Registry",
    "TOPOLOGIES",
    "DELAYS",
    "DRIFTS",
    "SCHEDULES",
    "CHURN",
    "CHURN_EVENTS",
    "ALGORITHMS",
    "AlgorithmEntry",
    "WaveResult",
    "compile_trial",
    "run_scenario",
    "run_study",
    "render_scenario",
    "render_study_scaling",
    "study_scaling_fits",
    "scenario_table",
]
