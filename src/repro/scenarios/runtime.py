"""The single entry point from declarative specs to running simulations.

:func:`run_scenario` compiles one :class:`~repro.scenarios.spec.ScenarioSpec`
into the existing fast-path machinery
(:func:`repro.core.runner.run_election`, :func:`~repro.experiments.runner.monte_carlo`,
:class:`~repro.experiments.parallel.SweepPool`) and returns the trial
results.  The compiled trial, the derived seed list and the adaptive batch
boundaries are exactly the ones the hand-threaded experiment code produced,
so a spec that mirrors an experiment's parameters reproduces its results bit
for bit -- locked by the pre-refactor goldens in ``tests/harness``.

:func:`run_study` executes a :class:`~repro.scenarios.spec.StudySpec` -- an
ordered battery of points -- sharing one worker pool across the whole
battery.  One-shot batteries (each point a single deterministic evaluation,
e.g. E4/E5) fan the *points* across the pool; Monte-Carlo batteries fan each
point's *trials*.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.scenarios.algorithms import ALGORITHMS, AlgorithmEntry
from repro.scenarios.spec import ScenarioSpec, StudySpec

# NOTE: ``repro.experiments`` imports this module, so the experiment-harness
# pieces (monte_carlo, SweepPool, AdaptiveStopping) are imported lazily
# inside the entry points to keep the import graph acyclic.

__all__ = ["compile_trial", "run_scenario", "run_study"]


def compile_trial(spec: ScenarioSpec) -> Any:
    """Compile a spec into its picklable ``seed -> result`` trial callable.

    Resolution against the registries happens here, so unknown algorithm,
    topology, delay, drift or schedule kinds fail fast with the list of known
    keys, before any simulation starts.
    """
    entry: AlgorithmEntry = ALGORITHMS.get(spec.algorithm)
    return entry.build_trial(spec)


def run_scenario(
    spec: ScenarioSpec,
    *,
    pool: Optional[Any] = None,
    workers: Optional[int] = None,
    adaptive: Optional[Any] = None,
    stats_out: Optional[Dict[str, Any]] = None,
    checkpoint: Optional[Any] = None,
) -> List[Any]:
    """Run one scenario and return its (ordered) trial results.

    Parameters
    ----------
    pool:
        Optional shared :class:`~repro.experiments.parallel.SweepPool`; one
        pool can serve every point of a study.  Results are bit-identical for
        any pool/worker combination.
    workers:
        Worker processes when no pool is given (``None`` = the spec's
        ``workers`` field; ``0`` = one per CPU).
    adaptive:
        Overrides the spec's ``stopping`` rule; an unpinned metric resolves
        to the algorithm's default target.
    stats_out:
        Receives ``trials_executed``/``stopped_early`` under adaptive
        stopping.
    checkpoint:
        Optional :class:`~repro.experiments.resilience.CheckpointJournal` or
        :class:`~repro.store.ResultStore` (defaults to the ambient policy's
        journal).  Trials are keyed by ``(spec fingerprint, seed)`` -- the
        fingerprint is content-derived from the spec minus its
        execution-only fields, so a resumed study with a different worker
        count still hits the journal and produces bit-identical results.
        A spec that refuses a canonical fingerprint (an override whose repr
        carries a memory address -- a per-process key that could never hit)
        runs unjournaled.
    """
    from repro.experiments.resilience import JOURNAL_DISABLED, spec_fingerprint
    from repro.experiments.runner import monte_carlo  # late: avoids cycle

    entry: AlgorithmEntry = ALGORITHMS.get(spec.algorithm)
    run_one = entry.build_trial(spec)
    fingerprint = spec_fingerprint(spec)
    if fingerprint is None:
        # The spec layer's refusal is authoritative: never fall back to a
        # callable fingerprint for a spec-described workload.
        fingerprint = JOURNAL_DISABLED
    if entry.one_shot:
        if spec.trials != 1:
            raise ValueError(
                f"algorithm {spec.algorithm!r} is a one-shot evaluation; "
                f"use one point per parameter value instead of trials={spec.trials}"
            )
        return _checkpointed_one_shot(spec, run_one, fingerprint, checkpoint)
    rule = adaptive if adaptive is not None else spec.stopping
    if rule is not None:
        rule = rule.resolved(entry.metric)
    if pool is not None:
        return pool.monte_carlo(
            run_one,
            trials=spec.trials,
            base_seed=spec.seed,
            label=spec.label,
            adaptive=rule,
            stats_out=stats_out,
            checkpoint=checkpoint,
            checkpoint_key=fingerprint,
        )
    worker_count: Optional[int] = spec.workers if workers is None else workers
    if worker_count == 0:
        worker_count = None  # monte_carlo's "one per CPU" convention
    return monte_carlo(
        run_one,
        trials=spec.trials,
        base_seed=spec.seed,
        label=spec.label,
        workers=worker_count,
        adaptive=rule,
        stats_out=stats_out,
        checkpoint=checkpoint,
        checkpoint_key=fingerprint,
    )


def _checkpointed_one_shot(
    spec: ScenarioSpec, run_one: Any, fingerprint: Any, checkpoint: Optional[Any]
) -> List[Any]:
    """One-shot points consume the raw spec seed; journal them under it."""
    from repro.experiments.resilience import checkpointed_trials, resolve_checkpoint

    journal, key = resolve_checkpoint(checkpoint, fingerprint, run_one, spec.seed, spec.label)
    return checkpointed_trials(
        [spec.seed],
        lambda block: [run_one(seed) for seed in block],
        journal,
        key,
        record_batch=1,
    )


def _run_one_shot(spec: ScenarioSpec) -> Any:
    """Top-level point runner (must be picklable for pool fan-out)."""
    entry: AlgorithmEntry = ALGORITHMS.get(spec.algorithm)
    return entry.build_trial(spec)(spec.seed)


def run_study(
    study: StudySpec,
    *,
    pool: Optional[Any] = None,
    workers: Optional[int] = 1,
    adaptive: Optional[Any] = None,
    checkpoint: Optional[Any] = None,
) -> List[List[Any]]:
    """Run every point of a study; per-point result lists in point order.

    One :class:`~repro.experiments.parallel.SweepPool` (the caller's, or a
    fresh one sized by ``workers``) serves the whole battery, so pool startup
    is paid once per study rather than once per point.  ``adaptive``
    resolves its metric against the study's declared target.  ``checkpoint``
    (explicit or the ambient policy's journal) keys every trial by its
    point's spec fingerprint, so a killed study resumes exactly where it
    stopped -- across points as well as within one.
    """
    from repro.experiments.parallel import SweepPool  # late: avoids cycle
    from repro.experiments.resilience import current_policy

    journal = checkpoint
    if journal is None:
        policy = current_policy()
        journal = policy.checkpoint if policy is not None else None
    rule = adaptive
    if rule is not None:
        rule = rule.resolved(study.metric)
    points = list(study.points)
    entries = [ALGORITHMS.get(point.algorithm) for point in points]
    with SweepPool.ensure(pool, workers) as shared:
        if all(entry.one_shot for entry in entries):
            # One deterministic evaluation per point: fan the points
            # themselves across the pool (the E4/E5 shape).
            if journal is None:
                return [[result] for result in shared.map(_run_one_shot, points)]
            return _checkpointed_point_map(points, shared, journal)
        return [
            run_scenario(point, pool=shared, adaptive=rule, checkpoint=journal)
            for point in points
        ]


def _checkpointed_point_map(
    points: List[ScenarioSpec], shared: Any, journal: Any
) -> List[List[Any]]:
    """The one-shot study branch with a journal: run only the missing points.

    Each point is keyed by ``(its own fingerprint, its seed)``, looked up
    before dispatch, and the missing points are fanned out together (one
    ``map``, preserving the no-journal dispatch shape) then journaled.
    Failed placeholders are never journaled, so a resume re-attempts them;
    points whose spec refuses a canonical fingerprint always run and are
    never journaled.
    """
    from repro.experiments.resilience import TrialFailure, spec_fingerprint

    keys = [spec_fingerprint(point) for point in points]
    results: List[Any] = [None] * len(points)
    missing: List[int] = []
    for index, (point, key) in enumerate(zip(points, keys)):
        cached = journal.lookup(key, [point.seed]) if key is not None else {}
        if point.seed in cached:
            results[index] = cached[point.seed]
        else:
            missing.append(index)
    if missing:
        fresh = shared.map(_run_one_shot, [points[index] for index in missing])
        for index, result in zip(missing, fresh):
            results[index] = result
            if keys[index] is not None and not isinstance(result, TrialFailure):
                journal.record(keys[index], points[index].seed, result)
    return [[result] for result in results]
