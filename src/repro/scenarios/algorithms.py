"""Workload runners behind the ``algorithm`` key of a scenario spec.

Every entry of :data:`ALGORITHMS` compiles a
:class:`~repro.scenarios.spec.ScenarioSpec` into a *picklable* trial callable
``seed -> result``, so one compiled spec drives serial,
:class:`~repro.experiments.parallel.ParallelTrialRunner` and
:class:`~repro.experiments.parallel.SweepPool` execution bit-identically.
Compilation is where spec/algorithm compatibility is enforced: a ring
algorithm rejects a grid topology at compile time, with the reason, instead
of failing mid-simulation.

Registered workloads:

``abe-election``
    The paper's Section 3 election (:func:`repro.core.runner.run_election`),
    including the fault-injection path no experiment could previously reach
    from configuration.
``itai-rodeh`` / ``chang-roberts`` / ``dolev-klawe-rodeh`` / ``franklin``
    The classical ring baselines of experiment E6.
``echo-wave`` / ``flooding-wave``
    Wave algorithms for *arbitrary* bidirectional topologies (grid, tree,
    star, random graphs) -- the workloads that open the non-ring shapes in
    :mod:`repro.network.topology` to specs and the CLI.
``synchronizer-battery``
    One experiment-E5 battery (alpha/beta/ABD x ABE/ABD delays) per point.
``lossy-channel``
    The experiment-E4 retransmission measurement.

The last two are **one-shot** runners: each point is a single deterministic
evaluation of the spec's raw ``seed`` (no derived trial seeds), matching how
E4/E5 have always consumed their seeds.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.core.analysis import recommended_a0
from repro.network.delays import ExponentialDelay
from repro.network.faults import CrashStopFault, FaultInjector, MessageLossFault
from repro.scenarios.registry import (
    Registry,
    DriftFactory,
    build_churn,
    build_delay,
    build_schedule,
    build_topology,
)
from repro.scenarios.spec import ScenarioSpec, SpecNode

__all__ = [
    "ALGORITHMS",
    "AlgorithmEntry",
    "WaveResult",
    "ElectionScenarioTrial",
    "BaselineScenarioTrial",
    "WaveScenarioTrial",
    "SynchronizerBatteryTrial",
    "LossyChannelTrial",
    "measure_lossy_channel",
    "run_synchronizer_battery",
]


@dataclass(frozen=True)
class AlgorithmEntry:
    """One registered workload: a trial compiler plus execution metadata.

    ``metric`` is the result attribute an unpinned
    :class:`~repro.experiments.runner.AdaptiveStopping` rule targets.
    ``one_shot`` marks deterministic single-evaluation workloads that consume
    the spec's raw seed instead of derived trial seeds.
    """

    key: str
    build_trial: Callable[[ScenarioSpec], Callable[[int], Any]]
    metric: str = "messages_total"
    one_shot: bool = False
    description: str = ""


ALGORITHMS = Registry("algorithm")


def _register(entry: AlgorithmEntry) -> None:
    ALGORITHMS.register(entry.key, entry)


# ------------------------------------------------------------------- utilities


def _ring_size(spec: ScenarioSpec, *, kinds: Tuple[str, ...] = ("uniring",)) -> int:
    """The ring size of a ring-algorithm spec, validating the topology kind."""
    node = spec.topology
    if node.kind not in kinds:
        raise ValueError(
            f"algorithm {spec.algorithm!r} runs on ring topologies "
            f"({'/'.join(kinds)}); got topology kind {node.kind!r} -- use a wave "
            "or synchronizer workload for non-ring shapes"
        )
    n = node.params.get("n")
    if n is None:
        raise ValueError(f"ring topology {node.kind!r} needs an 'n' parameter")
    return int(n)


def _build_faults(nodes: Tuple[SpecNode, ...]) -> List[Any]:
    faults: List[Any] = []
    for node in nodes:
        if node.kind == "message-loss":
            faults.append(MessageLossFault(**node.params))
        elif node.kind == "crash":
            faults.append(CrashStopFault(**node.params))
        else:
            raise ValueError(
                f"unknown fault kind {node.kind!r}; known kinds: ['crash', 'message-loss']"
            )
    return faults


def _spec_delay(spec: ScenarioSpec) -> Optional[Any]:
    """The compiled delay model: explicit node, retransmission sugar, or None."""
    if spec.retransmission is not None:
        return build_delay(SpecNode("retransmission", dict(spec.retransmission)))
    return build_delay(spec.delay)


def _reject_unsupported(spec: ScenarioSpec, supported: Tuple[str, ...]) -> None:
    """Reject non-default spec fields the algorithm would silently ignore.

    A spec naming a knob its workload cannot honour must fail at compile
    time -- results from a quietly dropped delay model or time budget would
    claim a configuration that never ran.
    """
    defaults = ScenarioSpec()
    always = ("algorithm", "topology", "seed", "trials", "label", "stopping", "workers", "params")
    for name in (field.name for field in dataclasses.fields(ScenarioSpec)):
        if name in always or name in supported:
            continue
        if getattr(spec, name) != getattr(defaults, name):
            raise ValueError(
                f"algorithm {spec.algorithm!r} does not support the {name!r} knob"
            )


# ---------------------------------------------------------------- ABE election


class ElectionScenarioTrial:
    """Picklable ``seed -> ElectionResult`` compiled from one spec.

    The no-fault path is *exactly* ``run_election(n, a0=..., delay=...,
    seed=seed, ...)`` -- the same call the experiments' hand-written
    ``ElectionTrial`` made, which is what keeps the pre-refactor goldens
    byte-identical.  Faulted specs take the build-inject-run path instead
    (:func:`~repro.core.runner.build_election_network` +
    :class:`~repro.network.faults.FaultInjector`).

    A spec with a ``churn`` node compiles onto the churn-aware election
    (:func:`~repro.core.churn_election.run_churn_election`): the scripted
    injector drives crash/recover and link churn, and the result carries the
    stabilization metrics.  Churn is object-core only, and static ``crash``
    fault nodes are rejected in its presence (express them as churn events so
    the monitor sees them).

    ``core="vector"`` specs compile onto the columnar engine instead:
    the no-fault path is ``run_election(..., core="vector")`` and faults
    translate to the engine's first-class knobs (``message-loss`` nodes
    combine into one per-delivery drop probability ``1 - prod(1 - p_i)``,
    ``crash`` nodes become ``(node_uid, crash_time)`` pairs).  A loss fault
    with a ``channel_predicate`` is rejected at compile time -- the vector
    core has no channel objects to filter.
    """

    __slots__ = (
        "n",
        "a0",
        "delay",
        "faults",
        "churn",
        "max_events",
        "max_time",
        "on_budget",
        "core",
        "vector_kwargs",
        "kwargs",
    )

    def __init__(self, spec: ScenarioSpec) -> None:
        self.n = _ring_size(spec)
        self.a0 = spec.a0 if spec.a0 is not None else recommended_a0(self.n)
        delay = _spec_delay(spec)
        self.delay = delay if delay is not None else ExponentialDelay(mean=1.0)
        self.faults = _build_faults(spec.faults)
        self.churn = build_churn(spec.churn)
        if self.churn is not None:
            if spec.core == "vector":
                raise ValueError(
                    "the 'churn' knob needs the per-node object core "
                    "(crash/recover mutates individual nodes); use core='object'"
                )
            if any(isinstance(fault, CrashStopFault) for fault in self.faults):
                raise ValueError(
                    "churn specs express crashes as churn events (kind 'crash', "
                    "optionally with a downtime); a static crash fault would "
                    "bypass the stabilization bookkeeping"
                )
        self.max_events = spec.max_events
        self.max_time = spec.max_time
        self.on_budget = spec.on_budget
        self.core = spec.core
        kwargs: Dict[str, Any] = dict(
            schedule=build_schedule(spec.schedule),
            clock_bounds=spec.clock_bounds,
            clock_drift_factory=DriftFactory(spec.drift) if spec.drift is not None else None,
            processing_delay=build_delay(spec.processing_delay),
            fifo=spec.fifo,
            purge_at_active=spec.purge_at_active,
            tick_period=spec.tick_period,
            validate_model=spec.validate_model,
            expected_delay_bound=spec.expected_delay_bound,
            batch_sampling=spec.batch_sampling,
            batch_ticks=spec.batch_ticks,
        )
        kwargs.update(spec.params)
        # A runtime delay object may ride the params pass-through (the
        # historical ``election_overrides={'delay': ...}`` contract); it
        # takes the dedicated slot rather than clashing with the explicit
        # ``delay=`` keyword below.
        self.delay = kwargs.pop("delay", self.delay)
        self.kwargs = kwargs
        self.vector_kwargs = (
            self._compile_vector(spec) if spec.core == "vector" else None
        )

    def _compile_vector(self, spec: ScenarioSpec) -> Dict[str, Any]:
        """Vector-engine kwargs, with the unsupported knobs rejected by name."""
        if tuple(spec.clock_bounds) != (1.0, 1.0):
            raise ValueError(
                "core='vector' does not support clock_bounds != (1, 1); "
                "use core='object'"
            )
        if spec.drift is not None:
            raise ValueError(
                "core='vector' does not support the 'drift' knob; "
                "use core='object'"
            )
        message_loss = 0.0
        crashes: List[Tuple[int, float]] = []
        for fault in self.faults:
            if isinstance(fault, MessageLossFault):
                if fault.channel_predicate is not None:
                    raise ValueError(
                        "core='vector' supports ring-wide message loss only; "
                        "a channel_predicate needs the object core"
                    )
                # Independent per-delivery coins compose multiplicatively.
                message_loss = 1.0 - (1.0 - message_loss) * (
                    1.0 - fault.loss_probability
                )
            else:
                crashes.append((fault.node_uid, fault.crash_time))
        kwargs = dict(self.kwargs)
        for object_only in ("clock_bounds", "clock_drift_factory", "batch_sampling", "batch_ticks"):
            kwargs.pop(object_only, None)
        kwargs["message_loss"] = message_loss
        kwargs["crashes"] = tuple(crashes)
        return kwargs

    def __call__(self, seed: int) -> Any:
        if self.churn is not None:
            from repro.core.churn_election import run_churn_election

            return run_churn_election(
                self.n,
                script=self.churn,
                a0=self.a0,
                delay=self.delay,
                seed=seed,
                faults=tuple(self.faults),
                max_events=self.max_events,
                max_time=self.max_time,
                on_budget=self.on_budget,
                **self.kwargs,
            )
        if self.vector_kwargs is not None:
            from repro.core.vector_core import run_vector_election

            return run_vector_election(
                self.n,
                a0=self.a0,
                delay=self.delay,
                seed=seed,
                max_events=self.max_events,
                max_time=self.max_time,
                on_budget=self.on_budget,
                **self.vector_kwargs,
            )
        from repro.core.runner import (
            build_election_network,
            run_election,
            run_election_on_network,
        )

        if not self.faults:
            return run_election(
                self.n,
                a0=self.a0,
                delay=self.delay,
                seed=seed,
                max_events=self.max_events,
                max_time=self.max_time,
                on_budget=self.on_budget,
                **self.kwargs,
            )
        network, status = build_election_network(
            self.n, a0=self.a0, delay=self.delay, seed=seed, **self.kwargs
        )
        injector = FaultInjector(network)
        injector.apply(self.faults)
        return run_election_on_network(
            network,
            status,
            max_events=self.max_events,
            max_time=self.max_time,
            a0=self.a0,
            on_budget=self.on_budget,
        )


_register(
    AlgorithmEntry(
        key="abe-election",
        build_trial=ElectionScenarioTrial,
        metric="messages_total",
        description="Section 3 election on an anonymous unidirectional ABE ring",
    )
)


# ------------------------------------------------------------------- baselines


def _baseline_runners() -> Dict[str, Callable[..., Any]]:
    from repro.algorithms.leader_election import (
        run_chang_roberts,
        run_dolev_klawe_rodeh,
        run_franklin,
        run_itai_rodeh,
    )

    return {
        "itai-rodeh": run_itai_rodeh,
        "chang-roberts": run_chang_roberts,
        "dolev-klawe-rodeh": run_dolev_klawe_rodeh,
        "franklin": run_franklin,
    }


class BaselineScenarioTrial:
    """Picklable ``seed -> RingElectionResult`` for the classical baselines."""

    __slots__ = ("key", "n", "delay", "kwargs")

    def __init__(self, spec: ScenarioSpec) -> None:
        self.key = spec.algorithm
        # Franklin runs on a bidirectional ring it builds itself; accept both
        # ring kinds and let the runner pick its direction.
        self.n = _ring_size(spec, kinds=("uniring", "biring"))
        _reject_unsupported(
            spec,
            supported=(
                "delay",
                "retransmission",
                "batch_sampling",
                "max_events",
                "on_budget",
            ),
        )
        self.delay = _spec_delay(spec)
        kwargs: Dict[str, Any] = dict(batch_sampling=spec.batch_sampling)
        if spec.max_events is not None:
            kwargs["max_events"] = spec.max_events
        if spec.on_budget != "stop":
            kwargs["on_budget"] = spec.on_budget
        kwargs.update(spec.params)
        self.kwargs = kwargs

    def __call__(self, seed: int) -> Any:
        runner = _baseline_runners()[self.key]
        return runner(self.n, delay=self.delay, seed=seed, **self.kwargs)


for _key in ("itai-rodeh", "chang-roberts", "dolev-klawe-rodeh", "franklin"):
    _register(
        AlgorithmEntry(
            key=_key,
            build_trial=BaselineScenarioTrial,
            metric="messages_total",
            description=f"classical {_key} ring election baseline",
        )
    )


# ----------------------------------------------------------------------- waves


@dataclass
class WaveResult:
    """Outcome of one wave (echo / flooding) run on an arbitrary topology."""

    algorithm: str
    topology: str
    n: int
    seed: int
    completed: bool
    completion_time: Optional[float]
    messages_total: int
    nodes_reached: int
    events_processed: int


class WaveScenarioTrial:
    """Picklable ``seed -> WaveResult`` for echo/flooding on any topology."""

    __slots__ = (
        "algorithm",
        "topology_node",
        "delay",
        "faults",
        "spec_fields",
        "initiator",
        "max_events",
    )

    def __init__(self, spec: ScenarioSpec) -> None:
        from repro.scenarios.registry import TOPOLOGIES

        self.algorithm = spec.algorithm
        TOPOLOGIES.get(spec.topology.kind)  # fail fast on unknown kinds
        self.topology_node = spec.topology
        _reject_unsupported(
            spec,
            supported=(
                "delay",
                "retransmission",
                "fifo",
                "processing_delay",
                "clock_bounds",
                "drift",
                "faults",
                "batch_sampling",
                "max_events",
                "max_time",
                "on_budget",
            ),
        )
        self.delay = _spec_delay(spec)
        self.faults = _build_faults(spec.faults)
        params = dict(spec.params)
        self.initiator = int(params.pop("initiator", 0))
        if params:
            raise ValueError(
                f"unknown params for {spec.algorithm!r}: {sorted(params)}; "
                "known params: ['initiator']"
            )
        self.max_events = spec.max_events
        self.spec_fields = dict(
            fifo=spec.fifo,
            processing_delay=build_delay(spec.processing_delay),
            clock_bounds=spec.clock_bounds,
            clock_drift_factory=DriftFactory(spec.drift) if spec.drift is not None else None,
            batch_sampling=spec.batch_sampling,
            max_time=spec.max_time,
            on_budget=spec.on_budget,
        )

    def __call__(self, seed: int) -> WaveResult:
        from repro.algorithms.echo import EchoProgram
        from repro.algorithms.flooding import FloodingProgram
        from repro.network.network import Network, NetworkConfig

        topology = build_topology(self.topology_node)
        if not (0 <= self.initiator < topology.n):
            raise ValueError(
                f"initiator {self.initiator} outside 0..{topology.n - 1}"
            )
        fields = self.spec_fields
        config = NetworkConfig(
            topology=topology,
            delay_model=self.delay if self.delay is not None else ExponentialDelay(mean=1.0),
            seed=seed,
            fifo=fields["fifo"],
            processing_delay=fields["processing_delay"],
            clock_bounds=fields["clock_bounds"],
            clock_drift_factory=fields["clock_drift_factory"],
            enable_trace=False,
            batch_sampling=fields["batch_sampling"],
        )
        if self.algorithm == "echo-wave":
            factory = lambda uid: EchoProgram(is_initiator=(uid == self.initiator))  # noqa: E731
        else:
            factory = lambda uid: FloodingProgram(  # noqa: E731
                is_initiator=(uid == self.initiator), value="wave-payload"
            )
        network = Network(config, factory)
        if self.faults:
            injector = FaultInjector(network)
            injector.apply(self.faults)
        programs = network.programs()
        if self.algorithm == "echo-wave":
            done = lambda: programs[self.initiator].decided  # noqa: E731
        else:
            done = lambda: all(program.informed for program in programs)  # noqa: E731
        network.stop_when(done)
        max_events = self.max_events
        if max_events is None:
            max_events = 200_000 + 20_000 * topology.n
        network.run(
            until=fields["max_time"],
            max_events=max_events,
            raise_on_limit=(fields["on_budget"] == "raise"),
        )
        if self.algorithm == "echo-wave":
            reached = sum(
                1
                for program in programs
                if program.parent_uid is not None or program.is_initiator
            )
        else:
            reached = sum(1 for program in programs if program.informed)
        return WaveResult(
            algorithm=self.algorithm,
            topology=topology.name,
            n=topology.n,
            seed=seed,
            completed=done(),
            completion_time=network.now if done() else None,
            messages_total=network.messages_sent(),
            nodes_reached=reached,
            events_processed=network.simulator.events_processed,
        )


for _key, _description in (
    ("echo-wave", "termination-detecting echo wave on any bidirectional topology"),
    ("flooding-wave", "asynchronous flooding broadcast on any topology"),
):
    _register(
        AlgorithmEntry(
            key=_key,
            build_trial=WaveScenarioTrial,
            metric="messages_total",
            description=_description,
        )
    )


# ------------------------------------------------------- synchronizer battery


def _flooding_factory(initiator: int, rounds: int):
    from repro.algorithms.synchronous import FloodingSync

    def factory(uid: int) -> Any:
        return FloodingSync(
            is_initiator=(uid == initiator), value="flood-payload", max_rounds=rounds
        )

    return factory


def _ground_truth(topology: Any, rounds: int) -> List[Any]:
    from repro.algorithms.synchronous import SynchronousExecutor

    executor = SynchronousExecutor(topology, _flooding_factory(0, rounds))
    return executor.run(max_rounds=rounds + 1).results


#: The hard bound the ABD synchronizer believes in, and the bounded delay
#: distribution used for the "genuine ABD network" runs (experiment E5).
ABD_DELAY_BOUND = 2.0


def _run_sync_case(
    topology: Any,
    synchronizer: str,
    rounds: int,
    seed: int,
    abe_delays: bool,
) -> Any:
    from repro.network.delays import UniformDelay
    from repro.synchronizers.abd import AbdSynchronizerProgram
    from repro.synchronizers.alpha import AlphaSynchronizerProgram
    from repro.synchronizers.base import run_synchronized
    from repro.synchronizers.beta import BetaSynchronizerProgram, build_bfs_tree

    delay = (
        ExponentialDelay(mean=1.0)
        if abe_delays
        else UniformDelay(0.25, ABD_DELAY_BOUND)
    )
    process_factory = _flooding_factory(0, rounds)
    if synchronizer == "alpha":
        return run_synchronized(
            topology,
            process_factory,
            lambda uid, p, tr, st: AlphaSynchronizerProgram(p, tr, st),
            total_rounds=rounds,
            synchronizer_name="alpha",
            delay=delay,
            seed=seed,
        )
    if synchronizer == "beta":
        tree = build_bfs_tree(topology)
        return run_synchronized(
            topology,
            process_factory,
            lambda uid, p, tr, st: BetaSynchronizerProgram(p, tr, st),
            total_rounds=rounds,
            synchronizer_name="beta",
            delay=delay,
            seed=seed,
            knowledge_factory=lambda uid: tree[uid],
        )
    if synchronizer == "abd":
        return run_synchronized(
            topology,
            process_factory,
            lambda uid, p, tr, st: AbdSynchronizerProgram(
                p, tr, st, delay_bound=ABD_DELAY_BOUND
            ),
            total_rounds=rounds,
            synchronizer_name="abd",
            delay=delay,
            seed=seed,
        )
    raise ValueError(f"unknown synchronizer {synchronizer!r}")


def run_synchronizer_battery(
    n: int,
    base_seed: int,
    rounds: Optional[int] = None,
    include_random_graph: bool = True,
) -> List[dict]:
    """All E5 cases for one size; rows carry only primitives so batteries can
    run in (long-lived) worker processes.  Module-level, so it pickles into a
    shared :class:`~repro.experiments.parallel.SweepPool`."""
    from repro.network.topology import bidirectional_ring, random_connected
    from repro.synchronizers.lower_bound import theorem1_lower_bound, theorem1_satisfied

    rows: List[dict] = []
    topologies = [bidirectional_ring(n)]
    if include_random_graph:
        topologies.append(random_connected(n, edge_probability=0.3, seed=base_seed + n))
    for topology in topologies:
        round_count = rounds if rounds is not None else max(4, n // 2)
        truth = _ground_truth(topology, round_count)
        cases = [
            ("alpha", True),
            ("beta", True),
            ("abd", False),
            ("abd", True),
        ]
        for synchronizer, abe_delays in cases:
            result = _run_sync_case(
                topology, synchronizer, round_count, base_seed + n, abe_delays
            )
            matches = result.results == truth and result.completed
            rows.append(
                dict(
                    topology=topology.name,
                    n=n,
                    synchronizer=synchronizer,
                    delay_model="ABE (exponential)" if abe_delays else "ABD (bounded)",
                    messages_per_round=result.messages_per_round,
                    theorem1_bound=theorem1_lower_bound(n),
                    meets_theorem1=theorem1_satisfied(result),
                    late_messages=result.late_messages,
                    matches_ground_truth=matches,
                )
            )
    return rows


class SynchronizerBatteryTrial:
    """Picklable one-shot ``seed -> battery rows`` (experiment E5's unit)."""

    __slots__ = ("n", "rounds", "include_random_graph")

    def __init__(self, spec: ScenarioSpec) -> None:
        self.n = _ring_size(spec, kinds=("biring", "uniring"))
        # The battery hard-codes its delay models and knobs (ABE vs ABD is
        # the experiment); a spec naming any must fail, not be ignored.
        _reject_unsupported(spec, supported=())
        params = dict(spec.params)
        self.rounds = params.pop("rounds", None)
        self.include_random_graph = bool(params.pop("include_random_graph", True))
        if params:
            raise ValueError(
                f"unknown params for 'synchronizer-battery': {sorted(params)}; "
                "known params: ['rounds', 'include_random_graph']"
            )

    def __call__(self, seed: int) -> List[dict]:
        return run_synchronizer_battery(
            self.n,
            base_seed=seed,
            rounds=self.rounds,
            include_random_graph=self.include_random_graph,
        )


_register(
    AlgorithmEntry(
        key="synchronizer-battery",
        build_trial=SynchronizerBatteryTrial,
        metric="messages_per_round",
        one_shot=True,
        description="alpha/beta/ABD synchronizers vs Theorem 1, one battery per size",
    )
)


# ----------------------------------------------------------------- lossy channel


def measure_lossy_channel(
    p: float, messages: int, tail_k: int, base_seed: int
) -> Tuple[float, float, float]:
    """One experiment-E4 measurement: mechanistic vs closed-form channel.

    Streams are named per probability, so a fresh
    :class:`~repro.sim.rng.RandomSource` per measurement draws the exact same
    streams a shared one would -- which is what makes the fan-out
    bit-identical to a serial loop.
    """
    from repro.network.retransmission import GeometricRetransmissionDelay, LossyChannelModel
    from repro.sim.rng import RandomSource
    from repro.stats.distributions import tail_mass

    source = RandomSource(base_seed)
    channel = LossyChannelModel(success_probability=p, transmission_time=1.0)
    channel_rng = source.stream(f"channel/p{p}")
    for _ in range(messages):
        channel.transmit(channel_rng)
    mechanistic = channel.observed_mean_attempts()

    distribution = GeometricRetransmissionDelay(p, transmission_time=1.0)
    dist_rng = source.stream(f"distribution/p{p}")
    samples = distribution.sample_many(dist_rng, messages)
    closed_form = sum(samples) / len(samples)
    return mechanistic, closed_form, tail_mass(samples, float(tail_k))


class LossyChannelTrial:
    """Picklable one-shot ``seed -> (mechanistic, closed_form, tail)``."""

    __slots__ = ("p", "messages", "tail_k")

    def __init__(self, spec: ScenarioSpec) -> None:
        # A pure channel measurement: no network is built, so every network
        # knob (delay, topology shape aside, faults, ...) must be rejected.
        _reject_unsupported(spec, supported=())
        params = dict(spec.params)
        try:
            self.p = float(params.pop("p"))
        except KeyError:
            raise ValueError(
                "'lossy-channel' needs a success probability: params={'p': ...}"
            ) from None
        self.messages = int(params.pop("messages", 20_000))
        self.tail_k = int(params.pop("tail_k", 5))
        if params:
            raise ValueError(
                f"unknown params for 'lossy-channel': {sorted(params)}; "
                "known params: ['p', 'messages', 'tail_k']"
            )

    def __call__(self, seed: int) -> Tuple[float, float, float]:
        return measure_lossy_channel(self.p, self.messages, self.tail_k, seed)


_register(
    AlgorithmEntry(
        key="lossy-channel",
        build_trial=LossyChannelTrial,
        metric="closed_form_mean_delay",
        one_shot=True,
        description="retransmission over a lossy channel: k_avg = 1/p (experiment E4)",
    )
)
