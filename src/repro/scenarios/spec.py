"""Declarative scenario specifications.

One :class:`ScenarioSpec` describes one simulated workload completely: which
algorithm runs, on which topology, under which delay model, with which knobs
(fifo, faults, drift, retransmission, processing delay, stopping rule,
workers) and for how many Monte-Carlo trials.  Specs are frozen dataclasses
of plain values, so they

* validate on construction (a bad knob fails before any simulation runs),
* round-trip through JSON (:meth:`ScenarioSpec.to_dict` /
  :meth:`ScenarioSpec.from_dict`), which makes a spec a *file* -- see
  ``examples/scenarios/`` and the ``abe-repro scenario`` subcommand,
* pickle across process boundaries, so the same spec object drives serial,
  :class:`~repro.experiments.parallel.ParallelTrialRunner` and
  :class:`~repro.experiments.parallel.SweepPool` execution bit-identically.

String ``kind`` fields (topology, delay, drift, schedule, faults, algorithm)
are resolved against the registries in :mod:`repro.scenarios.registry`; the
spec layer itself never imports simulation code, so specs stay cheap and
import-cycle free.

:class:`SweepSpec` derives a labelled family of scenarios from one base spec
plus per-point overrides, and :class:`StudySpec` is the unit the experiment
harness runs: an ordered list of scenario points plus the metric an adaptive
stopping rule targets.  Every experiment module (e1..e8, a1, a2) exposes a
``build_study(...)`` returning its :class:`StudySpec`; see
:func:`repro.scenarios.runtime.run_study`.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple, Union

# NOTE: this module deliberately imports no simulation or experiment code at
# module level -- ``repro.experiments`` imports the scenario layer, so the
# AdaptiveStopping stopping rule is resolved lazily to keep the import graph
# acyclic.

__all__ = [
    "SpecNode",
    "ScenarioSpec",
    "SweepSpec",
    "StudySpec",
    "load_spec",
    "spec_from_dict",
]


@dataclass(frozen=True)
class SpecNode:
    """A registry reference: a string ``kind`` plus constructor ``params``.

    The one shape every pluggable piece of a scenario shares -- topologies,
    delay models, drift models, activation schedules and fault specifications
    are all ``{"kind": ..., "params": {...}}`` nodes resolved against the
    matching registry at compile time.
    """

    kind: str
    params: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not isinstance(self.kind, str) or not self.kind:
            raise ValueError(f"spec node kind must be a non-empty string, got {self.kind!r}")
        if not isinstance(self.params, dict):
            raise ValueError(f"spec node params must be a dict, got {type(self.params).__name__}")

    def to_dict(self) -> Dict[str, Any]:
        if not self.params:
            return {"kind": self.kind}
        return {"kind": self.kind, "params": dict(self.params)}

    @classmethod
    def from_dict(cls, data: Union[str, Mapping[str, Any]]) -> "SpecNode":
        """Build from ``{"kind": ..., "params": {...}}`` or a bare kind string."""
        if isinstance(data, str):
            return cls(kind=data)
        if not isinstance(data, Mapping):
            raise ValueError(f"spec node must be a mapping or string, got {data!r}")
        unknown = set(data) - {"kind", "params"}
        if unknown:
            raise ValueError(
                f"unknown spec-node key(s) {sorted(unknown)}; expected 'kind' and 'params'"
            )
        if "kind" not in data:
            raise ValueError(f"spec node is missing its 'kind': {dict(data)!r}")
        return cls(kind=data["kind"], params=dict(data.get("params", {})))


def _node(value: Optional[Union[str, Mapping[str, Any], SpecNode]]) -> Optional[SpecNode]:
    if value is None or isinstance(value, SpecNode):
        return value
    return SpecNode.from_dict(value)


@dataclass(frozen=True)
class ScenarioSpec:
    """One declarative workload: algorithm + topology + delays + knobs.

    Every field has a validated default, so ``ScenarioSpec()`` is already the
    canonical workload (the ABE election on a 32-ring with exponential
    mean-1 delays and the library's fast defaults).  Unknown algorithm,
    topology or delay ``kind`` strings are rejected at *compile* time (see
    :mod:`repro.scenarios.registry`) with the list of known keys.

    Attributes
    ----------
    algorithm:
        Registry key of the workload runner (``"abe-election"``, the four
        baselines, ``"echo-wave"``, ``"flooding-wave"``,
        ``"synchronizer-battery"``, ``"lossy-channel"``, ...).
    topology:
        Topology node, e.g. ``{"kind": "grid", "params": {"rows": 4,
        "cols": 5}}``.  Ring algorithms validate the shape at compile time.
    delay:
        Delay-model node (``None`` = the canonical exponential mean-1 ABE
        channel).  ``{"kind": "per-link", ...}`` assigns heterogeneous delay
        models per channel.
    retransmission:
        Convenience knob for the paper's flagship lossy-channel delay:
        ``{"success_probability": p, "transmission_time": t}`` is sugar for a
        ``retransmission`` delay node and may not be combined with ``delay``.
    seed / trials / label:
        Monte-Carlo shape.  Trial ``i`` uses
        ``derive_seed(seed, f"{label}/trial{i}")``, exactly like the
        experiment harness, so a spec with the same label/seed reproduces an
        experiment's trial set bit for bit.
    a0 / schedule / purge_at_active / tick_period:
        Election knobs (``a0=None`` resolves to the recommended value for the
        ring size; ignored by non-election algorithms).
    fifo / processing_delay / clock_bounds / drift:
        Channel-order, processing-delay (the paper's ``gamma``) and clock
        knobs.  ``drift`` builds one fresh model per node.
    faults:
        Fault nodes applied before the run (``message-loss``, ``crash``).
    churn:
        Optional dynamic-fault script node (``"script"`` with a list of timed
        crash/recover/link events, or ``"periodic"`` for rate-driven churn)
        resolved against the ``CHURN`` registry.  Election only; switches the
        run to the churn-aware election with stabilization metrics
        (:mod:`repro.core.churn_election`).  Strictly opt-in: ``None`` keeps
        the static single-election semantics bit for bit.
    stopping:
        Optional :class:`~repro.experiments.runner.AdaptiveStopping` rule; the
        run then stops each point's trials once the target metric's CI is
        tight enough.
    workers:
        Default worker processes when the caller does not supply a pool
        (``0`` = one per CPU).
    on_budget:
        What exhausting ``max_events``/``max_time`` means: ``"stop"``
        (default) truncates the run and reports whatever happened, while
        ``"raise"`` arms the divergence watchdog -- a trial that exhausts
        its budget with live events pending raises
        :class:`~repro.sim.engine.SimulationDiverged` inside the worker, so
        pathological specs fail fast instead of hanging a study.
    core:
        Election engine: ``"object"`` (the per-node reference) or
        ``"vector"`` (the columnar numpy engine,
        :mod:`repro.core.vector_core`).  The vector core draws from its own
        seed-deterministic streams, so the same spec follows a different --
        distributionally equivalent -- sample path per seed; election
        scenarios only.
    params:
        Algorithm-specific extras, forwarded to the workload runner
        (e.g. ``rounds`` for the synchronizer battery, ``initiator`` for the
        waves, ``p``/``messages`` for the lossy channel).
    """

    algorithm: str = "abe-election"
    topology: SpecNode = field(default_factory=lambda: SpecNode("uniring", {"n": 32}))
    delay: Optional[SpecNode] = None
    retransmission: Optional[Dict[str, float]] = None
    seed: int = 0
    trials: int = 1
    label: str = ""
    a0: Optional[float] = None
    schedule: Optional[SpecNode] = None
    purge_at_active: bool = True
    tick_period: float = 1.0
    fifo: bool = False
    processing_delay: Optional[SpecNode] = None
    clock_bounds: Tuple[float, float] = (1.0, 1.0)
    drift: Optional[SpecNode] = None
    faults: Tuple[SpecNode, ...] = ()
    stopping: Optional[Any] = None  # AdaptiveStopping or mapping of its fields
    workers: int = 1
    max_events: Optional[int] = None
    max_time: Optional[float] = None
    on_budget: str = "stop"
    expected_delay_bound: Optional[float] = None
    validate_model: bool = True
    batch_sampling: bool = True
    batch_ticks: bool = True
    core: str = "object"
    params: Dict[str, Any] = field(default_factory=dict)
    # Appended after params so every pre-existing positional construction --
    # and every pre-existing fingerprint (to_dict omits default fields) --
    # is preserved.  See the CHURN registry for the node kinds.
    churn: Optional[SpecNode] = None

    def __post_init__(self) -> None:
        if not isinstance(self.algorithm, str) or not self.algorithm:
            raise ValueError("algorithm must be a non-empty registry key")
        object.__setattr__(self, "topology", _node(self.topology))
        object.__setattr__(self, "delay", _node(self.delay))
        object.__setattr__(self, "schedule", _node(self.schedule))
        object.__setattr__(self, "processing_delay", _node(self.processing_delay))
        object.__setattr__(self, "drift", _node(self.drift))
        object.__setattr__(
            self, "faults", tuple(_node(fault) for fault in self.faults)
        )
        object.__setattr__(self, "churn", _node(self.churn))
        if self.delay is not None and self.retransmission is not None:
            raise ValueError(
                "give either 'delay' or the 'retransmission' shorthand, not both "
                "(retransmission is sugar for a retransmission delay node)"
            )
        if self.trials < 1:
            raise ValueError(f"trials must be >= 1, got {self.trials}")
        if self.workers < 0:
            raise ValueError(f"workers must be >= 0 (0 = one per CPU), got {self.workers}")
        if self.tick_period <= 0:
            raise ValueError(f"tick_period must be positive, got {self.tick_period}")
        bounds = tuple(self.clock_bounds)
        if len(bounds) != 2 or bounds[0] <= 0 or bounds[1] < bounds[0]:
            raise ValueError(
                f"clock_bounds must satisfy 0 < s_low <= s_high, got {self.clock_bounds}"
            )
        object.__setattr__(self, "clock_bounds", bounds)
        if self.a0 is not None and not (0.0 < self.a0 < 1.0):
            raise ValueError(f"a0 must lie in (0, 1), got {self.a0}")
        if self.max_events is not None and self.max_events < 1:
            raise ValueError(f"max_events must be >= 1, got {self.max_events}")
        if self.max_time is not None and self.max_time <= 0:
            raise ValueError(f"max_time must be positive, got {self.max_time}")
        if self.on_budget not in ("stop", "raise"):
            raise ValueError(
                f"on_budget must be 'stop' or 'raise', got {self.on_budget!r}"
            )
        if self.core not in ("object", "vector"):
            raise ValueError(
                f"core must be 'object' or 'vector', got {self.core!r}"
            )
        if self.stopping is not None:
            from repro.experiments.runner import AdaptiveStopping  # late: cycle

            if isinstance(self.stopping, Mapping):
                object.__setattr__(self, "stopping", AdaptiveStopping(**self.stopping))
            elif not isinstance(self.stopping, AdaptiveStopping):
                raise ValueError(
                    f"stopping must be an AdaptiveStopping or mapping, got {self.stopping!r}"
                )

    # -------------------------------------------------------------- round-trip

    def to_dict(self) -> Dict[str, Any]:
        """Canonical JSON-able form; defaults are omitted for readable files."""
        defaults = ScenarioSpec()
        out: Dict[str, Any] = {"algorithm": self.algorithm, "topology": self.topology.to_dict()}
        for spec_field in dataclasses.fields(self):
            name = spec_field.name
            if name in ("algorithm", "topology"):
                continue
            value = getattr(self, name)
            if value == getattr(defaults, name):
                continue
            if isinstance(value, SpecNode):
                value = value.to_dict()
            elif name == "faults":
                value = [fault.to_dict() for fault in value]
            elif name == "clock_bounds":
                value = list(value)
            elif name == "stopping":
                value = dataclasses.asdict(value)
            elif isinstance(value, dict):
                value = dict(value)
            out[name] = value
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ScenarioSpec":
        """Inverse of :meth:`to_dict`; unknown keys are rejected by name."""
        if not isinstance(data, Mapping):
            raise ValueError(f"scenario spec must be a mapping, got {data!r}")
        known = {spec_field.name for spec_field in dataclasses.fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                f"unknown scenario field(s) {sorted(unknown)}; "
                f"known fields: {sorted(known)}"
            )
        kwargs = dict(data)
        if "clock_bounds" in kwargs:
            kwargs["clock_bounds"] = tuple(kwargs["clock_bounds"])
        if "faults" in kwargs:
            kwargs["faults"] = tuple(kwargs["faults"])
        return cls(**kwargs)

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True) + "\n"

    # ----------------------------------------------------------------- helpers

    def replace(self, **changes: Any) -> "ScenarioSpec":
        """A copy with the given fields replaced (validation re-runs)."""
        return dataclasses.replace(self, **changes)


@dataclass(frozen=True)
class SweepSpec:
    """A labelled family of scenarios: one base spec + per-point overrides.

    Each entry of ``points`` is a dict of :class:`ScenarioSpec` field
    overrides applied with :meth:`ScenarioSpec.replace`; the expansion order
    is the execution order.  This is how the experiments express their
    parameter grids ("the same election at every ring size", "the same ring
    at every A0 multiplier") without repeating the shared configuration.
    """

    base: ScenarioSpec
    points: Tuple[Dict[str, Any], ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "points", tuple(dict(point) for point in self.points))
        if not self.points:
            raise ValueError("a sweep needs at least one point")

    def scenarios(self) -> List[ScenarioSpec]:
        """The expanded, ordered scenario list."""
        return [self.base.replace(**point) for point in self.points]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "base": self.base.to_dict(),
            "points": [dict(point) for point in self.points],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SweepSpec":
        unknown = set(data) - {"base", "points"}
        if unknown:
            raise ValueError(
                f"unknown sweep field(s) {sorted(unknown)}; expected 'base' and 'points'"
            )
        return cls(
            base=ScenarioSpec.from_dict(data.get("base", {})),
            points=tuple(data.get("points", ())),
        )


@dataclass(frozen=True)
class StudySpec:
    """An ordered battery of scenario points plus the metric it targets.

    The unit the experiment harness executes: ``run_study`` runs every point
    (sharing one worker pool across the whole battery) and returns the
    per-point result lists in order.  ``metric`` names the result attribute
    an :class:`~repro.experiments.runner.AdaptiveStopping` rule targets when
    the caller does not pin one.
    """

    name: str
    points: Tuple[ScenarioSpec, ...] = ()
    metric: str = "messages_total"
    title: str = ""

    def __post_init__(self) -> None:
        if not isinstance(self.name, str) or not self.name:
            raise ValueError("a study needs a non-empty name")
        points = tuple(
            point if isinstance(point, ScenarioSpec) else ScenarioSpec.from_dict(point)
            for point in self.points
        )
        if not points:
            raise ValueError(f"study {self.name!r} has no points")
        object.__setattr__(self, "points", points)

    @classmethod
    def from_sweep(cls, name: str, sweep: SweepSpec, **kwargs: Any) -> "StudySpec":
        return cls(name=name, points=tuple(sweep.scenarios()), **kwargs)

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "study": self.name,
            "points": [point.to_dict() for point in self.points],
        }
        if self.metric != "messages_total":
            out["metric"] = self.metric
        if self.title:
            out["title"] = self.title
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "StudySpec":
        unknown = set(data) - {"study", "name", "points", "metric", "title"}
        if unknown:
            raise ValueError(
                f"unknown study field(s) {sorted(unknown)}; "
                "expected 'study'/'name', 'points', 'metric', 'title'"
            )
        name = data.get("study", data.get("name"))
        if not name:
            raise ValueError("a study spec needs a 'study' (or 'name') key")
        return cls(
            name=name,
            points=tuple(data.get("points", ())),
            metric=data.get("metric", "messages_total"),
            title=data.get("title", ""),
        )

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True) + "\n"


def spec_from_dict(data: Mapping[str, Any]) -> Union[ScenarioSpec, StudySpec]:
    """Dispatch a parsed JSON document to the right spec class.

    Documents with a ``points`` list are studies; everything else is a single
    scenario.
    """
    if isinstance(data, Mapping) and "points" in data:
        return StudySpec.from_dict(data)
    return ScenarioSpec.from_dict(data)


def load_spec(path: Any) -> Union[ScenarioSpec, StudySpec]:
    """Read a spec file (JSON) and return the parsed scenario or study."""
    with open(path, "r", encoding="utf-8") as handle:
        try:
            data = json.load(handle)
        except json.JSONDecodeError as error:
            raise ValueError(f"{path}: not valid JSON ({error})") from None
    return spec_from_dict(data)
