"""String-keyed registries resolving spec ``kind``\\ s to factories.

Four registries cover everything a :class:`~repro.scenarios.spec.ScenarioSpec`
references by name:

* :data:`TOPOLOGIES` -- every builder in :mod:`repro.network.topology`;
* :data:`DELAYS` -- every delay family in :mod:`repro.network.delays`,
  :mod:`repro.network.queueing`, :mod:`repro.network.retransmission` and
  :mod:`repro.network.routing`, plus the ``per-link`` composite for
  heterogeneous links;
* :data:`DRIFTS` -- the clock-drift models of :mod:`repro.sim.clock`;
* :data:`SCHEDULES` -- the activation schedules of
  :mod:`repro.core.activation`;
* :data:`CHURN` / :data:`CHURN_EVENTS` -- the dynamic-fault scripts of
  :mod:`repro.network.churn` and the timed events they contain.

Workload runners register separately in
:mod:`repro.scenarios.algorithms` (:data:`~repro.scenarios.algorithms.ALGORITHMS`).

Extension point: third-party code calls ``TOPOLOGIES.register("my-shape",
builder)`` (and likewise for the other registries) before compiling a spec;
the JSON schema then accepts the new kind everywhere.  Unknown kinds fail
with the sorted list of known keys -- a typo in a spec file names its
candidates instead of raising a bare ``KeyError``.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Mapping, Optional

from repro.core.activation import ActivationSchedule, AdaptiveActivation, ConstantActivation
from repro.network import topology as topo
from repro.network.delays import (
    ConstantDelay,
    DelayDistribution,
    EmpiricalDelay,
    ErlangDelay,
    ExponentialDelay,
    HyperExponentialDelay,
    LogNormalDelay,
    MixtureDelay,
    ParetoDelay,
    ShiftedExponentialDelay,
    TruncatedDelay,
    UniformDelay,
    WeibullDelay,
)
from repro.network.adversary import MaxDelayAdversary, TargetedSlowdownAdversary
from repro.network.churn import (
    CrashEvent,
    FaultScript,
    LinkDownEvent,
    LinkUpEvent,
    PeriodicChurn,
    RecoverEvent,
)
from repro.network.queueing import MM1SojournDelay
from repro.network.retransmission import GeometricRetransmissionDelay
from repro.network.routing import DynamicRoutingDelay
from repro.scenarios.spec import SpecNode
from repro.sim.clock import ConstantRateDrift, RandomWalkDrift, SinusoidalDrift

__all__ = [
    "Registry",
    "TOPOLOGIES",
    "DELAYS",
    "DRIFTS",
    "SCHEDULES",
    "CHURN",
    "CHURN_EVENTS",
    "build_topology",
    "build_delay",
    "build_schedule",
    "build_churn",
    "PerLinkDelay",
    "DriftFactory",
]


class Registry:
    """A named string-keyed factory table with self-describing errors."""

    def __init__(self, noun: str, plural: Optional[str] = None) -> None:
        self.noun = noun
        self.plural = plural if plural is not None else noun + "s"
        self._entries: Dict[str, Callable[..., Any]] = {}

    def register(self, key: str, factory: Callable[..., Any]) -> None:
        """Register ``factory`` under ``key``; duplicate keys are rejected."""
        if not key or not isinstance(key, str):
            raise ValueError(f"{self.noun} key must be a non-empty string, got {key!r}")
        if key in self._entries:
            raise ValueError(f"duplicate {self.noun} key {key!r}")
        self._entries[key] = factory

    def get(self, key: str) -> Callable[..., Any]:
        try:
            return self._entries[key]
        except KeyError:
            raise ValueError(
                f"unknown {self.noun} {key!r}; known {self.plural}: {self.known()}"
            ) from None

    def known(self) -> List[str]:
        """The sorted registered keys (for error messages and docs)."""
        return sorted(self._entries)

    def build(self, node: SpecNode) -> Any:
        """Resolve ``node.kind`` and call the factory with ``node.params``.

        Wrong parameter names surface as a readable error naming the kind
        rather than a bare ``TypeError`` from deep inside a constructor.
        """
        factory = self.get(node.kind)
        try:
            return factory(**node.params)
        except TypeError as error:
            raise ValueError(
                f"bad parameters for {self.noun} {node.kind!r}: {error}"
            ) from None

    def __contains__(self, key: str) -> bool:
        return key in self._entries


# ------------------------------------------------------------------ topologies

TOPOLOGIES = Registry("topology", "topologies")
TOPOLOGIES.register("uniring", topo.unidirectional_ring)
TOPOLOGIES.register("biring", topo.bidirectional_ring)
TOPOLOGIES.register("line", topo.line_topology)
TOPOLOGIES.register("star", topo.star_topology)
TOPOLOGIES.register("complete", topo.complete_graph)
TOPOLOGIES.register("tree", topo.tree_topology)
TOPOLOGIES.register("grid", topo.grid_topology)
TOPOLOGIES.register("random-connected", topo.random_connected)


def build_topology(node: SpecNode) -> topo.Topology:
    """Build the topology a spec names."""
    return TOPOLOGIES.build(node)


# ---------------------------------------------------------------- delay models


class PerLinkDelay:
    """Heterogeneous per-link delays: one model per channel, cycled in order.

    Compiles the ``per-link`` delay kind into the delay *factory* protocol of
    :class:`~repro.network.network.NetworkConfig` (``(channel_id, source,
    destination) -> model``): channel ``i`` gets ``models[i % len(models)]``.
    ``mean()`` reports the worst component mean, which is exactly the bound
    ``delta`` the ABE model needs, so model validation works unchanged.
    """

    def __init__(self, models: List[DelayDistribution]) -> None:
        if not models:
            raise ValueError("per-link delay needs at least one component model")
        self.models = list(models)

    def __call__(self, channel_id: int, source: int, destination: int) -> DelayDistribution:
        return self.models[channel_id % len(self.models)]

    def mean(self) -> float:
        return max(model.mean() for model in self.models)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PerLinkDelay({self.models!r})"


def _build_nested_delay(data: Any) -> DelayDistribution:
    node = data if isinstance(data, SpecNode) else SpecNode.from_dict(data)
    return DELAYS.build(node)


def _mixture_delay(components: Any) -> MixtureDelay:
    built = []
    for entry in components:
        if isinstance(entry, Mapping):
            weight, inner = entry["weight"], entry["delay"]
        else:
            weight, inner = entry
        built.append((float(weight), _build_nested_delay(inner)))
    return MixtureDelay(built)


def _truncated_delay(inner: Any, cap: float, max_rejects: int = 1000) -> TruncatedDelay:
    return TruncatedDelay(_build_nested_delay(inner), cap=cap, max_rejects=max_rejects)


def _routing_delay(per_hop: Optional[Any] = None, **params: Any) -> DynamicRoutingDelay:
    if per_hop is not None:
        params["per_hop_delay"] = _build_nested_delay(per_hop)
    return DynamicRoutingDelay(**params)


def _per_link_delay(delays: Any) -> PerLinkDelay:
    return PerLinkDelay([_build_nested_delay(entry) for entry in delays])


def _max_adversary_delay(base: Any) -> MaxDelayAdversary:
    return MaxDelayAdversary(_build_nested_delay(base))


def _targeted_slowdown_delay(
    base: Any, victim: int, slowdown: float = 10.0
) -> TargetedSlowdownAdversary:
    return TargetedSlowdownAdversary(
        _build_nested_delay(base), victim=victim, slowdown=slowdown
    )


DELAYS = Registry("delay model")
DELAYS.register("constant", ConstantDelay)
DELAYS.register("uniform", UniformDelay)
DELAYS.register("exponential", ExponentialDelay)
DELAYS.register("shifted-exponential", ShiftedExponentialDelay)
DELAYS.register("erlang", ErlangDelay)
DELAYS.register("pareto", ParetoDelay)
DELAYS.register("lognormal", LogNormalDelay)
DELAYS.register("weibull", WeibullDelay)
DELAYS.register("hyperexponential", HyperExponentialDelay)
DELAYS.register("empirical", EmpiricalDelay)
DELAYS.register("mm1", MM1SojournDelay)
DELAYS.register("retransmission", GeometricRetransmissionDelay)
DELAYS.register("routing", _routing_delay)
DELAYS.register("mixture", _mixture_delay)
DELAYS.register("truncated", _truncated_delay)
DELAYS.register("per-link", _per_link_delay)
# Adversarial wrappers (repro.network.adversary): the adversary picks delays
# within a base model's support, so both take a nested 'base' delay node.
DELAYS.register("max-adversary", _max_adversary_delay)
DELAYS.register("targeted-slowdown", _targeted_slowdown_delay)


def build_delay(node: Optional[SpecNode]) -> Optional[Any]:
    """Build the delay model (or per-link factory) a spec names."""
    if node is None:
        return None
    return DELAYS.build(node)


# ---------------------------------------------------------------------- clocks

DRIFTS = Registry("drift model")
DRIFTS.register("constant-rate", ConstantRateDrift)
DRIFTS.register("random-walk", RandomWalkDrift)
DRIFTS.register("sinusoidal", SinusoidalDrift)


class DriftFactory:
    """Picklable ``uid -> ClockDriftModel`` factory from one drift node.

    Drift models are stateful (the random walk carries its current rate), so
    every node needs a *fresh* instance; the factory rebuilds from the node's
    ``kind``/``params`` on every call, matching the per-uid closures the
    experiments used to hand-write.
    """

    __slots__ = ("node",)

    def __init__(self, node: SpecNode) -> None:
        DRIFTS.get(node.kind)  # fail fast on unknown kinds
        self.node = node

    def __call__(self, uid: int) -> Any:
        return DRIFTS.build(self.node)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DriftFactory({self.node!r})"


# ------------------------------------------------------------------- schedules

SCHEDULES = Registry("activation schedule")
SCHEDULES.register("adaptive", AdaptiveActivation)
SCHEDULES.register("constant", ConstantActivation)


def build_schedule(node: Optional[SpecNode]) -> Optional[ActivationSchedule]:
    """Build the activation schedule a spec names (``None`` passes through)."""
    if node is None:
        return None
    return SCHEDULES.build(node)


# ----------------------------------------------------------------------- churn

CHURN_EVENTS = Registry("churn event")
CHURN_EVENTS.register("crash", CrashEvent)
CHURN_EVENTS.register("recover", RecoverEvent)
CHURN_EVENTS.register("link-down", LinkDownEvent)
CHURN_EVENTS.register("link-up", LinkUpEvent)
CHURN_EVENTS.register("periodic", PeriodicChurn)


def _churn_event(data: Any) -> Any:
    node = data if isinstance(data, SpecNode) else SpecNode.from_dict(data)
    return CHURN_EVENTS.build(node)


def _script_churn(
    events: Any = (),
    heartbeat_interval: Optional[float] = None,
    leader_timeout: Optional[float] = None,
) -> FaultScript:
    return FaultScript(
        events=tuple(_churn_event(entry) for entry in events),
        heartbeat_interval=heartbeat_interval,
        leader_timeout=leader_timeout,
    )


def _periodic_churn(
    heartbeat_interval: Optional[float] = None,
    leader_timeout: Optional[float] = None,
    **params: Any,
) -> FaultScript:
    return FaultScript(
        events=(PeriodicChurn(**params),),
        heartbeat_interval=heartbeat_interval,
        leader_timeout=leader_timeout,
    )


CHURN = Registry("churn script")
CHURN.register("script", _script_churn)
CHURN.register("periodic", _periodic_churn)


def build_churn(node: Optional[SpecNode]) -> Optional[FaultScript]:
    """Build the dynamic-fault script a spec names (``None`` passes through).

    ``{"kind": "script", "params": {"events": [{"kind": "crash", "params":
    {"node": "leader", "time": 40, "downtime": 40}}, ...]}}`` nests churn
    event nodes resolved against :data:`CHURN_EVENTS`; ``{"kind":
    "periodic", "params": {"interval": 50, "count": 3, "downtime": 20}}``
    is the rate-driven shorthand.
    """
    if node is None:
        return None
    return CHURN.build(node)
