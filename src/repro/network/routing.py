"""Dynamic-routing delays (Section 1, case ii).

The second motivating example of an unbounded delay in the paper is "dynamic
message routing": a message between two fixed endpoints may take different
paths on different attempts (load balancing, route flapping, mobile ad-hoc
re-routing), so the hop count -- and therefore the delay -- varies per
message and may occasionally be very large, while its expectation stays small.

:class:`DynamicRoutingDelay` models the end-to-end delay of such a message as
the sum of per-hop delays over a randomly chosen path length.  Path lengths
are drawn from a (possibly unbounded) distribution over hop counts; the
default is a geometric "detour" model: the route takes the shortest path with
probability ``1 - detour_probability`` and otherwise accumulates extra hops
geometrically, which mimics route flapping in ad-hoc networks.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.network.delays import DelayDistribution, ExponentialDelay

__all__ = ["DynamicRoutingDelay"]


class DynamicRoutingDelay(DelayDistribution):
    """End-to-end delay over a dynamically routed multi-hop path.

    Parameters
    ----------
    base_hops:
        Length of the shortest path between the endpoints (>= 1).
    detour_probability:
        After the shortest path, each additional hop is appended with this
        probability (geometric number of extra hops).  ``0`` reduces the model
        to a fixed-length path.
    per_hop_delay:
        Delay distribution of a single hop; defaults to an exponential with
        mean ``per_hop_mean``.
    per_hop_mean:
        Mean of the default per-hop exponential (ignored when
        ``per_hop_delay`` is given).
    max_extra_hops:
        Safety cap on the number of extra hops (documented approximation; the
        cap is chosen high enough that its truncation error is negligible at
        the detour probabilities used in the experiments).
    """

    def __init__(
        self,
        base_hops: int = 2,
        detour_probability: float = 0.3,
        per_hop_delay: Optional[DelayDistribution] = None,
        per_hop_mean: float = 0.5,
        max_extra_hops: int = 10_000,
    ) -> None:
        if base_hops < 1:
            raise ValueError("base_hops must be >= 1")
        if not (0.0 <= detour_probability < 1.0):
            raise ValueError("detour_probability must be in [0, 1)")
        if per_hop_mean <= 0:
            raise ValueError("per_hop_mean must be positive")
        if max_extra_hops < 0:
            raise ValueError("max_extra_hops must be non-negative")
        self.base_hops = int(base_hops)
        self.detour_probability = float(detour_probability)
        self.per_hop_delay = (
            per_hop_delay if per_hop_delay is not None else ExponentialDelay(per_hop_mean)
        )
        self.max_extra_hops = int(max_extra_hops)

    def sample_hops(self, rng: random.Random) -> int:
        """Draw the number of hops for one message."""
        hops = self.base_hops
        extra = 0
        while (
            self.detour_probability > 0.0
            and extra < self.max_extra_hops
            and rng.random() < self.detour_probability
        ):
            extra += 1
        return hops + extra

    def sample(self, rng: random.Random) -> float:
        hops = self.sample_hops(rng)
        return sum(self.per_hop_delay.sample(rng) for _ in range(hops))

    def supports_vectorized(self) -> bool:
        return self.per_hop_delay.supports_vectorized()

    def sample_array(self, gen, count: int):
        import numpy as np

        # Multi-pass refill (hop counts, then all per-hop draws): the
        # vectorized stream is deterministic per seed but depends on the
        # refill chunking -- compare runs at one ``batch_block_size``.
        hops = np.full(count, self.base_hops, dtype=np.int64)
        if self.detour_probability > 0.0:
            # Extra hops are the Bernoulli(q) successes before the first
            # failure: Geometric(1 - q) - 1, capped like the scalar loop.
            extras = gen.geometric(1.0 - self.detour_probability, count) - 1
            hops += np.minimum(extras, self.max_extra_hops)
        draws = np.asarray(
            self.per_hop_delay.sample_array(gen, int(hops.sum())), dtype=float
        )
        offsets = np.zeros(count, dtype=np.int64)
        np.cumsum(hops[:-1], out=offsets[1:])
        return np.add.reduceat(draws, offsets)

    def expected_hops(self) -> float:
        """Expected path length: ``base_hops + q / (1 - q)`` for detour prob q."""
        q = self.detour_probability
        return self.base_hops + (q / (1.0 - q) if q > 0 else 0.0)

    def mean(self) -> float:
        return self.expected_hops() * self.per_hop_delay.mean()

    def __repr__(self) -> str:
        return (
            f"DynamicRoutingDelay(base_hops={self.base_hops}, "
            f"detour_probability={self.detour_probability}, "
            f"per_hop={self.per_hop_delay!r})"
        )
