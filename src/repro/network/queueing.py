"""Queueing delays on bandwidth-limited links (Section 1, case i).

The paper's first example of an unbounded delay source is "message queueing
due to limited network bandwidth and peaks in the network load".  This module
provides two complementary models:

* :class:`MM1SojournDelay` -- the stationary sojourn-time distribution of an
  M/M/1 queue (exponential with rate ``mu - lambda``), usable as an ordinary
  iid :class:`~repro.network.delays.DelayDistribution`.  Its mean
  ``1 / (mu - lambda)`` is finite whenever the queue is stable
  (``lambda < mu``), so a loaded-but-stable link is an ABE channel even though
  no hard delay bound exists.
* :class:`FifoLinkState` -- a mechanistic FIFO queue: each message's delay is
  its service time plus the backlog left by earlier messages on the *same*
  link.  Delays produced this way are not independent (they share the backlog),
  which makes the class useful for robustness experiments probing how the
  election algorithm behaves when the iid assumption of Definition 1(1) is
  only approximately true.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.network.delays import DelayDistribution

__all__ = ["MM1SojournDelay", "FifoLinkState", "mm1_mean_sojourn", "mm1_utilisation"]


def mm1_mean_sojourn(arrival_rate: float, service_rate: float) -> float:
    """Mean sojourn time (waiting + service) of a stable M/M/1 queue."""
    _validate_rates(arrival_rate, service_rate)
    return 1.0 / (service_rate - arrival_rate)


def mm1_utilisation(arrival_rate: float, service_rate: float) -> float:
    """Utilisation ``rho = lambda / mu`` of the queue."""
    _validate_rates(arrival_rate, service_rate)
    return arrival_rate / service_rate


def _validate_rates(arrival_rate: float, service_rate: float) -> None:
    if arrival_rate < 0:
        raise ValueError("arrival_rate must be non-negative")
    if service_rate <= 0:
        raise ValueError("service_rate must be positive")
    if arrival_rate >= service_rate:
        raise ValueError(
            f"queue is unstable: arrival_rate ({arrival_rate}) must be < "
            f"service_rate ({service_rate})"
        )


class MM1SojournDelay(DelayDistribution):
    """Stationary sojourn time of an M/M/1 queue, as an iid delay distribution.

    For a stable M/M/1 queue the sojourn time of a message in equilibrium is
    exponentially distributed with rate ``mu - lambda``; its mean grows without
    bound as the load approaches capacity, but remains finite for every stable
    configuration -- the textbook example of "bounded expectation, unbounded
    support".
    """

    def __init__(self, arrival_rate: float, service_rate: float) -> None:
        _validate_rates(arrival_rate, service_rate)
        self.arrival_rate = float(arrival_rate)
        self.service_rate = float(service_rate)

    def sample(self, rng: random.Random) -> float:
        return rng.expovariate(self.service_rate - self.arrival_rate)

    def supports_vectorized(self) -> bool:
        return True

    def sample_array(self, gen, count: int):
        return gen.exponential(1.0 / (self.service_rate - self.arrival_rate), count)

    def mean(self) -> float:
        return mm1_mean_sojourn(self.arrival_rate, self.service_rate)

    def utilisation(self) -> float:
        """The offered load ``rho``."""
        return mm1_utilisation(self.arrival_rate, self.service_rate)

    def __repr__(self) -> str:
        return (
            f"MM1SojournDelay(lambda={self.arrival_rate}, mu={self.service_rate}, "
            f"rho={self.utilisation():.3g})"
        )


class FifoLinkState(DelayDistribution):
    """A mechanistic FIFO link with exponential service times.

    Each call to :meth:`delay_for_arrival` (or :meth:`sample`, which assumes
    the caller's messages arrive at the times it is invoked) serves messages
    in order: a message arriving while the link is busy waits behind the
    backlog.  The *expected* delay of a message is bounded by the stationary
    M/M/1 sojourn time as long as the offered load is below capacity, so the
    link is ABE admissible with ``delta = 1 / (mu - lambda_max)`` for any known
    bound ``lambda_max`` on the arrival rate.

    Notes
    -----
    The class is stateful (it remembers the backlog), so a separate instance
    must be used per simulated link.  When used via :meth:`sample` the arrival
    times are taken to be equally spaced at the nominal arrival rate, which is
    a conservative approximation documented for the robustness experiment.
    """

    def __init__(
        self,
        service_rate: float,
        nominal_arrival_rate: Optional[float] = None,
    ) -> None:
        if service_rate <= 0:
            raise ValueError("service_rate must be positive")
        if nominal_arrival_rate is not None:
            _validate_rates(nominal_arrival_rate, service_rate)
        self.service_rate = float(service_rate)
        self.nominal_arrival_rate = (
            float(nominal_arrival_rate) if nominal_arrival_rate is not None else None
        )
        self._backlog_clears_at = 0.0
        self._virtual_clock = 0.0
        self.messages_served = 0

    def reset(self) -> None:
        """Forget all backlog (used between trials)."""
        self._backlog_clears_at = 0.0
        self._virtual_clock = 0.0
        self.messages_served = 0

    def delay_for_arrival(self, arrival_time: float, rng: random.Random) -> float:
        """Delay of a message arriving at ``arrival_time`` given current backlog."""
        if arrival_time < 0:
            raise ValueError("arrival_time must be non-negative")
        service = rng.expovariate(self.service_rate)
        start = max(arrival_time, self._backlog_clears_at)
        finish = start + service
        self._backlog_clears_at = finish
        self.messages_served += 1
        return finish - arrival_time

    def sample(self, rng: random.Random) -> float:
        rate = self.nominal_arrival_rate if self.nominal_arrival_rate else self.service_rate / 2.0
        self._virtual_clock += 1.0 / rate
        return self.delay_for_arrival(self._virtual_clock, rng)

    def mean(self) -> float:
        rate = self.nominal_arrival_rate if self.nominal_arrival_rate else self.service_rate / 2.0
        return mm1_mean_sojourn(rate, self.service_rate)

    def __repr__(self) -> str:
        return (
            f"FifoLinkState(mu={self.service_rate}, "
            f"nominal_lambda={self.nominal_arrival_rate})"
        )
