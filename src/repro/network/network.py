"""The executable network: nodes + channels + programs on one simulator.

:class:`Network` assembles a :class:`~repro.network.topology.Topology`, a
delay model, a clock model and a program factory into a runnable simulation.
It is the main entry point used by the election runner, the synchronizers and
the experiment harness.

Typical usage::

    from repro.network import Network, NetworkConfig, unidirectional_ring
    from repro.network.delays import ExponentialDelay

    config = NetworkConfig(
        topology=unidirectional_ring(8),
        delay_model=ExponentialDelay(mean=1.0),
        seed=42,
    )
    network = Network(config, program_factory=lambda uid: MyProgram())
    network.start()
    network.run(max_events=100_000)
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Union

from repro.network.adversary import AdversarialDelay
from repro.network.channel import Channel, FifoChannel
from repro.network.delays import ConstantDelay, DelayDistribution
from repro.network.node import Node, NodeProgram
from repro.network.sampling import DEFAULT_BLOCK_SIZE, BlockDelaySampler
from repro.network.topology import Topology
from repro.sim.clock import ClockDriftModel, LocalClock
from repro.sim.engine import Simulator
from repro.sim.events import EventKind
from repro.sim.monitor import MetricsCollector
from repro.sim.rng import RandomSource
from repro.sim.trace import NULL_TRACER, Tracer

__all__ = ["NetworkConfig", "Network"]

DelayModel = Union[DelayDistribution, AdversarialDelay]
DelayFactory = Callable[[int, int, int], DelayModel]


@dataclass
class NetworkConfig:
    """Configuration of a simulated network.

    Attributes
    ----------
    topology:
        The communication topology.
    delay_model:
        Either a single delay model shared by all channels, or a factory
        ``(channel_id, source_uid, destination_uid) -> delay model`` for
        heterogeneous links.
    seed:
        Master seed; all randomness (delays, node coins, clock drift) derives
        from it through named streams.
    fifo:
        Whether channels preserve per-link message order.  The ABE election
        algorithm does not need FIFO ("the order of messages is arbitrary"),
        so the default is ``False``.
    processing_delay:
        Optional distribution of local processing time added before each
        delivery handler runs (the paper's ``gamma`` bound); ``None`` means
        instantaneous processing.
    clock_bounds:
        ``(s_low, s_high)`` bounds on local clock rates (Definition 1(2)).
    clock_drift_factory:
        Optional factory ``uid -> ClockDriftModel``; defaults to perfect
        clocks at rate 1 clamped into the bounds.
    size_known:
        Whether nodes know the network size ``n`` (required by the election
        algorithm of Section 3).
    knowledge_factory:
        Optional factory ``uid -> dict`` of additional a-priori knowledge for
        each node (e.g. unique identifiers for the non-anonymous baselines).
    enable_trace:
        Whether to record a structured trace (disable for large sweeps).
    trace_limit:
        Maximum number of trace events retained.
    batch_sampling:
        When true (the default since the fast-path migration; see
        docs/PERFORMANCE.md "Fast defaults"), channels draw their delays
        through a per-channel
        :class:`~repro.network.sampling.BlockDelaySampler` (numpy-vectorized
        where the distribution supports it) instead of one ``sample`` call per
        message.  Results stay a deterministic function of ``seed`` but form a
        different random stream than per-message sampling, so compare runs
        within one mode; pass ``False`` to reproduce pre-migration streams.
        Ignored for adversarial delay models.
    batch_block_size:
        Delays prefetched per full-size sampler refill when ``batch_sampling``
        is on; refills grow geometrically up to this size.  The served delay
        stream is independent of the block size except for two corners
        (still deterministic per seed; compare such runs at one block size):
        exact-mode (non-vectorized) samplers combined with
        ``processing_delay``, where both consume the same channel rng and the
        refill chunking changes their interleaving; and vectorized composite
        distributions whose refill makes several passes over the block
        (mixtures, truncation, dynamic routing), where the chunking changes
        how the passes interleave on the sampler's generator.
    """

    topology: Topology
    delay_model: Union[DelayModel, DelayFactory] = field(
        default_factory=lambda: ConstantDelay(1.0)
    )
    seed: int = 0
    fifo: bool = False
    processing_delay: Optional[DelayDistribution] = None
    clock_bounds: tuple = (1.0, 1.0)
    clock_drift_factory: Optional[Callable[[int], ClockDriftModel]] = None
    size_known: bool = True
    knowledge_factory: Optional[Callable[[int], Dict[str, Any]]] = None
    enable_trace: bool = True
    trace_limit: Optional[int] = 100_000
    batch_sampling: bool = True
    batch_block_size: int = DEFAULT_BLOCK_SIZE


class Network:
    """A runnable simulated network.

    Parameters
    ----------
    config:
        The :class:`NetworkConfig`.
    program_factory:
        Callable ``uid -> NodeProgram`` creating the per-node algorithm
        instance.  The factory receives the uid purely so heterogeneous
        deployments are possible; anonymous algorithms must ignore it.
    """

    def __init__(
        self, config: NetworkConfig, program_factory: Callable[[int], NodeProgram]
    ) -> None:
        self.config = config
        self.topology = config.topology
        self.simulator = Simulator()
        self.metrics = MetricsCollector()
        # A disabled tracer is the shared NULL_TRACER: channels detect it and
        # skip their record calls (and the kwargs dicts) entirely.
        if config.enable_trace:
            self.tracer = Tracer(enabled=True, max_events=config.trace_limit)
        else:
            self.tracer = NULL_TRACER
        self.random_source = RandomSource(config.seed)
        self.processing_delay = config.processing_delay
        self.nodes: List[Node] = []
        self.channels: List[Channel] = []
        self._stop_predicates: List[Callable[[], bool]] = []
        self._started = False
        # Message counts live as plain integers (single `+= 1` on the per
        # message path); the metrics collector reads them back so existing
        # consumers of count()/counters()/summary() see them unchanged.
        self._messages_sent = 0
        self._messages_delivered = 0
        self._deliveries = 0
        self.metrics.bind_external("messages_sent", lambda: self._messages_sent)
        self.metrics.bind_external("messages_delivered", lambda: self._messages_delivered)
        self.metrics.bind_external("deliveries", lambda: self._deliveries)

        self._build_nodes(program_factory)
        self._build_channels()

    # ------------------------------------------------------------------ build

    def _build_nodes(self, program_factory: Callable[[int], NodeProgram]) -> None:
        s_low, s_high = self.config.clock_bounds
        for uid in range(self.topology.n):
            node_rng = self.random_source.stream(f"node/{uid}")
            drift = (
                self.config.clock_drift_factory(uid)
                if self.config.clock_drift_factory is not None
                else None
            )
            clock = LocalClock(
                s_low=s_low,
                s_high=s_high,
                drift_model=drift,
                rng=self.random_source.stream(f"clock/{uid}"),
            )
            node = Node(uid=uid, network=self, clock=clock, rng=node_rng)
            if self.config.size_known:
                node.knowledge["n"] = self.topology.n
            if self.config.knowledge_factory is not None:
                node.knowledge.update(self.config.knowledge_factory(uid))
            node.attach_program(program_factory(uid))
            self.nodes.append(node)

    def _resolve_delay_model(
        self, channel_id: int, source: int, destination: int
    ) -> DelayModel:
        model = self.config.delay_model
        if isinstance(model, (DelayDistribution, AdversarialDelay)):
            return model
        if callable(model):
            return model(channel_id, source, destination)
        raise TypeError(
            f"delay_model must be a DelayDistribution, AdversarialDelay or factory, "
            f"got {type(model)!r}"
        )

    def _build_channels(self) -> None:
        channel_cls = FifoChannel if self.config.fifo else Channel
        for channel_id, (source_uid, destination_uid) in enumerate(self.topology.edges):
            source = self.nodes[source_uid]
            destination = self.nodes[destination_uid]
            delay_model = self._resolve_delay_model(channel_id, source_uid, destination_uid)
            channel_rng = self.random_source.stream(f"channel/{channel_id}")
            delay_sampler = None
            if self.config.batch_sampling and isinstance(delay_model, DelayDistribution):
                delay_sampler = BlockDelaySampler(
                    delay_model, channel_rng, block_size=self.config.batch_block_size
                )
            channel = channel_cls(
                channel_id=channel_id,
                source=source,
                destination=destination,
                destination_port=destination.in_degree,
                delay_model=delay_model,
                rng=channel_rng,
                delay_sampler=delay_sampler,
            )
            destination.add_in_channel(channel)
            source.add_out_channel(channel)
            self.channels.append(channel)

    # ------------------------------------------------------------------ hooks

    def _check_stop_predicates(self) -> None:
        for predicate in self._stop_predicates:
            if predicate():
                self.simulator.stop()
                return

    def stop_when(self, predicate: Callable[[], bool]) -> None:
        """Stop the simulation as soon as ``predicate()`` becomes true.

        The predicate is evaluated before every event; keep it cheap.  The
        check rides the engine's before-event hook (not an event listener),
        so it also covers handle-free fast-path deliveries, and runs without
        predicates cost nothing: the hook is only installed on first use.
        """
        self._stop_predicates.append(predicate)
        if len(self._stop_predicates) == 1:
            self.simulator.add_before_event(self._check_stop_predicates)

    def request_stop(self) -> None:
        """Programs may call this to end the simulation immediately."""
        self.simulator.stop()

    # -------------------------------------------------------------------- run

    def start(self) -> None:
        """Schedule every program's ``on_start`` at time 0 (idempotent)."""
        if self._started:
            return
        self._started = True
        self.simulator.schedule_many(
            (
                (0.0, node.program.on_start)
                for node in self.nodes
                if node.program is not None
            ),
            kind=EventKind.CONTROL,
        )

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
        *,
        raise_on_limit: bool = False,
    ) -> float:
        """Start (if needed) and run the simulation; returns the stop time.

        ``raise_on_limit`` arms the divergence watchdog: exhausting either
        budget with live events pending raises
        :class:`~repro.sim.engine.SimulationDiverged` (a run ended by a
        satisfied :meth:`stop_when` predicate never raises).
        """
        self.start()
        return self.simulator.run(
            until=until, max_events=max_events, raise_on_limit=raise_on_limit
        )

    # ------------------------------------------------------------------ stats

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self.simulator.now

    @property
    def n(self) -> int:
        """Number of nodes."""
        return self.topology.n

    def messages_sent(self) -> int:
        """Total messages transmitted so far."""
        return self._messages_sent

    def messages_delivered(self) -> int:
        """Total messages delivered so far."""
        return self._messages_delivered

    def programs(self) -> List[NodeProgram]:
        """The per-node program instances, in uid order."""
        return [node.program for node in self.nodes if node.program is not None]

    def results(self) -> List[Any]:
        """The per-node ``program.result()`` values, in uid order."""
        return [program.result() for program in self.programs()]

    def channel_between(self, source_uid: int, destination_uid: int) -> Optional[Channel]:
        """The first channel from ``source_uid`` to ``destination_uid`` (or ``None``)."""
        for channel in self.channels:
            if (
                channel.source.uid == source_uid
                and channel.destination.uid == destination_uid
            ):
                return channel
        return None

    def node_rng(self, uid: int) -> random.Random:
        """The per-node random stream (exposed for tests)."""
        return self.nodes[uid].rng

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Network(topology={self.topology.name!r}, n={self.n}, "
            f"channels={len(self.channels)}, t={self.now:.4g})"
        )
