"""Network substrate: nodes, channels, delay models, topologies, adversaries.

This package contains everything needed to *execute* a message-passing
algorithm over a simulated network:

* :mod:`repro.network.delays` -- the delay-distribution hierarchy.  The
  distinction between distributions with a hard bound, a bounded expectation,
  or neither is exactly the distinction between ABD, ABE and plain
  asynchronous networks (see :mod:`repro.models`).
* :mod:`repro.network.retransmission`, :mod:`repro.network.queueing`,
  :mod:`repro.network.routing` -- the three concrete sources of unbounded
  delay motivated in Section 1 of the paper (lossy-channel retransmission,
  bandwidth-limited queueing, dynamic routing).
* :mod:`repro.network.node`, :mod:`repro.network.channel`,
  :mod:`repro.network.network` -- the executable network: nodes run
  :class:`~repro.network.node.NodeProgram` instances and exchange messages
  over channels that sample delays from a delay model.
* :mod:`repro.network.topology` -- ring/line/star/tree/grid/random topologies.
* :mod:`repro.network.adversary` -- adversarial delay schedulers for
  worst-case explorations within a model's constraints.
"""

from repro.network.delays import (
    ConstantDelay,
    DelayDistribution,
    EmpiricalDelay,
    ErlangDelay,
    ExponentialDelay,
    HyperExponentialDelay,
    LogNormalDelay,
    MixtureDelay,
    ParetoDelay,
    ShiftedExponentialDelay,
    TruncatedDelay,
    UniformDelay,
    WeibullDelay,
)
from repro.network.retransmission import (
    GeometricRetransmissionDelay,
    LossyChannelModel,
    expected_transmissions,
)
from repro.network.queueing import MM1SojournDelay, FifoLinkState
from repro.network.routing import DynamicRoutingDelay
from repro.network.messages import Envelope
from repro.network.node import Node, NodeProgram
from repro.network.channel import Channel, FifoChannel
from repro.network.topology import (
    Topology,
    bidirectional_ring,
    complete_graph,
    grid_topology,
    line_topology,
    random_connected,
    star_topology,
    tree_topology,
    unidirectional_ring,
)
from repro.network.network import Network, NetworkConfig
from repro.network.sampling import BlockDelaySampler
from repro.network.adversary import (
    AdversarialDelay,
    MaxDelayAdversary,
    TargetedSlowdownAdversary,
)
from repro.network.faults import CrashStopFault, FaultInjector, MessageLossFault
from repro.network.churn import (
    CrashEvent,
    FaultScript,
    LinkDownEvent,
    LinkUpEvent,
    PeriodicChurn,
    RecoverEvent,
    ScheduledFaultInjector,
    StabilizationMonitor,
)

__all__ = [
    "DelayDistribution",
    "ConstantDelay",
    "UniformDelay",
    "ExponentialDelay",
    "ShiftedExponentialDelay",
    "ErlangDelay",
    "ParetoDelay",
    "LogNormalDelay",
    "WeibullDelay",
    "HyperExponentialDelay",
    "MixtureDelay",
    "TruncatedDelay",
    "EmpiricalDelay",
    "GeometricRetransmissionDelay",
    "LossyChannelModel",
    "expected_transmissions",
    "MM1SojournDelay",
    "FifoLinkState",
    "DynamicRoutingDelay",
    "Envelope",
    "Node",
    "NodeProgram",
    "Channel",
    "FifoChannel",
    "Topology",
    "unidirectional_ring",
    "bidirectional_ring",
    "line_topology",
    "star_topology",
    "complete_graph",
    "tree_topology",
    "grid_topology",
    "random_connected",
    "Network",
    "NetworkConfig",
    "BlockDelaySampler",
    "AdversarialDelay",
    "MaxDelayAdversary",
    "TargetedSlowdownAdversary",
    "MessageLossFault",
    "CrashStopFault",
    "FaultInjector",
    "CrashEvent",
    "RecoverEvent",
    "LinkDownEvent",
    "LinkUpEvent",
    "PeriodicChurn",
    "FaultScript",
    "ScheduledFaultInjector",
    "StabilizationMonitor",
]
