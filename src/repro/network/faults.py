"""Fault injection: message loss and crash-stop nodes.

The ABE model deliberately pushes unreliability *below* the channel
abstraction: a lossy physical link is modelled as a reliable channel whose
delay is the (unbounded, finite-expectation) retransmission time.  This module
provides the complementary view for robustness experiments -- what happens if
messages are simply lost (no retransmission) or nodes crash:

* :class:`MessageLossFault` drops each message on selected channels with a
  fixed probability, *after* the send has been counted (the sender cannot
  tell).
* :class:`CrashStopFault` silently stops a node at a given time: from then on
  it neither processes deliveries nor takes clock ticks.
* :class:`FaultInjector` applies fault specifications to a built
  :class:`~repro.network.network.Network` and keeps counters of what it did.

The test-suite uses these to demonstrate *why* the paper folds loss into the
delay distribution: without retransmission the election algorithm can deadlock
(a lost final message leaves a lone active node waiting forever), whereas the
same loss rate expressed as a retransmission delay keeps every execution live.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Iterable, List, Optional, Set, Tuple

from repro.network.channel import Channel
from repro.network.network import Network
from repro.network.node import Node

__all__ = ["MessageLossFault", "CrashStopFault", "FaultInjector"]


@dataclass(frozen=True)
class MessageLossFault:
    """Drop messages on matching channels with probability ``loss_probability``.

    Attributes
    ----------
    loss_probability:
        Per-message drop probability in ``[0, 1)``.
    channel_predicate:
        Optional filter selecting which channels are lossy (default: all).
    """

    loss_probability: float
    channel_predicate: Optional[Callable[[Channel], bool]] = None

    def __post_init__(self) -> None:
        if not (0.0 <= self.loss_probability < 1.0):
            raise ValueError("loss_probability must be in [0, 1)")

    def applies_to(self, channel: Channel) -> bool:
        """Whether this fault affects the given channel."""
        if self.channel_predicate is None:
            return True
        return bool(self.channel_predicate(channel))


@dataclass(frozen=True)
class CrashStopFault:
    """Crash a node at a given simulation time (crash-stop: it never recovers)."""

    node_uid: int
    crash_time: float

    def __post_init__(self) -> None:
        if self.crash_time < 0:
            raise ValueError("crash_time must be non-negative")


@dataclass
class FaultInjector:
    """Applies fault specifications to a built network.

    Create the network first, then the injector, then call :meth:`apply`
    before running.  The injector monkey-wraps channel delivery and node
    delivery hooks; the wrapped objects keep functioning normally for
    unaffected traffic.

    The fault tallies are plain integer attributes (the drop check runs once
    per message on lossy channels); the network's metrics collector reads
    them back under the historical counter names (``"messages_dropped"``,
    ``"nodes_crashed"``, ``"deliveries_to_crashed"``).  Several injectors on
    one network sum, exactly like repeated string-keyed increments did.
    """

    network: Network
    rng: Optional[random.Random] = None
    messages_dropped: int = 0
    deliveries_to_crashed: int = 0
    nodes_crashed: List[int] = field(default_factory=list)
    _lossy_applied: Set[Tuple[MessageLossFault, int]] = field(
        default_factory=set, init=False, repr=False
    )
    _crash_applied: Set[Tuple[int, float]] = field(
        default_factory=set, init=False, repr=False
    )

    def __post_init__(self) -> None:
        if self.rng is None:
            self.rng = self.network.random_source.stream("faults")
        metrics = self.network.metrics
        metrics.bind_external_sum("messages_dropped", self, lambda: self.messages_dropped)
        metrics.bind_external_sum("nodes_crashed", self, lambda: len(self.nodes_crashed))
        metrics.bind_external_sum(
            "deliveries_to_crashed", self, lambda: self.deliveries_to_crashed
        )

    # ------------------------------------------------------------------ loss

    def apply_message_loss(self, fault: MessageLossFault) -> int:
        """Wrap matching channels so they drop messages; returns channels affected.

        Applying the *same* fault twice is a no-op per channel: the wrap is
        recorded under ``(fault, channel)``, so a repeated ``apply`` (e.g. a
        retried setup path) does not stack a second ``lossy_deliver`` layer
        and silently compound the drop probability.
        """
        affected = 0
        for channel in self.network.channels:
            if not fault.applies_to(channel):
                continue
            key = (fault, id(channel))
            if key in self._lossy_applied:
                continue
            self._lossy_applied.add(key)
            self._wrap_channel(channel, fault.loss_probability)
            affected += 1
        return affected

    def _wrap_channel(self, channel: Channel, loss_probability: float) -> None:
        original_deliver = channel._deliver
        injector = self

        def lossy_deliver(envelope):  # noqa: ANN001 - matches wrapped signature
            if injector.rng.random() < loss_probability:
                injector.messages_dropped += 1
                injector.network.tracer.record(
                    injector.network.simulator.now,
                    "drop",
                    channel.destination.uid,
                    sender=channel.source.uid,
                    channel=channel.channel_id,
                    payload=envelope.payload,
                )
                return
            original_deliver(envelope)

        channel._deliver = lossy_deliver  # type: ignore[method-assign]

    # ----------------------------------------------------------------- crash

    def apply_crash(self, fault: CrashStopFault) -> None:
        """Schedule a crash-stop for the given node (idempotent per fault)."""
        if not (0 <= fault.node_uid < self.network.n):
            raise ValueError(f"node {fault.node_uid} does not exist")
        key = (fault.node_uid, fault.crash_time)
        if key in self._crash_applied:
            return
        self._crash_applied.add(key)
        node = self.network.nodes[fault.node_uid]
        self.network.simulator.schedule_at(
            fault.crash_time, lambda: self._crash_now(node)
        )

    def _must_defer_crash(self, node: Node) -> bool:
        """Whether a crash firing *now* would land before the node started.

        A crash scheduled at time 0 enters the event queue before
        ``Network.start()`` queues the ``on_start`` events at the same
        instant, so without a defer the "crashed" node would be started (and
        its ticks re-armed) right after the crash fired.  The tick process is
        the observable start marker: ``None`` at time 0 means ``on_start``
        has not run yet.
        """
        simulator = self.network.simulator
        program = node.program
        return (
            simulator.now == 0.0
            and program is not None
            and program._tick_process is None
        )

    def _crash_now(self, node: Node, _requeued: bool = False) -> bool:
        if node.uid in self.nodes_crashed:
            return False
        if not _requeued and self._must_defer_crash(node):
            # One-time same-instant requeue: the re-scheduled event sorts
            # after the pending on_start events at the same timestamp, so the
            # crash lands on a *started* node.  Exactly one requeue -- a
            # program that never starts ticking must not loop forever.
            self.network.simulator.schedule_at(
                self.network.simulator.now, lambda: self._crash_now(node, True)
            )
            return False
        return self._crash_apply(node)

    def _crash_apply(self, node: Node) -> bool:
        if node.uid in self.nodes_crashed:
            return False
        self.nodes_crashed.append(node.uid)
        self.network.tracer.record(
            self.network.simulator.now, "crash", node.uid
        )
        program = node.program
        if program is not None:
            program.stop_ticks()

        def swallow(payload, in_port):  # noqa: ANN001 - matches wrapped signature
            self.deliveries_to_crashed += 1

        node.deliver = swallow  # type: ignore[method-assign]
        return True

    # ------------------------------------------------------------------ batch

    def apply(self, faults: Iterable[object]) -> None:
        """Apply a heterogeneous collection of fault specifications."""
        for fault in faults:
            if isinstance(fault, MessageLossFault):
                self.apply_message_loss(fault)
            elif isinstance(fault, CrashStopFault):
                self.apply_crash(fault)
            else:
                raise TypeError(f"unknown fault specification {fault!r}")
