"""Nodes and node programs.

A :class:`Node` is the simulation-level representation of a process: it owns a
local clock, outgoing channels (numbered by local *port*), a per-node random
stream and a reference to the enclosing :class:`~repro.network.network.Network`.

A :class:`NodeProgram` is the algorithm running on a node.  Programs are
written in an actor style: they react to :meth:`NodeProgram.on_start`,
:meth:`NodeProgram.on_receive` and timers/ticks they themselves set up, and
they act on the world exclusively through the protected helpers (``send``,
``set_timer``, ``start_ticks``).  Programs for *anonymous* algorithms (such as
the ABE election algorithm) must not base decisions on ``self.node.uid`` --
the uid exists only for simulation bookkeeping and tracing.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional

from repro.sim.clock import LocalClock
from repro.sim.events import EventHandle, EventKind
from repro.sim.process import TickProcess

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers only
    from repro.network.channel import Channel
    from repro.network.network import Network

__all__ = ["Node", "NodeProgram"]


class Node:
    """A process in the simulated network.

    Nodes are created by :class:`~repro.network.network.Network`; user code
    normally interacts with them only through the program API or when reading
    results (``network.nodes[i].program``).
    """

    def __init__(
        self,
        uid: int,
        network: "Network",
        clock: LocalClock,
        rng: random.Random,
    ) -> None:
        self.uid = uid
        self.network = network
        self.clock = clock
        self.rng = rng
        self.out_channels: List["Channel"] = []
        self.in_channels: List["Channel"] = []
        self.program: Optional[NodeProgram] = None
        self.knowledge: Dict[str, Any] = {}

    # ------------------------------------------------------------------ wiring

    def attach_program(self, program: "NodeProgram") -> None:
        """Install the program that will run on this node."""
        self.program = program
        program.bind(self)

    def add_out_channel(self, channel: "Channel") -> int:
        """Register an outgoing channel; returns its local port number."""
        self.out_channels.append(channel)
        return len(self.out_channels) - 1

    def add_in_channel(self, channel: "Channel") -> int:
        """Register an incoming channel; returns its local in-port number."""
        self.in_channels.append(channel)
        return len(self.in_channels) - 1

    # ------------------------------------------------------------------ access

    @property
    def out_degree(self) -> int:
        """Number of outgoing channels."""
        return len(self.out_channels)

    @property
    def in_degree(self) -> int:
        """Number of incoming channels."""
        return len(self.in_channels)

    @property
    def now(self) -> float:
        """Current real simulation time."""
        return self.network.simulator.now

    @property
    def local_time(self) -> float:
        """Current reading of this node's local clock."""
        return self.clock.local_time(self.now)

    # ----------------------------------------------------------------- actions

    def send(self, port: int, payload: Any) -> None:
        """Transmit ``payload`` over the outgoing channel at ``port``."""
        if not (0 <= port < len(self.out_channels)):
            raise ValueError(
                f"node {self.uid} has no outgoing port {port} "
                f"(out_degree={self.out_degree})"
            )
        self.out_channels[port].transmit(payload)

    def deliver(self, payload: Any, in_port: int) -> None:
        """Hand a delivered payload to the program (called by channels)."""
        if self.program is None:
            raise RuntimeError(f"node {self.uid} has no program attached")
        # Per-message hot path: a plain integer increment on the network; the
        # metrics collector reads it back through an externally bound counter.
        self.network._deliveries += 1
        self.program.on_receive(payload, in_port)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Node(uid={self.uid}, out={self.out_degree}, in={self.in_degree})"


class NodeProgram:
    """Base class for algorithms running on a node.

    Subclasses override :meth:`on_start` and :meth:`on_receive`, and may use
    :meth:`set_timer` and :meth:`start_ticks` to schedule local activity.  The
    base class offers convenience accessors (``rng``, ``now``, ``n``, ...) and
    performs the node binding.
    """

    def __init__(self) -> None:
        self.node: Optional[Node] = None
        self._tick_process: Optional[TickProcess] = None

    # ------------------------------------------------------------------ wiring

    def bind(self, node: Node) -> None:
        """Associate the program with its node (called by the network)."""
        self.node = node

    def _require_node(self) -> Node:
        if self.node is None:
            raise RuntimeError(
                f"{type(self).__name__} is not bound to a node yet; "
                "programs must be attached via Network"
            )
        return self.node

    # ----------------------------------------------------------------- handles

    @property
    def rng(self) -> random.Random:
        """Per-node random stream (independent of channel delays)."""
        return self._require_node().rng

    @property
    def now(self) -> float:
        """Current real simulation time."""
        return self._require_node().now

    @property
    def local_time(self) -> float:
        """Current local clock reading."""
        return self._require_node().local_time

    @property
    def out_degree(self) -> int:
        """Number of outgoing ports."""
        return self._require_node().out_degree

    @property
    def in_degree(self) -> int:
        """Number of incoming ports."""
        return self._require_node().in_degree

    @property
    def n(self) -> Optional[int]:
        """Network size, if the network was configured as size-known.

        The ABE election algorithm requires known ring size ``n``; other
        algorithms (e.g. flooding) work without it.
        """
        return self._require_node().knowledge.get("n")

    def knowledge_item(self, key: str, default: Any = None) -> Any:
        """Read an item of a-priori knowledge (``n``, node identifier, ...)."""
        return self._require_node().knowledge.get(key, default)

    # ----------------------------------------------------------------- actions

    def send(self, port: int, payload: Any) -> None:
        """Send ``payload`` on outgoing port ``port``."""
        self._require_node().send(port, payload)

    def send_all(self, payload: Any) -> None:
        """Send ``payload`` on every outgoing port."""
        node = self._require_node()
        for port in range(node.out_degree):
            node.send(port, payload)

    # ------------------------------------------------------------- neighbours
    #
    # These helpers expose neighbour *uids*, which anonymous algorithms (the
    # ABE election, Itai-Rodeh) must not use; they exist for the identifier
    # based baselines and wave algorithms that legitimately know who their
    # neighbours are.

    def out_neighbor(self, port: int) -> int:
        """Uid of the node reached via outgoing ``port``."""
        node = self._require_node()
        if not (0 <= port < node.out_degree):
            raise ValueError(f"no outgoing port {port}")
        return node.out_channels[port].destination.uid

    def in_neighbor(self, port: int) -> int:
        """Uid of the node whose messages arrive on incoming ``port``."""
        node = self._require_node()
        if not (0 <= port < node.in_degree):
            raise ValueError(f"no incoming port {port}")
        return node.in_channels[port].source.uid

    def out_neighbors(self) -> list:
        """Uids reachable via the outgoing ports, in port order."""
        node = self._require_node()
        return [channel.destination.uid for channel in node.out_channels]

    def port_to(self, neighbor_uid: int) -> int:
        """The outgoing port leading to ``neighbor_uid`` (first match).

        Raises
        ------
        ValueError
            If no outgoing channel leads to that node.
        """
        node = self._require_node()
        for port, channel in enumerate(node.out_channels):
            if channel.destination.uid == neighbor_uid:
                return port
        raise ValueError(f"node {node.uid} has no outgoing channel to {neighbor_uid}")

    def set_timer(
        self, local_delay: float, callback: Callable[[], None]
    ) -> EventHandle:
        """Schedule ``callback`` after ``local_delay`` units of *local* time."""
        node = self._require_node()
        real_delay = node.clock.real_duration_for_local(node.now, local_delay)
        return node.network.simulator.schedule(
            real_delay, callback, kind=EventKind.TIMER
        )

    def start_ticks(
        self, callback: Callable[[int], Optional[bool]], local_period: float = 1.0
    ) -> TickProcess:
        """Start a local-clock tick process delivering ``callback(tick_index)``."""
        node = self._require_node()
        self._tick_process = TickProcess(
            node.network.simulator, node.clock, callback, local_period=local_period
        )
        return self._tick_process

    def stop_ticks(self) -> None:
        """Stop the tick process started by :meth:`start_ticks` (if any)."""
        if self._tick_process is not None:
            self._tick_process.stop()

    def trace(self, category: str, **details: Any) -> None:
        """Record a trace event attributed to this node."""
        node = self._require_node()
        node.network.tracer.record(node.now, category, node.uid, **details)

    @property
    def metrics(self):
        """The network-wide :class:`~repro.sim.monitor.MetricsCollector`."""
        return self._require_node().network.metrics

    # --------------------------------------------------------------- overrides

    def on_start(self) -> None:
        """Called once at simulation start (time 0)."""

    def on_receive(self, payload: Any, port: int) -> None:
        """Called when a message is delivered on incoming ``port``."""

    def result(self) -> Any:
        """Algorithm-specific final result (e.g. elected / not elected)."""
        return None
