"""Lossy physical channels with retransmission (Section 1, case iii).

The paper's central motivating example for unbounded delays: a message sent
over a physical channel succeeds with probability ``p`` per transmission.
Until it succeeds it is retransmitted, so the number of transmissions ``K``
follows a geometric distribution and cannot be bounded -- with probability
``(1 - p)^k`` a message needs more than ``k`` transmissions.  Yet the
*expected* number of transmissions is finite::

    k_avg = sum_{k>=0} (k + 1) (1 - p)^k p = 1 / p

so if a successful transmission takes one time unit the expected delay is
``1/p`` as well.  This is exactly the kind of channel the ABE model admits and
the ABD model rejects, and experiment **E4** reproduces the ``1/p`` claim.

Two representations are provided:

* :class:`GeometricRetransmissionDelay` -- the closed-form delay distribution
  (``K * transmission_time``), used as an ordinary
  :class:`~repro.network.delays.DelayDistribution` on channels;
* :class:`LossyChannelModel` -- an explicit attempt-by-attempt model that
  reports the individual transmission attempts, used by the examples and by
  the tests that verify the closed form against the mechanistic simulation.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import List, Optional

from repro.network.delays import DelayDistribution

__all__ = [
    "expected_transmissions",
    "expected_delay",
    "tail_probability",
    "GeometricRetransmissionDelay",
    "TransmissionAttempt",
    "LossyChannelModel",
]


def expected_transmissions(success_probability: float) -> float:
    """Expected number of transmissions until success: ``1 / p``.

    This is the closed form derived in Section 1 of the paper
    (``k_avg = sum (k+1)(1-p)^k p``).
    """
    _validate_probability(success_probability)
    return 1.0 / success_probability


def expected_delay(success_probability: float, transmission_time: float = 1.0) -> float:
    """Expected message delay over the lossy channel: ``transmission_time / p``."""
    _validate_probability(success_probability)
    if transmission_time <= 0:
        raise ValueError("transmission_time must be positive")
    return transmission_time / success_probability


def tail_probability(success_probability: float, k: int) -> float:
    """Probability that a message needs *more than* ``k`` transmissions: ``(1-p)^k``.

    The paper uses this to argue the delay is unbounded: the tail is positive
    for every ``k``.
    """
    _validate_probability(success_probability)
    if k < 0:
        raise ValueError("k must be non-negative")
    return (1.0 - success_probability) ** k


def _validate_probability(p: float) -> None:
    if not (0.0 < p <= 1.0):
        raise ValueError(f"success probability must be in (0, 1], got {p}")


class GeometricRetransmissionDelay(DelayDistribution):
    """Delay of a message over a lossy channel with per-attempt success ``p``.

    The delay equals ``K * transmission_time`` where ``K ~ Geometric(p)``
    (support ``{1, 2, ...}``).  The distribution is unbounded (not ABD
    admissible) but has finite mean ``transmission_time / p`` (ABE
    admissible), which is the paper's flagship example of an ABE channel.
    """

    def __init__(self, success_probability: float, transmission_time: float = 1.0) -> None:
        _validate_probability(success_probability)
        if transmission_time <= 0:
            raise ValueError("transmission_time must be positive")
        self.success_probability = float(success_probability)
        self.transmission_time = float(transmission_time)

    def sample(self, rng: random.Random) -> float:
        return self.sample_transmissions(rng) * self.transmission_time

    def sample_transmissions(self, rng: random.Random) -> int:
        """Draw the number of transmissions needed for one message (>= 1)."""
        p = self.success_probability
        if p >= 1.0:
            return 1
        # Inverse-CDF sampling of a geometric distribution on {1, 2, ...}.
        u = rng.random()
        # Guard against u == 0 which would give log(0).
        u = max(u, 1e-300)
        return int(math.ceil(math.log(u) / math.log(1.0 - p)))

    def supports_vectorized(self) -> bool:
        return True

    def sample_array(self, gen, count: int):
        import numpy as np

        if self.success_probability >= 1.0:
            return np.full(count, self.transmission_time)
        # Same inverse-CDF transform (and u == 0 guard) as the scalar path.
        u = np.maximum(gen.random(count), 1e-300)
        transmissions = np.ceil(np.log(u) / math.log(1.0 - self.success_probability))
        return transmissions * self.transmission_time

    def mean(self) -> float:
        return self.transmission_time / self.success_probability

    def __repr__(self) -> str:
        return (
            f"GeometricRetransmissionDelay(p={self.success_probability}, "
            f"transmission_time={self.transmission_time})"
        )


@dataclass(frozen=True)
class TransmissionAttempt:
    """One attempt to push a message across the physical channel."""

    index: int
    start_time: float
    end_time: float
    success: bool


class LossyChannelModel:
    """Mechanistic attempt-by-attempt model of a lossy physical channel.

    Unlike :class:`GeometricRetransmissionDelay`, which samples the total
    delay in one shot, this class simulates every transmission attempt and
    records it, so tests and examples can inspect the retransmission process
    itself (attempt counts, per-attempt outcomes) and verify that the
    mechanistic model and the closed-form distribution agree.

    Parameters
    ----------
    success_probability:
        Probability that a single transmission attempt is received intact.
    transmission_time:
        Real time consumed by one attempt (successful or not).
    max_attempts:
        Safety valve for simulations; ``None`` means retry forever (the
        faithful model).  When the cap is hit the message is reported as
        delivered at the cap -- a deliberately *unfaithful* fallback that the
        tests assert is never exercised at reasonable probabilities.
    """

    def __init__(
        self,
        success_probability: float,
        transmission_time: float = 1.0,
        max_attempts: Optional[int] = None,
    ) -> None:
        _validate_probability(success_probability)
        if transmission_time <= 0:
            raise ValueError("transmission_time must be positive")
        if max_attempts is not None and max_attempts < 1:
            raise ValueError("max_attempts must be >= 1 when given")
        self.success_probability = float(success_probability)
        self.transmission_time = float(transmission_time)
        self.max_attempts = max_attempts
        self.total_attempts = 0
        self.total_messages = 0

    def transmit(self, rng: random.Random, start_time: float = 0.0) -> List[TransmissionAttempt]:
        """Simulate the delivery of one message, returning all attempts made.

        The last attempt in the returned list is always the successful one
        (or the capped final attempt when ``max_attempts`` intervenes).
        """
        attempts: List[TransmissionAttempt] = []
        index = 0
        time = start_time
        while True:
            success = rng.random() < self.success_probability
            end = time + self.transmission_time
            capped = self.max_attempts is not None and index + 1 >= self.max_attempts
            attempts.append(
                TransmissionAttempt(
                    index=index, start_time=time, end_time=end, success=success or capped
                )
            )
            self.total_attempts += 1
            index += 1
            time = end
            if success or capped:
                break
        self.total_messages += 1
        return attempts

    def delivery_delay(self, rng: random.Random) -> float:
        """Total delay experienced by one message (sum over attempts)."""
        attempts = self.transmit(rng)
        return attempts[-1].end_time - attempts[0].start_time

    def observed_mean_attempts(self) -> float:
        """Empirical mean attempts per message over the model's lifetime."""
        if self.total_messages == 0:
            return 0.0
        return self.total_attempts / self.total_messages

    def theoretical_mean_attempts(self) -> float:
        """The paper's closed form ``1/p``."""
        return expected_transmissions(self.success_probability)

    def as_delay_distribution(self) -> GeometricRetransmissionDelay:
        """The closed-form delay distribution equivalent to this channel."""
        return GeometricRetransmissionDelay(
            self.success_probability, self.transmission_time
        )

    def __repr__(self) -> str:
        return (
            f"LossyChannelModel(p={self.success_probability}, "
            f"transmission_time={self.transmission_time}, max_attempts={self.max_attempts})"
        )
