"""Adversarial delay schedulers.

The ABE model constrains the *distribution* of delays, not individual delays;
an adversary may therefore make any particular message arbitrarily slow as
long as the expectation bound holds.  The classes here let experiments explore
worst-case-flavoured behaviour inside (or deliberately outside) a model's
constraints:

* :class:`MaxDelayAdversary` -- always charges the hard bound of a bounded
  distribution: the worst admissible ABD behaviour.
* :class:`TargetedSlowdownAdversary` -- slows down messages touching a victim
  node by a constant factor while leaving others fast; used to probe how the
  election algorithm's averages degrade when one link is persistently slow.
* :class:`AdversarialDelay` -- the strategy interface channels understand.
"""

from __future__ import annotations

import abc
import random
from typing import Any, Optional

from repro.network.delays import DelayDistribution

__all__ = ["AdversarialDelay", "MaxDelayAdversary", "TargetedSlowdownAdversary"]


class AdversarialDelay(abc.ABC):
    """A delay *strategy*: sees message metadata and chooses the delay.

    Unlike :class:`~repro.network.delays.DelayDistribution`, the adversary is
    given the source, destination, payload and send time of each message, so
    it can discriminate between messages.  It must still report the mean and
    bound it guarantees so the model classes can validate it.
    """

    @abc.abstractmethod
    def delay_for(
        self,
        source: int,
        destination: int,
        payload: Any,
        send_time: float,
        rng: random.Random,
    ) -> float:
        """Choose the delay for one message."""

    @abc.abstractmethod
    def mean(self) -> float:
        """An upper bound on the expected delay the adversary guarantees."""

    def bound(self) -> Optional[float]:
        """A hard delay bound, or ``None`` if the adversary may be unbounded."""
        return None

    def is_bounded(self) -> bool:
        """Whether :meth:`bound` is not ``None``."""
        return self.bound() is not None

    def has_finite_mean(self) -> bool:
        """Whether :meth:`mean` is finite."""
        import math

        return math.isfinite(self.mean())


class MaxDelayAdversary(AdversarialDelay):
    """Always delay by the hard bound of a bounded base distribution.

    This is the worst behaviour any ABD network with that bound can exhibit
    and is used to sanity-check ABD synchronizer correctness at the edge of
    its assumption.
    """

    def __init__(self, base: DelayDistribution) -> None:
        bound = base.bound()
        if bound is None:
            raise ValueError(
                "MaxDelayAdversary requires a bounded base distribution "
                f"(got {base!r})"
            )
        self.base = base
        self._bound = float(bound)

    def delay_for(
        self,
        source: int,
        destination: int,
        payload: Any,
        send_time: float,
        rng: random.Random,
    ) -> float:
        return self._bound

    def mean(self) -> float:
        return self._bound

    def bound(self) -> Optional[float]:
        return self._bound

    def __repr__(self) -> str:
        return f"MaxDelayAdversary(bound={self._bound})"


class TargetedSlowdownAdversary(AdversarialDelay):
    """Slow down every message involving a victim node by a constant factor.

    Messages whose source or destination equals ``victim`` get their sampled
    delay multiplied by ``slowdown``; all other messages use the base
    distribution unchanged.  The guaranteed expectation bound is therefore
    ``slowdown * base.mean()`` (a valid, if pessimistic, ABE bound).
    """

    def __init__(
        self, base: DelayDistribution, victim: int, slowdown: float = 10.0
    ) -> None:
        if slowdown < 1.0:
            raise ValueError("slowdown must be >= 1")
        self.base = base
        self.victim = int(victim)
        self.slowdown = float(slowdown)

    def delay_for(
        self,
        source: int,
        destination: int,
        payload: Any,
        send_time: float,
        rng: random.Random,
    ) -> float:
        delay = self.base.sample(rng)
        if source == self.victim or destination == self.victim:
            delay *= self.slowdown
        return delay

    def mean(self) -> float:
        return self.slowdown * self.base.mean()

    def bound(self) -> Optional[float]:
        base_bound = self.base.bound()
        if base_bound is None:
            return None
        return self.slowdown * base_bound

    def __repr__(self) -> str:
        return (
            f"TargetedSlowdownAdversary(base={self.base!r}, victim={self.victim}, "
            f"slowdown={self.slowdown})"
        )
