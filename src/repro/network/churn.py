"""Scripted dynamic-network faults: timed crash/recover and link churn.

:mod:`repro.network.faults` models *terminal* faults: a crashed node never
comes back and a lossy channel stays lossy.  This module adds the dynamic
half of the story -- a :class:`FaultScript` of timed, deterministic fault
events executed by a :class:`ScheduledFaultInjector` that can *reverse* what
it applies:

* :class:`CrashEvent` / :class:`RecoverEvent` -- a crash installs the same
  delivery swallow and tick stop as :class:`~repro.network.faults.CrashStopFault`;
  the paired recovery removes the swallow (the ``deliver`` instance attribute
  is deleted, restoring the class method) and hands control back to the
  program via its optional ``on_recover()`` hook.
* :class:`LinkDownEvent` / :class:`LinkUpEvent` -- a link-down saves the
  channel's ``_deliver`` and replaces it with a counter-only dropper; the
  paired link-up restores the saved function.  Channels bind ``_deliver`` at
  *send* time (see :meth:`~repro.network.channel.Channel.transmit`), so
  messages already in flight when the link goes down still arrive -- only
  messages sent during the outage are lost.  This models a cut transmission
  medium, not retroactive message destruction.
* :class:`PeriodicChurn` -- a rate-driven churn process expanded at install
  time into concrete crash events, drawing exponential inter-arrival gaps and
  uniform victims from the network's seed-derived ``"churn"`` stream, so the
  realized schedule is a pure function of the run's seed.

Targets may be symbolic: ``CrashEvent(node="leader", ...)`` resolves the
*current* leader at fire time (retrying on a fixed cadence while no leader
exists yet), which is how "kill whoever is leader at t" is expressed without
knowing the election outcome in advance.

The :class:`StabilizationMonitor` records per-disruption metrics for
churn-aware elections: when the ring loses its last live leader an *episode*
opens, and the crowning that closes it yields the leader-downtime,
time-to-restabilize (measured from the causal disruption) and message cost of
that re-election.

One structural fact matters for interpreting results: a unidirectional ring
with any node down is *partitioned* -- no token can complete the ``hop = n``
traversal that crowns a leader while a node swallows deliveries.  Re-elections
triggered during an outage therefore complete only after the recovery, which
is why quiescent scripts (every crash eventually recovers, every link comes
back up) are the ones with termination guarantees.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from functools import partial
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.network.channel import Channel
from repro.network.faults import FaultInjector
from repro.network.network import Network

__all__ = [
    "CrashEvent",
    "RecoverEvent",
    "LinkDownEvent",
    "LinkUpEvent",
    "PeriodicChurn",
    "FaultScript",
    "ScheduledFaultInjector",
    "StabilizationMonitor",
]

#: Symbolic crash target: resolve the current leader at fire time.
LEADER = "leader"


def _check_time(time: float) -> None:
    if time < 0:
        raise ValueError(f"event time must be non-negative, got {time}")


@dataclass(frozen=True)
class CrashEvent:
    """Crash a node at ``time``; with ``downtime`` it recovers that much later.

    ``node`` is a simulation uid or the symbolic string ``"leader"``, which
    resolves to whoever leads when the event fires (the injector retries on a
    fixed cadence while no leader exists).  Symbolic targets *require* a
    ``downtime`` to be quiescent -- a matching :class:`RecoverEvent` cannot
    name a node that is only known at fire time.
    """

    node: Union[int, str]
    time: float
    downtime: Optional[float] = None

    def __post_init__(self) -> None:
        _check_time(self.time)
        if isinstance(self.node, str) and self.node != LEADER:
            raise ValueError(
                f"symbolic crash target must be {LEADER!r}, got {self.node!r}"
            )
        if self.downtime is not None and self.downtime <= 0:
            raise ValueError(f"downtime must be positive, got {self.downtime}")


@dataclass(frozen=True)
class RecoverEvent:
    """Recover a previously crashed node at ``time`` (no-op if it is up)."""

    node: int
    time: float

    def __post_init__(self) -> None:
        _check_time(self.time)


@dataclass(frozen=True)
class LinkDownEvent:
    """Cut channel ``channel`` at ``time``; with ``duration`` it re-arms later."""

    channel: int
    time: float
    duration: Optional[float] = None

    def __post_init__(self) -> None:
        _check_time(self.time)
        if self.duration is not None and self.duration <= 0:
            raise ValueError(f"duration must be positive, got {self.duration}")


@dataclass(frozen=True)
class LinkUpEvent:
    """Restore a previously cut channel at ``time`` (no-op if it is up)."""

    channel: int
    time: float

    def __post_init__(self) -> None:
        _check_time(self.time)


@dataclass(frozen=True)
class PeriodicChurn:
    """A rate-driven churn process: ``count`` crash-recover cycles.

    Expanded at install time into concrete :class:`CrashEvent`\\ s: starting at
    ``start``, inter-crash gaps are exponential with mean ``interval`` and each
    victim is drawn uniformly from the ring (or is the symbolic leader when
    ``target="leader"``), all from the run's seed-derived ``"churn"`` RNG
    stream.  Every crash carries ``downtime``, so the process is always
    eventually quiescent.
    """

    interval: float
    count: int
    downtime: float
    start: float = 0.0
    target: str = "any"

    def __post_init__(self) -> None:
        if self.interval <= 0:
            raise ValueError(f"interval must be positive, got {self.interval}")
        if self.count < 0:
            raise ValueError(f"count must be >= 0, got {self.count}")
        if self.downtime <= 0:
            raise ValueError(f"downtime must be positive, got {self.downtime}")
        _check_time(self.start)
        if self.target not in ("any", LEADER):
            raise ValueError(
                f"target must be 'any' or {LEADER!r}, got {self.target!r}"
            )

    def expand(self, n: int, rng: random.Random) -> List[CrashEvent]:
        """The concrete crash events this process realizes for an ``n``-ring."""
        events: List[CrashEvent] = []
        time = self.start
        for _ in range(self.count):
            time += rng.expovariate(1.0 / self.interval)
            node: Union[int, str] = (
                LEADER if self.target == LEADER else rng.randrange(n)
            )
            events.append(CrashEvent(node=node, time=time, downtime=self.downtime))
        return events


#: The concrete (non-periodic) event types a script expands into.
ConcreteEvent = Union[CrashEvent, RecoverEvent, LinkDownEvent, LinkUpEvent]
ScriptEvent = Union[ConcreteEvent, PeriodicChurn]


@dataclass(frozen=True)
class FaultScript:
    """A deterministic schedule of fault events plus churn-detection knobs.

    ``heartbeat_interval`` / ``leader_timeout`` override the model-derived
    defaults of :meth:`repro.models.abe.ABEModel.churn_timeouts` for the
    churn-aware election built on this script (``None`` keeps the defaults).
    """

    events: Tuple[ScriptEvent, ...] = ()
    heartbeat_interval: Optional[float] = None
    leader_timeout: Optional[float] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "events", tuple(self.events))
        known = (CrashEvent, RecoverEvent, LinkDownEvent, LinkUpEvent, PeriodicChurn)
        for event in self.events:
            if not isinstance(event, known):
                raise ValueError(f"unknown fault-script event {event!r}")
        if self.heartbeat_interval is not None and self.heartbeat_interval <= 0:
            raise ValueError("heartbeat_interval must be positive")
        if self.leader_timeout is not None and self.leader_timeout <= 0:
            raise ValueError("leader_timeout must be positive")

    def expand(self, n: int, rng: random.Random) -> List[ConcreteEvent]:
        """Concrete events in deterministic order (stable sort by time).

        Periodic processes are realized through ``rng``; everything else
        passes through.  Same ``(script, n, rng state)`` -- same expansion,
        which is what keeps churn trials pure functions of their seed.
        """
        concrete: List[ConcreteEvent] = []
        for event in self.events:
            if isinstance(event, PeriodicChurn):
                concrete.extend(event.expand(n, rng))
            else:
                concrete.append(event)
        concrete.sort(key=lambda e: e.time)  # stable: ties keep script order
        return concrete

    @property
    def eventually_quiescent(self) -> bool:
        """Whether every disruption is eventually reversed.

        True when each crash carries a ``downtime`` or a later
        :class:`RecoverEvent` for the same concrete node, and each link-down
        carries a ``duration`` or a later :class:`LinkUpEvent`.  Only
        quiescent scripts guarantee the churn-aware election terminates with
        a unique live leader (see the module docstring on ring partition).
        """
        for event in self.events:
            if isinstance(event, PeriodicChurn):
                continue  # always carries a downtime
            if isinstance(event, CrashEvent) and event.downtime is None:
                if isinstance(event.node, str):
                    return False  # fire-time target: no recover can name it
                if not any(
                    isinstance(other, RecoverEvent)
                    and other.node == event.node
                    and other.time >= event.time
                    for other in self.events
                ):
                    return False
            if isinstance(event, LinkDownEvent) and event.duration is None:
                if not any(
                    isinstance(other, LinkUpEvent)
                    and other.channel == event.channel
                    and other.time >= event.time
                    for other in self.events
                ):
                    return False
        return True


class ScheduledFaultInjector(FaultInjector):
    """A schedule-aware :class:`~repro.network.faults.FaultInjector`.

    Executes a :class:`FaultScript` against a built network and *reverses*
    what it applies: ``nodes_crashed`` tracks the **currently** crashed set
    (the metric of the same name follows), crash reversal deletes the
    ``deliver`` swallow, and link reversal restores the saved channel
    ``_deliver``.  Programs may expose two optional hooks:

    * ``on_crash() -> bool`` -- called after the swallow is installed and the
      ticks are stopped; returns whether the node was the leader.
    * ``on_recover()`` -- called after delivery is restored; the program
      re-enters the computation (for the churn-aware election: as an idle
      non-leader candidate).

    ``quiescent`` is True once every scheduled directive (including the
    recoveries spawned by ``downtime``/``duration``) has fired -- the stop
    predicate of churn elections combines it with "exactly one live leader".
    """

    #: Retry cadence for symbolic ``"leader"`` targets while no leader exists.
    LEADER_RETRY = 1.0

    def __init__(
        self,
        network: Network,
        script: FaultScript,
        *,
        status: Optional[Any] = None,
        monitor: Optional["StabilizationMonitor"] = None,
        rng: Optional[random.Random] = None,
    ) -> None:
        super().__init__(network=network, rng=rng)
        self.script = script
        self.status = status
        self.monitor = monitor
        self.pending = 0
        self.crashes_applied = 0
        self.recoveries = 0
        self.link_outages = 0
        self._installed = False
        self._link_saved: Dict[int, Any] = {}

    # ---------------------------------------------------------------- install

    def install(self) -> int:
        """Expand the script and schedule every directive; returns the count.

        Periodic processes draw from the network's ``"churn"`` stream -- a
        dedicated stream so scripted churn never perturbs the ``"faults"``
        stream the message-loss coin flips use.
        """
        if self._installed:
            raise RuntimeError("fault script already installed")
        self._installed = True
        churn_rng = self.network.random_source.stream("churn")
        events = self.script.expand(self.network.n, churn_rng)
        simulator = self.network.simulator
        for event in events:
            self._validate(event)
            if isinstance(event, CrashEvent):
                handler = partial(self._fire_crash, event)
            elif isinstance(event, RecoverEvent):
                handler = partial(self._fire_recover_uid, int(event.node))
            elif isinstance(event, LinkDownEvent):
                handler = partial(self._fire_link_down, event)
            else:
                handler = partial(self._fire_link_up_id, int(event.channel))
            self.pending += 1
            simulator.schedule_at(event.time, handler)
        return len(events)

    def _validate(self, event: ConcreteEvent) -> None:
        if isinstance(event, (CrashEvent, RecoverEvent)):
            node = event.node
            if isinstance(node, int) and not (0 <= node < self.network.n):
                raise ValueError(f"node {node} does not exist")
        else:
            channel = event.channel
            if not (0 <= channel < len(self.network.channels)):
                raise ValueError(f"channel {channel} does not exist")

    @property
    def quiescent(self) -> bool:
        """Whether every scheduled directive (and spawned reversal) has fired."""
        return self._installed and self.pending == 0

    # ------------------------------------------------------------------ crash

    def _fire_crash(self, event: CrashEvent, uid: Optional[int] = None) -> None:
        simulator = self.network.simulator
        if uid is None:
            uid = self._resolve(event.node)
            if uid is None:
                # No (live) leader to kill yet: keep the directive pending and
                # re-check on a fixed cadence.  Deterministic: the retry time
                # depends only on simulation state.
                simulator.schedule_at(
                    simulator.now + self.LEADER_RETRY, partial(self._fire_crash, event)
                )
                return
        node = self.network.nodes[uid]
        if self._must_defer_crash(node):
            # Same-instant requeue: see FaultInjector._crash_now.  Keeping the
            # requeue at the directive level preserves the downtime pairing.
            simulator.schedule_at(
                simulator.now, partial(self._fire_crash, event, uid)
            )
            return
        applied = self._crash_apply(node)
        if applied and event.downtime is not None:
            self.pending += 1
            simulator.schedule_at(
                simulator.now + event.downtime, partial(self._fire_recover_uid, uid)
            )
        self.pending -= 1

    def _resolve(self, target: Union[int, str]) -> Optional[int]:
        if isinstance(target, int):
            return target
        leader_uid = getattr(self.status, "leader_uid", None)
        if leader_uid is None or leader_uid in self.nodes_crashed:
            return None
        return leader_uid

    def _crash_apply(self, node) -> bool:
        applied = super()._crash_apply(node)
        if not applied:
            return False
        self.crashes_applied += 1
        was_leader = False
        hook = getattr(node.program, "on_crash", None)
        if hook is not None:
            was_leader = bool(hook())
        if self.monitor is not None:
            self.monitor.record_crash(self.network.simulator.now, node.uid, was_leader)
        return True

    # ---------------------------------------------------------------- recover

    def _fire_recover_uid(self, uid: int) -> None:
        node = self.network.nodes[uid]
        if uid in self.nodes_crashed:
            self.nodes_crashed.remove(uid)
            # Reversal of the crash swallow: Node.deliver is a class method
            # shadowed by an instance attribute; deleting the shadow restores
            # the normal delivery path, in-flight messages included.
            node.__dict__.pop("deliver", None)
            self.recoveries += 1
            self.network.tracer.record(self.network.simulator.now, "recover", uid)
            hook = getattr(node.program, "on_recover", None)
            if hook is not None:
                hook()
            if self.monitor is not None:
                self.monitor.record_recover(self.network.simulator.now, uid)
        self.pending -= 1

    # ------------------------------------------------------------------- link

    def _fire_link_down(self, event: LinkDownEvent) -> None:
        channel_id = int(event.channel)
        simulator = self.network.simulator
        if channel_id not in self._link_saved:
            channel = self.network.channels[channel_id]
            self._link_saved[channel_id] = channel._deliver
            channel._deliver = partial(self._drop_on_down_link, channel)
            self.link_outages += 1
            self.network.tracer.record(
                simulator.now, "link-down", channel.destination.uid, channel=channel_id
            )
            if self.monitor is not None:
                self.monitor.record_link_down(simulator.now, channel_id)
        if event.duration is not None:
            self.pending += 1
            simulator.schedule_at(
                simulator.now + event.duration,
                partial(self._fire_link_up_id, channel_id),
            )
        self.pending -= 1

    def _drop_on_down_link(self, channel: Channel, envelope) -> None:
        # Send-time binding means only messages *sent during* the outage land
        # here; in-flight messages deliver through the saved function.
        self.messages_dropped += 1
        self.network.tracer.record(
            self.network.simulator.now,
            "link-drop",
            channel.destination.uid,
            sender=channel.source.uid,
            channel=channel.channel_id,
            payload=envelope.payload,
        )

    def _fire_link_up_id(self, channel_id: int) -> None:
        saved = self._link_saved.pop(channel_id, None)
        if saved is not None:
            channel = self.network.channels[channel_id]
            channel._deliver = saved
            self.network.tracer.record(
                self.network.simulator.now,
                "link-up",
                channel.destination.uid,
                channel=channel_id,
            )
            if self.monitor is not None:
                self.monitor.record_link_up(self.network.simulator.now, channel_id)
        self.pending -= 1


class StabilizationMonitor:
    """Per-disruption stabilization metrics of a churn-aware election.

    The injector reports disruptions (crash / link-down) and the election
    programs report leadership transitions (crowned / deposed / leader
    crashed).  When the count of live leaders drops to zero an *episode*
    opens; the crowning that closes it records:

    * ``downtime`` -- leaderless duration (loss to re-crown),
    * ``time_to_restabilize`` -- from the causal disruption (the last
      disruption at or before the loss) to the re-crown, and
    * ``messages`` -- network messages sent during the episode (heartbeats
      and re-election traffic alike).
    """

    def __init__(self) -> None:
        self.network: Optional[Network] = None
        self.crashes = 0
        self.recoveries = 0
        self.link_outages = 0
        self.disruptions: List[Tuple[float, str, int]] = []
        self.episodes: List[Dict[str, float]] = []
        self.first_election_time: Optional[float] = None
        self._live = 0
        self._lost_at: Optional[float] = None
        self._trigger = 0.0
        self._messages_at_loss = 0
        self._last_disruption: Optional[float] = None

    def attach(self, network: Network) -> None:
        """Bind the network whose message counter episodes snapshot."""
        self.network = network

    def _messages(self) -> int:
        return self.network.messages_sent() if self.network is not None else 0

    # ------------------------------------------------------------ disruptions

    def record_crash(self, time: float, uid: int, was_leader: bool) -> None:
        self.crashes += 1
        self.disruptions.append((time, "crash", uid))
        self._last_disruption = time
        if was_leader:
            self._live -= 1
            if self._live <= 0:
                self._leader_lost(time)

    def record_recover(self, time: float, uid: int) -> None:
        self.recoveries += 1

    def record_link_down(self, time: float, channel_id: int) -> None:
        self.link_outages += 1
        self.disruptions.append((time, "link-down", channel_id))
        self._last_disruption = time

    def record_link_up(self, time: float, channel_id: int) -> None:
        pass

    # ------------------------------------------------------------- leadership

    def record_crowned(self, time: float, uid: int, epoch: int) -> None:
        if self.first_election_time is None:
            self.first_election_time = time
        self._live += 1
        if self._live == 1 and self._lost_at is not None:
            self.episodes.append(
                dict(
                    lost_at=self._lost_at,
                    trigger=self._trigger,
                    recrowned_at=time,
                    downtime=time - self._lost_at,
                    time_to_restabilize=time - self._trigger,
                    messages=float(self._messages() - self._messages_at_loss),
                )
            )
            self._lost_at = None

    def record_deposed(self, time: float, uid: int) -> None:
        self._live -= 1
        if self._live <= 0:
            self._leader_lost(time)

    def _leader_lost(self, time: float) -> None:
        if self._lost_at is not None:
            return
        self._lost_at = time
        trigger = self._last_disruption
        self._trigger = trigger if trigger is not None and trigger <= time else time
        self._messages_at_loss = self._messages()

    # ----------------------------------------------------------------- report

    @property
    def live_leaders(self) -> int:
        """The monitor's mirror of the current live-leader count."""
        return self._live

    def summary(self) -> Dict[str, float]:
        """Aggregate the per-disruption records into flat result fields."""
        downtimes = [episode["downtime"] for episode in self.episodes]
        restabilize = [episode["time_to_restabilize"] for episode in self.episodes]
        messages = [episode["messages"] for episode in self.episodes]
        return dict(
            crashes=self.crashes,
            recoveries=self.recoveries,
            link_outages=self.link_outages,
            disruptions=len(self.disruptions),
            re_elections=len(self.episodes),
            leader_downtime=float(sum(downtimes)),
            mean_time_to_restabilize=(
                sum(restabilize) / len(restabilize) if restabilize else 0.0
            ),
            max_time_to_restabilize=max(restabilize) if restabilize else 0.0,
            mean_messages_per_re_election=(
                sum(messages) / len(messages) if messages else 0.0
            ),
        )
