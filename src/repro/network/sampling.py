"""Block-wise delay sampling for the channel hot path.

Sampling a delay per message costs a Python method dispatch plus one or more
``random.Random`` calls; over an experiment sweep (millions of messages) this
is a measurable slice of the wall clock.  :class:`BlockDelaySampler` amortizes
it by drawing delays in blocks ahead of time, one sampler per channel so the
per-stream seed discipline is untouched.

Two refill modes exist:

``exact`` (the default)
    Blocks come from :meth:`DelayDistribution.sample_block`, which consumes
    the channel's ``random.Random`` stream exactly like repeated per-message
    ``sample`` calls would.  A channel whose stream is used *only* for delay
    sampling therefore produces bit-identical simulations with or without the
    sampler; the win is the amortized method dispatch and any per-distribution
    block fast path (e.g. hoisting the rate constant out of the loop).

``vectorized``
    Blocks come from :meth:`DelayDistribution.sample_array` on a
    ``numpy.random.Generator`` seeded deterministically from the channel's
    ``random.Random`` stream at the first refill.  This is the fastest mode
    (one numpy call per block) and remains a pure function of the master
    seed, but the draws are a *different* deterministic stream than the scalar
    path, so results are comparable across runs in this mode rather than with
    per-message sampling.

Distributions that do not implement a vectorized sampler silently fall back to
exact block refills, so a mixed delay zoo can still run with
``batch_sampling`` enabled.

Hot-path notes
--------------
``next()`` serves values straight off a plain Python list with a cached block
length (one compare, one index, one integer store per call -- no numpy scalar
ever crosses the boundary; vectorized refills are converted with ``tolist()``
once per block).  Refills grow geometrically from a small first block up to
``block_size``: a short simulation (one election on a 32-ring uses a handful
of delays per channel) never pays for delays it will not use, while a long
sweep converges to full-size refills.  Both refill modes draw values strictly
in sequence, so the served stream is independent of how it is chunked -- in
vectorized mode whenever the distribution fills a block in a single
element-order pass (every simple distribution does; the numpy generator is
exclusive to the sampler), and in exact mode whenever the channel's
``random.Random`` is consumed only by the sampler.  Two exceptions depend on
the block schedule (deterministic per seed, but only comparable between runs
with identical ``batch_block_size``): an exact-mode sampler whose rng is
*shared* with another consumer (``processing_delay`` draws on the same
channel stream), where the chunk boundaries determine how the two consumers
interleave; and a vectorized *composite* distribution whose refill makes
several passes over the block (``MixtureDelay``, ``TruncatedDelay``,
``DynamicRoutingDelay``), where the chunk boundaries determine how the
passes interleave on the generator.  The numpy generator is created lazily at the first
refill, so channels that never transmit do not pay its construction;
laziness is stream-invariant because the seed is the first draw from the
channel's otherwise untouched ``random.Random``.
"""

from __future__ import annotations

import random
from typing import List, Optional

from repro.network.delays import DelayDistribution

__all__ = ["BlockDelaySampler", "DEFAULT_BLOCK_SIZE", "INITIAL_BLOCK_SIZE"]

#: Default number of delays prefetched per full-size refill.  Large enough to
#: amortize the refill overhead on sweep-scale runs; short simulations are
#: protected by the geometric growth schedule, not by this cap.
DEFAULT_BLOCK_SIZE = 1024

#: Size of the first block.  Chosen to cover a typical per-channel message
#: count of one election so most channels refill exactly once.
INITIAL_BLOCK_SIZE = 32


class BlockDelaySampler:
    """Draws delays from a distribution in prefetched blocks.

    Parameters
    ----------
    distribution:
        The :class:`~repro.network.delays.DelayDistribution` to sample.
    rng:
        The channel's ``random.Random`` stream.  In exact mode it is consumed
        block-wise; in vectorized mode it is consumed once (to seed the numpy
        generator) and never again.
    block_size:
        Delays drawn per full-size refill; earlier refills grow geometrically
        from :data:`INITIAL_BLOCK_SIZE`.
    vectorized:
        Request the numpy-backed refill path; ignored (with the exact path
        used instead) when the distribution does not support it.
    """

    __slots__ = (
        "distribution",
        "rng",
        "block_size",
        "_block",
        "_index",
        "_size",
        "_next_block_size",
        "_vectorized",
        "_gen",
    )

    def __init__(
        self,
        distribution: DelayDistribution,
        rng: random.Random,
        block_size: int = DEFAULT_BLOCK_SIZE,
        vectorized: bool = True,
    ) -> None:
        if block_size < 1:
            raise ValueError(f"block_size must be >= 1, got {block_size}")
        if not isinstance(distribution, DelayDistribution):
            raise TypeError(
                f"BlockDelaySampler needs a DelayDistribution, got {type(distribution)!r}"
            )
        self.distribution = distribution
        self.rng = rng
        self.block_size = int(block_size)
        self._block: List[float] = []
        self._index = 0
        self._size = 0
        self._next_block_size = min(INITIAL_BLOCK_SIZE, self.block_size)
        self._vectorized = bool(vectorized) and distribution.supports_vectorized()
        self._gen: Optional[object] = None

    @property
    def vectorized(self) -> bool:
        """Whether refills use the numpy fast path."""
        return self._vectorized

    def next(self) -> float:
        """Return the next delay, refilling the block when exhausted.

        `Channel.transmit` inlines this serving logic against the private
        ``_index``/``_size``/``_block``/``_refill`` fields to shave the
        method call off the per-message path -- any change here must be
        mirrored there (pinned by the golden batched-election tests).
        """
        index = self._index
        if index < self._size:
            self._index = index + 1
            return self._block[index]
        block = self._refill()
        self._index = 1
        return block[0]

    def _refill(self) -> List[float]:
        count = self._next_block_size
        if count < self.block_size:
            self._next_block_size = min(count * 2, self.block_size)
        if self._vectorized:
            gen = self._gen
            if gen is None:
                import numpy as np

                # One draw from the channel stream pins the whole numpy
                # stream, so the sampler remains a pure function of
                # (master seed, channel id) regardless of when it happens.
                # Generator(PCG64(seed)) is bit-identical to
                # default_rng(seed) but about half the construction cost,
                # which matters because every channel of every trial builds
                # one.
                gen = self._gen = np.random.Generator(
                    np.random.PCG64(self.rng.getrandbits(63))
                )
            block = self.distribution.sample_array(gen, count).tolist()
        else:
            block = self.distribution.sample_block(self.rng, count)
        # Validate per refill, not per served delay: this is the single copy
        # of the negative-delay check for both next() and the serving that
        # Channel.transmit inlines.
        if block and min(block) < 0:
            raise ValueError(
                f"delay model produced a negative delay: {min(block)}"
            )
        self._block = block
        self._size = len(block)
        return block

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        mode = "vectorized" if self.vectorized else "exact"
        return (
            f"BlockDelaySampler({self.distribution!r}, block={self.block_size}, "
            f"{mode})"
        )
