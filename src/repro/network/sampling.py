"""Block-wise delay sampling for the channel hot path.

Sampling a delay per message costs a Python method dispatch plus one or more
``random.Random`` calls; over an experiment sweep (millions of messages) this
is a measurable slice of the wall clock.  :class:`BlockDelaySampler` amortizes
it by drawing delays in blocks ahead of time, one sampler per channel so the
per-stream seed discipline is untouched.

Two refill modes exist:

``exact`` (the default)
    Blocks come from :meth:`DelayDistribution.sample_block`, which consumes
    the channel's ``random.Random`` stream exactly like repeated per-message
    ``sample`` calls would.  A channel whose stream is used *only* for delay
    sampling therefore produces bit-identical simulations with or without the
    sampler; the win is the amortized method dispatch and any per-distribution
    block fast path (e.g. hoisting the rate constant out of the loop).

``vectorized``
    Blocks come from :meth:`DelayDistribution.sample_array` on a
    ``numpy.random.Generator`` seeded deterministically from the channel's
    ``random.Random`` stream at sampler construction.  This is the fastest
    mode (one numpy call per block) and remains a pure function of the master
    seed, but the draws are a *different* deterministic stream than the scalar
    path, so results are comparable across runs in this mode rather than with
    per-message sampling.

Distributions that do not implement a vectorized sampler silently fall back to
exact block refills, so a mixed delay zoo can still run with
``batch_sampling`` enabled.
"""

from __future__ import annotations

import random
from typing import List

from repro.network.delays import DelayDistribution

__all__ = ["BlockDelaySampler", "DEFAULT_BLOCK_SIZE"]

#: Default number of delays prefetched per refill.  Large enough to amortize
#: the refill overhead, small enough that short simulations do not waste
#: noticeable time sampling delays that are never used.
DEFAULT_BLOCK_SIZE = 256


class BlockDelaySampler:
    """Draws delays from a distribution in prefetched blocks.

    Parameters
    ----------
    distribution:
        The :class:`~repro.network.delays.DelayDistribution` to sample.
    rng:
        The channel's ``random.Random`` stream.  In exact mode it is consumed
        block-wise; in vectorized mode it is consumed once (to seed the numpy
        generator) and never again.
    block_size:
        Delays drawn per refill.
    vectorized:
        Request the numpy-backed refill path; ignored (with the exact path
        used instead) when the distribution does not support it.
    """

    __slots__ = ("distribution", "rng", "block_size", "_block", "_index", "_gen")

    def __init__(
        self,
        distribution: DelayDistribution,
        rng: random.Random,
        block_size: int = DEFAULT_BLOCK_SIZE,
        vectorized: bool = True,
    ) -> None:
        if block_size < 1:
            raise ValueError(f"block_size must be >= 1, got {block_size}")
        if not isinstance(distribution, DelayDistribution):
            raise TypeError(
                f"BlockDelaySampler needs a DelayDistribution, got {type(distribution)!r}"
            )
        self.distribution = distribution
        self.rng = rng
        self.block_size = int(block_size)
        self._block: List[float] = []
        self._index = 0
        if vectorized and distribution.supports_vectorized():
            import numpy as np

            # One draw from the channel stream pins the whole numpy stream, so
            # the sampler remains a pure function of (master seed, channel id).
            self._gen = np.random.default_rng(rng.getrandbits(63))
        else:
            self._gen = None

    @property
    def vectorized(self) -> bool:
        """Whether refills use the numpy fast path."""
        return self._gen is not None

    def next(self) -> float:
        """Return the next delay, refilling the block when exhausted."""
        index = self._index
        block = self._block
        if index >= len(block):
            block = self._refill()
            index = 0
        self._index = index + 1
        return block[index]

    def _refill(self) -> List[float]:
        if self._gen is not None:
            block = self.distribution.sample_array(self._gen, self.block_size).tolist()
        else:
            block = self.distribution.sample_block(self.rng, self.block_size)
        self._block = block
        return block

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        mode = "vectorized" if self.vectorized else "exact"
        return (
            f"BlockDelaySampler({self.distribution!r}, block={self.block_size}, "
            f"{mode})"
        )
