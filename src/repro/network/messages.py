"""Message envelopes.

An :class:`Envelope` is the unit a channel transports: the algorithm-level
payload plus the simulation bookkeeping (who sent it, when, over which
channel, when it was delivered).  Algorithms never see envelopes -- they send
and receive raw payloads -- but tracers, metrics and the verification checkers
work on envelopes.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Optional

__all__ = ["Envelope"]

_envelope_counter = itertools.count()


@dataclass
class Envelope:
    """A payload in transit, with transport metadata.

    Attributes
    ----------
    payload:
        The algorithm-level message (e.g. a :class:`repro.core.messages.HopMessage`).
    source:
        UID of the sending node.
    destination:
        UID of the receiving node.
    channel_id:
        Identifier of the channel that carries the envelope.
    send_time:
        Simulation time at which the send occurred.
    delay:
        Sampled transit delay.
    deliver_time:
        Simulation time at which the delivery fires (``send_time + delay`` for
        plain channels; possibly later for FIFO channels).
    envelope_id:
        Process-wide unique id for tracing.
    """

    payload: Any
    source: int
    destination: int
    channel_id: int
    send_time: float
    delay: float
    deliver_time: Optional[float] = None
    envelope_id: int = field(default_factory=lambda: next(_envelope_counter))

    @property
    def in_flight_time(self) -> Optional[float]:
        """Actual transport latency (``deliver_time - send_time``) once delivered."""
        if self.deliver_time is None:
            return None
        return self.deliver_time - self.send_time

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Envelope(#{self.envelope_id} {self.source}->{self.destination} "
            f"t={self.send_time:.4g}+{self.delay:.4g} payload={self.payload!r})"
        )
