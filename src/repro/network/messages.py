"""Message envelopes.

An :class:`Envelope` is the unit a channel transports: the algorithm-level
payload plus the simulation bookkeeping (who sent it, when, over which
channel, when it was delivered).  Algorithms never see envelopes -- they send
and receive raw payloads -- but tracers, metrics and the verification checkers
work on envelopes.

Hot-path note: envelopes are a per-message allocation, so the class is a
``slots=True`` dataclass (no instance ``__dict__``, faster attribute access)
and channels recycle their envelopes through a per-channel free list,
guarded by an exact refcount check so an envelope anyone still references
is never reused (see :class:`~repro.network.channel.Channel`).  A recycled
envelope gets a fresh ``envelope_id``, so ids remain process-wide unique
even when the object is reused.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Optional

__all__ = ["Envelope"]

_envelope_counter = itertools.count()


@dataclass(slots=True)
class Envelope:
    """A payload in transit, with transport metadata.

    Attributes
    ----------
    payload:
        The algorithm-level message (e.g. a :class:`repro.core.messages.HopMessage`).
    source:
        UID of the sending node.
    destination:
        UID of the receiving node.
    channel_id:
        Identifier of the channel that carries the envelope.
    send_time:
        Simulation time at which the send occurred.
    delay:
        Sampled transit delay.
    deliver_time:
        Simulation time at which the delivery fires (``send_time + delay`` for
        plain channels; possibly later for FIFO channels).
    envelope_id:
        Process-wide unique id for tracing.
    """

    payload: Any
    source: int
    destination: int
    channel_id: int
    send_time: float
    delay: float
    deliver_time: Optional[float] = None
    envelope_id: int = field(default_factory=lambda: next(_envelope_counter))

    @property
    def in_flight_time(self) -> Optional[float]:
        """Actual transport latency (``deliver_time - send_time``) once delivered."""
        if self.deliver_time is None:
            return None
        return self.deliver_time - self.send_time

    def renew(
        self,
        payload: Any,
        source: int,
        destination: int,
        send_time: float,
        delay: float,
        deliver_time: float,
    ) -> "Envelope":
        """Reinitialise a pooled envelope for its next flight.

        Overwrites every per-message field (``channel_id`` is fixed for the
        owning channel's lifetime) and assigns a fresh ``envelope_id``, so no
        state can leak from the previous message.  Returns ``self`` for
        chaining on the transmit hot path.
        """
        self.payload = payload
        self.source = source
        self.destination = destination
        self.send_time = send_time
        self.delay = delay
        self.deliver_time = deliver_time
        self.envelope_id = next(_envelope_counter)
        return self

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Envelope(#{self.envelope_id} {self.source}->{self.destination} "
            f"t={self.send_time:.4g}+{self.delay:.4g} payload={self.payload!r})"
        )
