"""Channels: unidirectional links carrying messages with stochastic delays.

A :class:`Channel` connects one sender node to one receiver node.  On
:meth:`Channel.transmit` it samples a delay from its delay model, wraps the
payload in an :class:`~repro.network.messages.Envelope` and schedules the
delivery event.  The base channel delivers messages in sampled order, which
means messages may overtake each other -- precisely the "order of messages is
arbitrary between any pair of nodes" assumption of the paper's election
algorithm (Section 3).  :class:`FifoChannel` instead enforces first-in
first-out delivery for algorithms that need it (e.g. the synchronizers'
bookkeeping messages).

Hot-path design
---------------
``transmit``/``_deliver`` run once per message and dominate experiment wall
clock now that the engine itself is tuple-based, so the per-message work is
hoisted to construction time wherever possible:

* the network, simulator and tracer are cached on the channel; when tracing
  is disabled the cached tracer is ``None``, so the disabled path performs no
  ``record`` call and never builds the kwargs dicts;
* iid delay models are prebound (``self._draw = model.sample``), removing two
  ``isinstance`` dispatches per message; adversarial models keep the slow
  path;
* delivery is scheduled through the engine's handle-free
  :meth:`~repro.sim.engine.Simulator.schedule_call_at` fast path with the
  bound ``self._deliver`` and the envelope as argument -- no per-message
  closure, ``Event`` or ``EventHandle``;
* message counts are plain integer increments on the channel and the network
  (the network's :class:`~repro.sim.monitor.MetricsCollector` reads them back
  through externally bound counters);
* envelopes are recycled through a per-channel free list.  Recycling is
  guarded by an exact ``sys.getrefcount`` check at the end of ``_deliver``:
  an envelope that anything else still references (a caller that kept
  ``transmit``'s return value, a fault-injection wrapper frame, a tracer
  consumer) is simply left to the garbage collector, so reuse can never be
  observed.  A recycled envelope is fully reinitialised -- fresh
  ``envelope_id`` included -- via :meth:`~repro.network.messages.Envelope.renew`.
"""

from __future__ import annotations

import random
import sys
from functools import partial
from typing import TYPE_CHECKING, Any, List, Optional

from repro.network.delays import DelayDistribution
from repro.network.messages import Envelope

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.network.adversary import AdversarialDelay
    from repro.network.network import Network
    from repro.network.node import Node

__all__ = ["Channel", "FifoChannel"]

_getrefcount = getattr(sys, "getrefcount", None)

#: Exact reference count of an envelope at the end of ``_deliver`` when the
#: only remaining references are the run loop's heap entry, ``_deliver``'s
#: argument binding and the ``getrefcount`` argument itself.
_POOLABLE_REFS = 3

#: Per-channel envelope free-list bound; in-flight envelopes live outside the
#: pool, so this only caps how many parked records a bursty channel keeps.
_ENVELOPE_POOL_LIMIT = 32

#: Exact reference count of a delivered *payload* that nothing but the
#: ``_deliver`` frame can still observe: the frame's ``payload`` local and the
#: ``getrefcount`` argument itself.  Checked only after the envelope's own
#: ``payload`` slot has been cleared by the envelope recycle, so a live
#: envelope (held by a sender, a test, or a retransmission wrapper that
#: duplicated it) keeps its payload out of the pool automatically.
_PAYLOAD_POOLABLE_REFS = 2


class Channel:
    """A unidirectional, non-FIFO channel with stochastic delays.

    Parameters
    ----------
    channel_id:
        Unique id within the network (used for tracing and per-channel stats).
    source, destination:
        The endpoint nodes.
    destination_port:
        The in-port number under which the destination sees this channel.
    delay_model:
        Either a :class:`~repro.network.delays.DelayDistribution` (iid delays)
        or an :class:`~repro.network.adversary.AdversarialDelay` (delays chosen
        by a strategy, subject to the model's constraints).
    rng:
        Random stream for delay sampling (typically ``source.rng`` -- one
        stream per channel is derived by the network).
    delay_sampler:
        Optional :class:`~repro.network.sampling.BlockDelaySampler` used
        instead of per-message ``delay_model.sample`` calls.  Built by the
        network when its configuration enables batch sampling.
    """

    def __init__(
        self,
        channel_id: int,
        source: "Node",
        destination: "Node",
        destination_port: int,
        delay_model: Any,
        rng: random.Random,
        delay_sampler: Optional[Any] = None,
    ) -> None:
        self.channel_id = channel_id
        self.source = source
        self.destination = destination
        self.destination_port = destination_port
        self.rng = rng
        self.delay_sampler = delay_sampler
        self.messages_sent = 0
        self.messages_delivered = 0
        self.total_delay = 0.0
        self.max_observed_delay = 0.0
        # Construction-time hoists for the per-message path.
        network = source.network
        self.network: "Network" = network
        self._simulator = network.simulator
        self._tracer = network.tracer if network.tracer.enabled else None
        self._source_uid = source.uid
        self._destination_uid = destination.uid
        self._envelope_pool: List[Envelope] = []
        # Optional payload free-list hook (e.g. the election runner installs
        # HopMessagePool.release).  Only consulted once the refcount guards
        # below prove the delivered payload unobservable.
        self.payload_recycler = None
        # Subclasses that bend delivery times (FIFO) override _delivery_time;
        # detecting the override once lets the base case skip the method call.
        self._plain_delivery = type(self)._delivery_time is Channel._delivery_time
        self.delay_model = delay_model  # property: also derives self._draw

    # ------------------------------------------------------------- delay model

    @property
    def delay_model(self) -> Any:
        """The channel's delay model (settable; resampling hooks follow it)."""
        return self._delay_model

    @delay_model.setter
    def delay_model(self, model: Any) -> None:
        self._delay_model = model
        # A block sampler holding delays prefetched from a *different*
        # distribution is stale: its remaining draws must never be served
        # under the new model.  A batch-configured channel gets a *fresh*
        # sampler for the new distribution (continuing the same channel rng
        # stream), so swapping models mid-run neither serves stale draws nor
        # silently degrades the channel to per-message sampling.  The
        # construction-time assignment keeps the original sampler, whose
        # distribution is the very model being set.
        sampler = getattr(self, "delay_sampler", None)
        if sampler is not None and sampler.distribution is not model:
            if isinstance(model, DelayDistribution):
                from repro.network.sampling import BlockDelaySampler  # no cycle

                self.delay_sampler = BlockDelaySampler(
                    model, self.rng, block_size=sampler.block_size
                )
            else:
                # Adversarial models cannot be block-sampled.
                self.delay_sampler = None
        # Prebind the iid sampling method so transmit skips isinstance
        # dispatch; anything else (adversarial, invalid) takes the slow path,
        # which validates and raises on truly unsupported models.
        if isinstance(model, DelayDistribution):
            self._draw = model.sample
        else:
            self._draw = None

    def set_delay_model(self, model: Any) -> None:
        """Swap the delay model mid-run (explicit spelling of the property set).

        Guarantees audited by ``tests/test_network_channels_nodes.py``:
        delays prefetched for the previous distribution are discarded, a
        batch-sampling channel keeps batch sampling under the new
        distribution, and a FIFO channel's delivery-order clamp is preserved
        (the no-overtaking history is per-channel state, not per-model).
        """
        self.delay_model = model

    # ------------------------------------------------------------------ sends

    def _sample_delay(self, payload: Any, send_time: float) -> float:
        sampler = self.delay_sampler
        if sampler is not None:
            return sampler.next()  # blocks are validated at refill time

        from repro.network.adversary import AdversarialDelay  # local import, no cycle

        if isinstance(self._delay_model, AdversarialDelay):
            delay = self._delay_model.delay_for(
                source=self.source.uid,
                destination=self.destination.uid,
                payload=payload,
                send_time=send_time,
                rng=self.rng,
            )
        elif isinstance(self._delay_model, DelayDistribution):
            delay = self._delay_model.sample(self.rng)
        else:
            raise TypeError(
                f"unsupported delay model {type(self._delay_model)!r}; expected a "
                "DelayDistribution or AdversarialDelay"
            )
        if delay < 0:
            raise ValueError(f"delay model produced a negative delay: {delay}")
        return delay

    def _delivery_time(self, send_time: float, delay: float) -> float:
        """Non-FIFO channels deliver exactly ``delay`` after the send."""
        return send_time + delay

    def transmit(self, payload: Any) -> Envelope:
        """Send ``payload`` across the channel; returns the in-flight envelope.

        The returned envelope may be recycled for a later message once this
        delivery completes, so callers that need its fields beyond that point
        must copy them rather than let go of the object -- holding a
        reference is always safe in itself, because the refcount guard then
        simply skips the recycle.
        """
        simulator = self._simulator
        send_time = simulator._now
        sampler = self.delay_sampler
        if sampler is not None:
            # Inlined sampler.next(): serving a prefetched delay is the whole
            # point of batch mode, so skip even the method dispatch.  Blocks
            # are validated non-negative at refill time by the sampler.
            index = sampler._index
            if index < sampler._size:
                sampler._index = index + 1
                delay = sampler._block[index]
            else:
                delay = sampler._refill()[0]
                sampler._index = 1
        else:
            draw = self._draw
            if draw is not None:
                delay = draw(self.rng)
                if delay < 0:
                    raise ValueError(
                        f"delay model produced a negative delay: {delay}"
                    )
            else:
                delay = self._sample_delay(payload, send_time)
        if self._plain_delivery:
            deliver_time = send_time + delay
        else:
            deliver_time = self._delivery_time(send_time, delay)
        pool = self._envelope_pool
        if pool:
            envelope = pool.pop().renew(
                payload,
                self._source_uid,
                self._destination_uid,
                send_time,
                delay,
                deliver_time,
            )
        else:
            envelope = Envelope(
                payload=payload,
                source=self._source_uid,
                destination=self._destination_uid,
                channel_id=self.channel_id,
                send_time=send_time,
                delay=delay,
                deliver_time=deliver_time,
            )
        self.messages_sent += 1
        network = self.network
        network._messages_sent += 1
        tracer = self._tracer
        if tracer is not None:
            tracer.record(
                send_time,
                "send",
                self._source_uid,
                to=self._destination_uid,
                channel=self.channel_id,
                payload=payload,
                delay=delay,
            )
        simulator.schedule_call_at(deliver_time, self._deliver, envelope)
        return envelope

    def _deliver(self, envelope: Envelope) -> None:
        network = self.network
        now = self._simulator._now
        self.messages_delivered += 1
        network._messages_delivered += 1
        actual_delay = now - envelope.send_time
        self.total_delay += actual_delay
        if actual_delay > self.max_observed_delay:
            self.max_observed_delay = actual_delay
        payload = envelope.payload
        tracer = self._tracer
        if tracer is not None:
            tracer.record(
                now,
                "deliver",
                self._destination_uid,
                sender=self._source_uid,
                channel=self.channel_id,
                payload=payload,
                latency=actual_delay,
            )
        processing = network.processing_delay
        if processing is None:
            self.destination.deliver(payload, self.destination_port)
        else:
            extra = processing.sample(self.rng)
            self._simulator.schedule_call(
                extra,
                partial(self.destination.deliver, payload),
                self.destination_port,
            )
        # Recycle iff provably unobservable: the exact refcount (run-loop heap
        # entry + our argument binding + getrefcount argument) proves nothing
        # else -- sender, wrapper, test -- still holds the envelope.
        if (
            _getrefcount is not None
            and len(self._envelope_pool) < _ENVELOPE_POOL_LIMIT
            and _getrefcount(envelope) == _POOLABLE_REFS
        ):
            envelope.payload = None
            self._envelope_pool.append(envelope)
            # With the envelope's slot cleared, a payload only our local still
            # references is equally unobservable: hand it to the message pool.
            # Any other holder -- tracer, test, processing-delay closure, a
            # retransmission wrapper that kept the envelope or duplicated the
            # delivery -- raises the count and vetoes the recycle.
            recycler = self.payload_recycler
            if recycler is not None and _getrefcount(payload) == _PAYLOAD_POOLABLE_REFS:
                recycler(payload)

    # ------------------------------------------------------------------ stats

    def mean_observed_delay(self) -> float:
        """Average latency of messages delivered so far (0 when none)."""
        if self.messages_delivered == 0:
            return 0.0
        return self.total_delay / self.messages_delivered

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Channel(#{self.channel_id} {self.source.uid}->{self.destination.uid}, "
            f"sent={self.messages_sent})"
        )


class FifoChannel(Channel):
    """A channel that preserves the sending order of its messages.

    Delivery time is ``max(send_time + sampled_delay, last_delivery_time)``,
    i.e. a message is never delivered before one sent earlier on the same
    channel.  The expected-delay bound of the underlying distribution remains
    an upper bound on each message's *own* sampled delay; reordering
    suppression can only delay a message further, which the synchronizer
    correctness arguments account for.
    """

    def __init__(self, *args: Any, **kwargs: Any) -> None:
        super().__init__(*args, **kwargs)
        self._last_delivery_time: Optional[float] = None

    def _delivery_time(self, send_time: float, delay: float) -> float:
        candidate = send_time + delay
        if self._last_delivery_time is not None and candidate < self._last_delivery_time:
            candidate = self._last_delivery_time
        self._last_delivery_time = candidate
        return candidate
