"""Channels: unidirectional links carrying messages with stochastic delays.

A :class:`Channel` connects one sender node to one receiver node.  On
:meth:`Channel.transmit` it samples a delay from its delay model, wraps the
payload in an :class:`~repro.network.messages.Envelope` and schedules the
delivery event.  The base channel delivers messages in sampled order, which
means messages may overtake each other -- precisely the "order of messages is
arbitrary between any pair of nodes" assumption of the paper's election
algorithm (Section 3).  :class:`FifoChannel` instead enforces first-in
first-out delivery for algorithms that need it (e.g. the synchronizers'
bookkeeping messages).
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Any, Optional

from repro.network.delays import DelayDistribution
from repro.network.messages import Envelope
from repro.sim.events import EventKind

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.network.adversary import AdversarialDelay
    from repro.network.network import Network
    from repro.network.node import Node

__all__ = ["Channel", "FifoChannel"]


class Channel:
    """A unidirectional, non-FIFO channel with stochastic delays.

    Parameters
    ----------
    channel_id:
        Unique id within the network (used for tracing and per-channel stats).
    source, destination:
        The endpoint nodes.
    destination_port:
        The in-port number under which the destination sees this channel.
    delay_model:
        Either a :class:`~repro.network.delays.DelayDistribution` (iid delays)
        or an :class:`~repro.network.adversary.AdversarialDelay` (delays chosen
        by a strategy, subject to the model's constraints).
    rng:
        Random stream for delay sampling (typically ``source.rng`` -- one
        stream per channel is derived by the network).
    delay_sampler:
        Optional :class:`~repro.network.sampling.BlockDelaySampler` used
        instead of per-message ``delay_model.sample`` calls.  Built by the
        network when its configuration enables batch sampling.
    """

    def __init__(
        self,
        channel_id: int,
        source: "Node",
        destination: "Node",
        destination_port: int,
        delay_model: Any,
        rng: random.Random,
        delay_sampler: Optional[Any] = None,
    ) -> None:
        self.channel_id = channel_id
        self.source = source
        self.destination = destination
        self.destination_port = destination_port
        self.delay_model = delay_model
        self.rng = rng
        self.delay_sampler = delay_sampler
        self.messages_sent = 0
        self.messages_delivered = 0
        self.total_delay = 0.0
        self.max_observed_delay = 0.0

    # ------------------------------------------------------------------ sends

    def _sample_delay(self, payload: Any, send_time: float) -> float:
        sampler = self.delay_sampler
        if sampler is not None:
            delay = sampler.next()
            if delay < 0:
                raise ValueError(f"delay model produced a negative delay: {delay}")
            return delay

        from repro.network.adversary import AdversarialDelay  # local import, no cycle

        if isinstance(self.delay_model, AdversarialDelay):
            delay = self.delay_model.delay_for(
                source=self.source.uid,
                destination=self.destination.uid,
                payload=payload,
                send_time=send_time,
                rng=self.rng,
            )
        elif isinstance(self.delay_model, DelayDistribution):
            delay = self.delay_model.sample(self.rng)
        else:
            raise TypeError(
                f"unsupported delay model {type(self.delay_model)!r}; expected a "
                "DelayDistribution or AdversarialDelay"
            )
        if delay < 0:
            raise ValueError(f"delay model produced a negative delay: {delay}")
        return delay

    def _delivery_time(self, send_time: float, delay: float) -> float:
        """Non-FIFO channels deliver exactly ``delay`` after the send."""
        return send_time + delay

    def transmit(self, payload: Any) -> Envelope:
        """Send ``payload`` across the channel; returns the in-flight envelope."""
        network = self.source.network
        send_time = network.simulator.now
        delay = self._sample_delay(payload, send_time)
        deliver_time = self._delivery_time(send_time, delay)
        envelope = Envelope(
            payload=payload,
            source=self.source.uid,
            destination=self.destination.uid,
            channel_id=self.channel_id,
            send_time=send_time,
            delay=delay,
            deliver_time=deliver_time,
        )
        self.messages_sent += 1
        network.metrics.increment("messages_sent")
        network.tracer.record(
            send_time,
            "send",
            self.source.uid,
            to=self.destination.uid,
            channel=self.channel_id,
            payload=payload,
            delay=delay,
        )
        network.simulator.schedule_at(
            deliver_time,
            lambda: self._deliver(envelope),
            kind=EventKind.MESSAGE_DELIVERY,
            payload=envelope,
        )
        return envelope

    def _deliver(self, envelope: Envelope) -> None:
        network = self.source.network
        self.messages_delivered += 1
        actual_delay = network.simulator.now - envelope.send_time
        self.total_delay += actual_delay
        self.max_observed_delay = max(self.max_observed_delay, actual_delay)
        network.metrics.increment("messages_delivered")
        network.tracer.record(
            network.simulator.now,
            "deliver",
            self.destination.uid,
            sender=self.source.uid,
            channel=self.channel_id,
            payload=envelope.payload,
            latency=actual_delay,
        )
        processing = network.processing_delay
        if processing is not None:
            extra = processing.sample(self.rng)
            network.simulator.schedule(
                extra,
                lambda: self.destination.deliver(envelope.payload, self.destination_port),
                kind=EventKind.PROCESS_STEP,
            )
        else:
            self.destination.deliver(envelope.payload, self.destination_port)

    # ------------------------------------------------------------------ stats

    def mean_observed_delay(self) -> float:
        """Average latency of messages delivered so far (0 when none)."""
        if self.messages_delivered == 0:
            return 0.0
        return self.total_delay / self.messages_delivered

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Channel(#{self.channel_id} {self.source.uid}->{self.destination.uid}, "
            f"sent={self.messages_sent})"
        )


class FifoChannel(Channel):
    """A channel that preserves the sending order of its messages.

    Delivery time is ``max(send_time + sampled_delay, last_delivery_time)``,
    i.e. a message is never delivered before one sent earlier on the same
    channel.  The expected-delay bound of the underlying distribution remains
    an upper bound on each message's *own* sampled delay; reordering
    suppression can only delay a message further, which the synchronizer
    correctness arguments account for.
    """

    def __init__(self, *args: Any, **kwargs: Any) -> None:
        super().__init__(*args, **kwargs)
        self._last_delivery_time: Optional[float] = None

    def _delivery_time(self, send_time: float, delay: float) -> float:
        candidate = send_time + delay
        if self._last_delivery_time is not None and candidate < self._last_delivery_time:
            candidate = self._last_delivery_time
        self._last_delivery_time = candidate
        return candidate
