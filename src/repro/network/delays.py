"""Message-delay distributions.

The whole point of the ABE model is a refinement of *what is known about
message delays*:

* **synchronous** networks: delay is exactly one round;
* **ABD** networks: a hard bound ``D`` on the delay is known;
* **ABE** networks: only a bound ``delta`` on the *expected* delay is known,
  individual delays may be arbitrarily large;
* **asynchronous** networks: delays are finite but nothing is known about them.

Every distribution in this module therefore reports three things about
itself: an exact or upper-bounded :meth:`~DelayDistribution.mean`, a hard
:meth:`~DelayDistribution.bound` (or ``None`` when unbounded), and whether the
mean is finite.  The model classes in :mod:`repro.models` use these to decide
whether a distribution is admissible for a given network model, mirroring the
paper's "a bound on the expected message delay is known" assumption.

All sampling goes through an explicitly passed :class:`random.Random`, so a
distribution object is stateless and can be shared across channels.
"""

from __future__ import annotations

import abc
import bisect
import math
import random
from typing import Any, List, Optional, Sequence, Tuple

__all__ = [
    "DelayDistribution",
    "ConstantDelay",
    "UniformDelay",
    "ExponentialDelay",
    "ShiftedExponentialDelay",
    "ErlangDelay",
    "ParetoDelay",
    "LogNormalDelay",
    "WeibullDelay",
    "HyperExponentialDelay",
    "MixtureDelay",
    "TruncatedDelay",
    "EmpiricalDelay",
]


class DelayDistribution(abc.ABC):
    """Abstract base class for message-delay distributions.

    Subclasses must be stateless with respect to sampling: all randomness is
    drawn from the :class:`random.Random` passed to :meth:`sample`, so the same
    distribution object can safely be shared between channels and trials.
    """

    @abc.abstractmethod
    def sample(self, rng: random.Random) -> float:
        """Draw one delay.  The result is always ``>= 0`` and finite."""

    @abc.abstractmethod
    def mean(self) -> float:
        """The expected delay.  ``math.inf`` if the expectation diverges."""

    def bound(self) -> Optional[float]:
        """A hard upper bound on the delay, or ``None`` if unbounded."""
        return None

    def is_bounded(self) -> bool:
        """Whether a hard upper bound on the delay exists (ABD admissible)."""
        return self.bound() is not None

    def has_finite_mean(self) -> bool:
        """Whether the expected delay is finite (ABE admissible)."""
        return math.isfinite(self.mean())

    def describe(self) -> str:
        """Human-readable one-line description used in experiment tables."""
        return repr(self)

    # Convenience -------------------------------------------------------------

    def sample_many(self, rng: random.Random, count: int) -> List[float]:
        """Draw ``count`` independent delays."""
        if count < 0:
            raise ValueError("count must be non-negative")
        return [self.sample(rng) for _ in range(count)]

    # Batch sampling ----------------------------------------------------------
    #
    # The per-message cost of ``sample`` (a Python method call plus one or more
    # ``random.Random`` calls) dominates channel transmission on the hot path.
    # ``sample_block`` draws a block of future delays at once so a channel can
    # amortize that cost; the default implementation is bit-identical to
    # repeated ``sample`` calls on the same stream.  Distributions with a
    # closed-form numpy sampler additionally implement ``sample_array``, which
    # :class:`~repro.network.sampling.BlockDelaySampler` uses to vectorize
    # block refills (a different, but still seed-deterministic, stream).

    def sample_block(self, rng: random.Random, count: int) -> List[float]:
        """Draw ``count`` delays from ``rng``, identical to ``count`` calls of
        :meth:`sample` on the same stream."""
        if count < 0:
            raise ValueError("count must be non-negative")
        sample = self.sample
        return [sample(rng) for _ in range(count)]

    def supports_vectorized(self) -> bool:
        """Whether :meth:`sample_array` provides a numpy-vectorized sampler."""
        return False

    def sample_array(self, gen: Any, count: int):
        """Draw ``count`` delays from a :class:`numpy.random.Generator`.

        Only available when :meth:`supports_vectorized` is true; the numpy
        stream is distinct from the ``random.Random`` stream of
        :meth:`sample`, but deterministic for a deterministically seeded
        generator.
        """
        raise NotImplementedError(
            f"{type(self).__name__} has no vectorized sampler"
        )

    def empirical_mean(self, rng: random.Random, count: int = 10_000) -> float:
        """Monte-Carlo estimate of the mean (used by self-tests and examples)."""
        samples = self.sample_many(rng, count)
        return sum(samples) / len(samples) if samples else 0.0


class ConstantDelay(DelayDistribution):
    """Every message takes exactly ``value`` time units.

    This is the delay model of a synchronous network (``value = 1``) and the
    degenerate extreme of an ABD network.
    """

    def __init__(self, value: float = 1.0) -> None:
        if value < 0:
            raise ValueError(f"delay must be non-negative, got {value}")
        self.value = float(value)

    def sample(self, rng: random.Random) -> float:
        return self.value

    def sample_block(self, rng: random.Random, count: int) -> List[float]:
        if count < 0:
            raise ValueError("count must be non-negative")
        return [self.value] * count

    def supports_vectorized(self) -> bool:
        return True

    def sample_array(self, gen: Any, count: int):
        import numpy as np

        return np.full(count, self.value)

    def mean(self) -> float:
        return self.value

    def bound(self) -> Optional[float]:
        return self.value

    def __repr__(self) -> str:
        return f"ConstantDelay({self.value})"


class UniformDelay(DelayDistribution):
    """Delay uniformly distributed on ``[low, high]`` (bounded, hence ABD)."""

    def __init__(self, low: float, high: float) -> None:
        if low < 0:
            raise ValueError("low must be non-negative")
        if high < low:
            raise ValueError("high must be >= low")
        self.low = float(low)
        self.high = float(high)

    def sample(self, rng: random.Random) -> float:
        return rng.uniform(self.low, self.high)

    def supports_vectorized(self) -> bool:
        return True

    def sample_array(self, gen: Any, count: int):
        return gen.uniform(self.low, self.high, count)

    def mean(self) -> float:
        return (self.low + self.high) / 2.0

    def bound(self) -> Optional[float]:
        return self.high

    def __repr__(self) -> str:
        return f"UniformDelay({self.low}, {self.high})"


class ExponentialDelay(DelayDistribution):
    """Exponentially distributed delay with the given mean.

    The canonical unbounded-but-bounded-expectation distribution: admissible
    for ABE networks, inadmissible for ABD networks.  Used as the default
    delay model throughout the experiments.
    """

    def __init__(self, mean: float = 1.0) -> None:
        if mean <= 0:
            raise ValueError(f"mean must be positive, got {mean}")
        self._mean = float(mean)

    def sample(self, rng: random.Random) -> float:
        return rng.expovariate(1.0 / self._mean)

    def sample_block(self, rng: random.Random, count: int) -> List[float]:
        if count < 0:
            raise ValueError("count must be non-negative")
        expovariate = rng.expovariate
        rate = 1.0 / self._mean
        return [expovariate(rate) for _ in range(count)]

    def supports_vectorized(self) -> bool:
        return True

    def sample_array(self, gen: Any, count: int):
        return gen.exponential(self._mean, count)

    def mean(self) -> float:
        return self._mean

    def __repr__(self) -> str:
        return f"ExponentialDelay(mean={self._mean})"


class ShiftedExponentialDelay(DelayDistribution):
    """A fixed propagation delay plus an exponential queueing component.

    ``delay = offset + Exp(mean=exp_mean)``.  Models a link with constant
    physical latency and random contention on top.
    """

    def __init__(self, offset: float, exp_mean: float) -> None:
        if offset < 0:
            raise ValueError("offset must be non-negative")
        if exp_mean <= 0:
            raise ValueError("exp_mean must be positive")
        self.offset = float(offset)
        self.exp_mean = float(exp_mean)

    def sample(self, rng: random.Random) -> float:
        return self.offset + rng.expovariate(1.0 / self.exp_mean)

    def supports_vectorized(self) -> bool:
        return True

    def sample_array(self, gen: Any, count: int):
        return self.offset + gen.exponential(self.exp_mean, count)

    def mean(self) -> float:
        return self.offset + self.exp_mean

    def __repr__(self) -> str:
        return f"ShiftedExponentialDelay(offset={self.offset}, exp_mean={self.exp_mean})"


class ErlangDelay(DelayDistribution):
    """Erlang-``k`` delay: the sum of ``k`` iid exponential stages.

    Models a message that must traverse ``k`` store-and-forward stages, each
    with exponential service time.  Unbounded, finite mean ``k * stage_mean``.
    """

    def __init__(self, shape: int, stage_mean: float) -> None:
        if shape < 1:
            raise ValueError("shape must be >= 1")
        if stage_mean <= 0:
            raise ValueError("stage_mean must be positive")
        self.shape = int(shape)
        self.stage_mean = float(stage_mean)

    def sample(self, rng: random.Random) -> float:
        total = 0.0
        for _ in range(self.shape):
            total += rng.expovariate(1.0 / self.stage_mean)
        return total

    def supports_vectorized(self) -> bool:
        return True

    def sample_array(self, gen: Any, count: int):
        return gen.gamma(self.shape, self.stage_mean, count)

    def mean(self) -> float:
        return self.shape * self.stage_mean

    def __repr__(self) -> str:
        return f"ErlangDelay(shape={self.shape}, stage_mean={self.stage_mean})"


class ParetoDelay(DelayDistribution):
    """Heavy-tailed (Pareto) delay: ``scale`` minimum, tail index ``alpha``.

    * ``alpha > 1``: the mean ``alpha * scale / (alpha - 1)`` is finite, so the
      distribution is ABE admissible despite its heavy tail.
    * ``alpha <= 1``: the mean diverges -- such a channel is *not* an ABE
      channel; the model classes reject it.  Including it lets the test suite
      demonstrate the boundary of the model.
    """

    def __init__(self, alpha: float, scale: float = 1.0) -> None:
        if alpha <= 0:
            raise ValueError("alpha must be positive")
        if scale <= 0:
            raise ValueError("scale must be positive")
        self.alpha = float(alpha)
        self.scale = float(scale)

    def sample(self, rng: random.Random) -> float:
        # Inverse-CDF sampling: X = scale / U^{1/alpha}.
        u = rng.random()
        while u <= 0.0:  # pragma: no cover - random() is in [0, 1)
            u = rng.random()
        return self.scale / (u ** (1.0 / self.alpha))

    def supports_vectorized(self) -> bool:
        return True

    def sample_array(self, gen: Any, count: int):
        # 1 - random() lies in (0, 1], avoiding the u == 0 singularity.
        u = 1.0 - gen.random(count)
        return self.scale / (u ** (1.0 / self.alpha))

    def mean(self) -> float:
        if self.alpha <= 1.0:
            return math.inf
        return self.alpha * self.scale / (self.alpha - 1.0)

    def __repr__(self) -> str:
        return f"ParetoDelay(alpha={self.alpha}, scale={self.scale})"


class LogNormalDelay(DelayDistribution):
    """Log-normally distributed delay parameterised by its (finite) mean.

    ``sigma`` controls the skew; the underlying normal's ``mu`` is solved from
    the requested mean so that distributions of different shape can be
    compared at equal expected delay (experiment E7).
    """

    def __init__(self, mean: float = 1.0, sigma: float = 1.0) -> None:
        if mean <= 0:
            raise ValueError("mean must be positive")
        if sigma <= 0:
            raise ValueError("sigma must be positive")
        self._mean = float(mean)
        self.sigma = float(sigma)
        self.mu = math.log(mean) - sigma * sigma / 2.0

    def sample(self, rng: random.Random) -> float:
        return rng.lognormvariate(self.mu, self.sigma)

    def supports_vectorized(self) -> bool:
        return True

    def sample_array(self, gen: Any, count: int):
        return gen.lognormal(self.mu, self.sigma, count)

    def mean(self) -> float:
        return self._mean

    def __repr__(self) -> str:
        return f"LogNormalDelay(mean={self._mean}, sigma={self.sigma})"


class WeibullDelay(DelayDistribution):
    """Weibull-distributed delay (shape < 1 gives a heavy-ish tail, finite mean)."""

    def __init__(self, shape: float, scale: float) -> None:
        if shape <= 0:
            raise ValueError("shape must be positive")
        if scale <= 0:
            raise ValueError("scale must be positive")
        self.shape = float(shape)
        self.scale = float(scale)

    def sample(self, rng: random.Random) -> float:
        return rng.weibullvariate(self.scale, self.shape)

    def supports_vectorized(self) -> bool:
        return True

    def sample_array(self, gen: Any, count: int):
        return self.scale * gen.weibull(self.shape, count)

    def mean(self) -> float:
        return self.scale * math.gamma(1.0 + 1.0 / self.shape)

    def __repr__(self) -> str:
        return f"WeibullDelay(shape={self.shape}, scale={self.scale})"


class HyperExponentialDelay(DelayDistribution):
    """Mixture of exponentials: with probability ``p_i`` draw from mean ``m_i``.

    The classic model for bimodal delays ("fast path most of the time, slow
    path occasionally"), e.g. local delivery vs cross-network routing.
    """

    def __init__(self, probabilities: Sequence[float], means: Sequence[float]) -> None:
        if len(probabilities) != len(means) or not probabilities:
            raise ValueError("probabilities and means must be equal-length, non-empty")
        if any(p < 0 for p in probabilities):
            raise ValueError("probabilities must be non-negative")
        total = sum(probabilities)
        if not math.isclose(total, 1.0, rel_tol=1e-9, abs_tol=1e-9):
            raise ValueError(f"probabilities must sum to 1, got {total}")
        if any(m <= 0 for m in means):
            raise ValueError("means must be positive")
        self.probabilities = [float(p) for p in probabilities]
        self.means = [float(m) for m in means]
        self._cumulative: List[float] = []
        acc = 0.0
        for p in self.probabilities:
            acc += p
            self._cumulative.append(acc)

    def sample(self, rng: random.Random) -> float:
        u = rng.random()
        index = bisect.bisect_left(self._cumulative, u)
        index = min(index, len(self.means) - 1)
        return rng.expovariate(1.0 / self.means[index])

    def supports_vectorized(self) -> bool:
        return True

    def sample_array(self, gen: Any, count: int):
        import numpy as np

        # One fixed-width row of uniforms per element (component choice, then
        # an inverse-CDF exponential), so the vectorized stream is independent
        # of how block refills are chunked.
        u = gen.random((count, 2))
        index = np.minimum(
            np.searchsorted(self._cumulative, u[:, 0], side="left"),
            len(self.means) - 1,
        )
        return -np.asarray(self.means)[index] * np.log1p(-u[:, 1])

    def mean(self) -> float:
        return sum(p * m for p, m in zip(self.probabilities, self.means))

    def __repr__(self) -> str:
        return f"HyperExponentialDelay(p={self.probabilities}, means={self.means})"


class MixtureDelay(DelayDistribution):
    """General finite mixture of arbitrary delay distributions."""

    def __init__(
        self, components: Sequence[Tuple[float, DelayDistribution]]
    ) -> None:
        if not components:
            raise ValueError("mixture needs at least one component")
        weights = [w for w, _ in components]
        if any(w < 0 for w in weights):
            raise ValueError("weights must be non-negative")
        total = sum(weights)
        if total <= 0:
            raise ValueError("weights must not all be zero")
        self.components: List[Tuple[float, DelayDistribution]] = [
            (w / total, dist) for w, dist in components
        ]
        self._cumulative: List[float] = []
        acc = 0.0
        for w, _ in self.components:
            acc += w
            self._cumulative.append(acc)

    def sample(self, rng: random.Random) -> float:
        u = rng.random()
        index = bisect.bisect_left(self._cumulative, u)
        index = min(index, len(self.components) - 1)
        return self.components[index][1].sample(rng)

    def supports_vectorized(self) -> bool:
        return all(dist.supports_vectorized() for _, dist in self.components)

    def sample_array(self, gen: Any, count: int):
        import numpy as np

        # Multi-pass refill (one choice pass, then one draw pass per
        # component in declaration order): deterministic per seed, but the
        # stream depends on the refill chunking -- compare vectorized runs of
        # mixtures at one ``batch_block_size``.
        u = gen.random(count)
        index = np.minimum(
            np.searchsorted(self._cumulative, u, side="left"),
            len(self.components) - 1,
        )
        out = np.empty(count)
        for position, (_, dist) in enumerate(self.components):
            mask = index == position
            picked = int(mask.sum())
            if picked:
                out[mask] = dist.sample_array(gen, picked)
        return out

    def mean(self) -> float:
        total = 0.0
        for weight, dist in self.components:
            component_mean = dist.mean()
            if math.isinf(component_mean) and weight > 0:
                return math.inf
            total += weight * component_mean
        return total

    def bound(self) -> Optional[float]:
        bounds = [dist.bound() for _, dist in self.components]
        if any(b is None for b in bounds):
            return None
        return max(b for b in bounds if b is not None)

    def __repr__(self) -> str:
        inner = ", ".join(f"({w:.3g}, {d!r})" for w, d in self.components)
        return f"MixtureDelay([{inner}])"


class TruncatedDelay(DelayDistribution):
    """Rejection-truncate another distribution at a hard cap.

    Turns any unbounded ABE distribution into an ABD distribution, which is how
    the experiments construct "the closest ABD network" to a given ABE network
    when comparing the two models.

    The mean reported is an upper bound (the untruncated mean, clipped at the
    cap), which is all the ABE model requires ("a bound on the expected
    delay").
    """

    def __init__(self, inner: DelayDistribution, cap: float, max_rejects: int = 1000) -> None:
        if cap <= 0:
            raise ValueError("cap must be positive")
        if max_rejects < 1:
            raise ValueError("max_rejects must be >= 1")
        self.inner = inner
        self.cap = float(cap)
        self.max_rejects = int(max_rejects)

    def sample(self, rng: random.Random) -> float:
        for _ in range(self.max_rejects):
            value = self.inner.sample(rng)
            if value <= self.cap:
                return value
        return self.cap

    def supports_vectorized(self) -> bool:
        return self.inner.supports_vectorized()

    def sample_array(self, gen: Any, count: int):
        import numpy as np

        out = np.asarray(self.inner.sample_array(gen, count), dtype=float)
        # Per-element rejection rounds mirroring the scalar loop: every
        # element gets up to max_rejects inner draws before the cap applies.
        # The rounds make the refill multi-pass, so the vectorized stream
        # depends on the refill chunking (deterministic per seed; compare
        # runs at one ``batch_block_size``).
        for _ in range(self.max_rejects - 1):
            over = out > self.cap
            pending = int(over.sum())
            if not pending:
                return out
            out[over] = self.inner.sample_array(gen, pending)
        np.minimum(out, self.cap, out=out)
        return out

    def mean(self) -> float:
        return min(self.inner.mean(), self.cap)

    def bound(self) -> Optional[float]:
        return self.cap

    def __repr__(self) -> str:
        return f"TruncatedDelay({self.inner!r}, cap={self.cap})"


class EmpiricalDelay(DelayDistribution):
    """Resample delays from a fixed set of observed values.

    Useful for replaying measured latency traces through the simulator; the
    reported mean and bound are the sample mean and sample maximum.
    """

    def __init__(self, observations: Sequence[float]) -> None:
        values = [float(v) for v in observations]
        if not values:
            raise ValueError("observations must be non-empty")
        if any(v < 0 for v in values):
            raise ValueError("observations must be non-negative")
        self.observations = values
        self._mean = sum(values) / len(values)
        self._max = max(values)

    def sample(self, rng: random.Random) -> float:
        return rng.choice(self.observations)

    def supports_vectorized(self) -> bool:
        return True

    def sample_array(self, gen: Any, count: int):
        import numpy as np

        observations = np.asarray(self.observations)
        return observations[gen.integers(0, len(observations), count)]

    def mean(self) -> float:
        return self._mean

    def bound(self) -> Optional[float]:
        return self._max

    def __repr__(self) -> str:
        return f"EmpiricalDelay(n={len(self.observations)}, mean={self._mean:.4g})"
