"""Network topologies.

A :class:`Topology` is a directed multigraph over node uids ``0 .. n-1``
together with a human-readable name.  Builders are provided for all the
shapes used in the paper and the experiments:

* :func:`unidirectional_ring` -- the topology of the ABE election algorithm
  (Section 3): every node has exactly one outgoing channel, to its successor.
* :func:`bidirectional_ring`, :func:`line_topology`, :func:`star_topology`,
  :func:`complete_graph`, :func:`tree_topology`, :func:`grid_topology` --
  standard shapes used by the synchronizer experiments and by the baseline
  algorithms.
* :func:`random_connected` -- Erdős–Rényi graphs conditioned on connectivity
  (via :mod:`networkx`), used to measure synchronizer overhead on irregular
  topologies.

All builders return *directed* edge lists; an "undirected" link is represented
by the two directed edges, each of which becomes its own simulated channel.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import networkx as nx

__all__ = [
    "Topology",
    "unidirectional_ring",
    "bidirectional_ring",
    "line_topology",
    "star_topology",
    "complete_graph",
    "tree_topology",
    "grid_topology",
    "random_connected",
]


@dataclass
class Topology:
    """A directed communication topology over nodes ``0 .. n-1``.

    Attributes
    ----------
    n:
        Number of nodes.
    edges:
        Directed edges ``(source, destination)`` in a fixed, reproducible
        order; the order determines port numbering in the network builder.
    name:
        Human-readable name used in experiment tables.
    """

    n: int
    edges: List[Tuple[int, int]]
    name: str = "topology"
    _out_map: Dict[int, List[int]] = field(default_factory=dict, repr=False)
    _in_map: Dict[int, List[int]] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        if self.n <= 0:
            raise ValueError(f"topology must have at least one node, got n={self.n}")
        for source, destination in self.edges:
            if not (0 <= source < self.n) or not (0 <= destination < self.n):
                raise ValueError(
                    f"edge ({source}, {destination}) references a node outside 0..{self.n - 1}"
                )
            if source == destination:
                raise ValueError(f"self-loop ({source}, {destination}) is not allowed")
        self._out_map = {u: [] for u in range(self.n)}
        self._in_map = {u: [] for u in range(self.n)}
        for source, destination in self.edges:
            self._out_map[source].append(destination)
            self._in_map[destination].append(source)

    # ------------------------------------------------------------------ views

    def successors(self, node: int) -> List[int]:
        """Destinations of the node's outgoing edges, in port order."""
        return list(self._out_map[node])

    def predecessors(self, node: int) -> List[int]:
        """Sources of the node's incoming edges, in in-port order."""
        return list(self._in_map[node])

    def out_degree(self, node: int) -> int:
        """Number of outgoing edges of ``node``."""
        return len(self._out_map[node])

    def in_degree(self, node: int) -> int:
        """Number of incoming edges of ``node``."""
        return len(self._in_map[node])

    @property
    def edge_count(self) -> int:
        """Total number of directed edges."""
        return len(self.edges)

    def is_strongly_connected(self) -> bool:
        """Whether every node can reach every other node along directed edges."""
        graph = nx.DiGraph()
        graph.add_nodes_from(range(self.n))
        graph.add_edges_from(self.edges)
        return nx.is_strongly_connected(graph)

    def to_networkx(self) -> nx.DiGraph:
        """Export as a :class:`networkx.DiGraph` (for analysis/plotting)."""
        graph = nx.DiGraph(name=self.name)
        graph.add_nodes_from(range(self.n))
        graph.add_edges_from(self.edges)
        return graph

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Topology(name={self.name!r}, n={self.n}, edges={self.edge_count})"


# --------------------------------------------------------------------- builders


def unidirectional_ring(n: int) -> Topology:
    """Ring ``0 -> 1 -> ... -> n-1 -> 0`` with one outgoing port per node.

    This is the topology the ABE election algorithm of Section 3 runs on.
    Rings of size 1 are allowed (a single node with no channels would not be a
    ring; we require ``n >= 2``).
    """
    if n < 2:
        raise ValueError(f"a unidirectional ring needs n >= 2, got {n}")
    edges = [(i, (i + 1) % n) for i in range(n)]
    return Topology(n=n, edges=edges, name=f"uniring-{n}")


def bidirectional_ring(n: int) -> Topology:
    """Ring with channels in both directions (port 0 = clockwise, 1 = counter)."""
    if n < 2:
        raise ValueError(f"a bidirectional ring needs n >= 2, got {n}")
    edges: List[Tuple[int, int]] = []
    for i in range(n):
        edges.append((i, (i + 1) % n))
    for i in range(n):
        edges.append((i, (i - 1) % n))
    return Topology(n=n, edges=edges, name=f"biring-{n}")


def line_topology(n: int) -> Topology:
    """A path ``0 - 1 - ... - n-1`` with bidirectional links."""
    if n < 2:
        raise ValueError(f"a line needs n >= 2, got {n}")
    edges: List[Tuple[int, int]] = []
    for i in range(n - 1):
        edges.append((i, i + 1))
        edges.append((i + 1, i))
    return Topology(n=n, edges=edges, name=f"line-{n}")


def star_topology(n: int, centre: int = 0) -> Topology:
    """A star: the centre is linked bidirectionally to every other node."""
    if n < 2:
        raise ValueError(f"a star needs n >= 2, got {n}")
    if not (0 <= centre < n):
        raise ValueError(f"centre {centre} outside 0..{n - 1}")
    edges: List[Tuple[int, int]] = []
    for i in range(n):
        if i == centre:
            continue
        edges.append((centre, i))
        edges.append((i, centre))
    return Topology(n=n, edges=edges, name=f"star-{n}")


def complete_graph(n: int) -> Topology:
    """Every ordered pair of distinct nodes is connected."""
    if n < 2:
        raise ValueError(f"a complete graph needs n >= 2, got {n}")
    edges = [(i, j) for i in range(n) for j in range(n) if i != j]
    return Topology(n=n, edges=edges, name=f"complete-{n}")


def tree_topology(n: int, branching: int = 2) -> Topology:
    """A complete ``branching``-ary tree with bidirectional links."""
    if n < 2:
        raise ValueError(f"a tree needs n >= 2, got {n}")
    if branching < 1:
        raise ValueError("branching must be >= 1")
    edges: List[Tuple[int, int]] = []
    for child in range(1, n):
        parent = (child - 1) // branching
        edges.append((parent, child))
        edges.append((child, parent))
    return Topology(n=n, edges=edges, name=f"tree-{n}-b{branching}")


def grid_topology(rows: int, cols: int, wrap: bool = False) -> Topology:
    """A ``rows x cols`` grid (torus when ``wrap``) with bidirectional links."""
    if rows < 1 or cols < 1 or rows * cols < 2:
        raise ValueError("grid must contain at least two nodes")
    n = rows * cols

    def uid(r: int, c: int) -> int:
        return r * cols + c

    undirected: List[Tuple[int, int]] = []
    for r in range(rows):
        for c in range(cols):
            if c + 1 < cols:
                undirected.append((uid(r, c), uid(r, c + 1)))
            elif wrap and cols > 2:
                undirected.append((uid(r, c), uid(r, 0)))
            if r + 1 < rows:
                undirected.append((uid(r, c), uid(r + 1, c)))
            elif wrap and rows > 2:
                undirected.append((uid(r, c), uid(0, c)))
    edges: List[Tuple[int, int]] = []
    for u, v in undirected:
        edges.append((u, v))
        edges.append((v, u))
    kind = "torus" if wrap else "grid"
    return Topology(n=n, edges=edges, name=f"{kind}-{rows}x{cols}")


def random_connected(n: int, edge_probability: float, seed: int) -> Topology:
    """A connected Erdős–Rényi graph, links bidirectional.

    The generator keeps drawing G(n, p) samples (with deterministic,
    seed-derived sub-seeds) until it finds a connected one, then adds both
    directions of every undirected edge.  A spanning-tree fallback guarantees
    termination even for very small ``edge_probability``.
    """
    if n < 2:
        raise ValueError(f"a random graph needs n >= 2, got {n}")
    if not (0.0 <= edge_probability <= 1.0):
        raise ValueError("edge_probability must be in [0, 1]")
    graph = None
    for attempt in range(50):
        candidate = nx.gnp_random_graph(n, edge_probability, seed=seed + attempt)
        if nx.is_connected(candidate):
            graph = candidate
            break
    if graph is None:
        # Guarantee connectivity: a random spanning tree plus the last sample's edges.
        graph = nx.gnp_random_graph(n, edge_probability, seed=seed)
        nodes = list(graph.nodes())
        for i in range(1, n):
            graph.add_edge(nodes[i - 1], nodes[i])
    edges: List[Tuple[int, int]] = []
    for u, v in sorted(graph.edges()):
        edges.append((u, v))
        edges.append((v, u))
    return Topology(n=n, edges=edges, name=f"gnp-{n}-p{edge_probability:g}")
