"""Basic sample estimators.

Thin, dependency-light wrappers used throughout the experiment harness; they
exist (rather than calling numpy inline everywhere) so that the statistical
conventions -- unbiased sample variance, standard error definition, empty
sample handling -- are fixed in exactly one place and unit-tested there.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

__all__ = ["mean", "sample_variance", "standard_error", "SampleSummary", "summarise"]


def mean(samples: Sequence[float]) -> float:
    """Arithmetic mean.

    Raises
    ------
    ValueError
        If ``samples`` is empty (a silent 0 would corrupt experiment tables).
    """
    if not samples:
        raise ValueError("cannot take the mean of an empty sample")
    return sum(samples) / len(samples)


def sample_variance(samples: Sequence[float]) -> float:
    """Unbiased (n-1 denominator) sample variance; 0 for singleton samples."""
    if not samples:
        raise ValueError("cannot take the variance of an empty sample")
    if len(samples) == 1:
        return 0.0
    m = mean(samples)
    return sum((x - m) ** 2 for x in samples) / (len(samples) - 1)


def standard_error(samples: Sequence[float]) -> float:
    """Standard error of the mean: ``sqrt(var / n)``."""
    if not samples:
        raise ValueError("cannot take the standard error of an empty sample")
    return math.sqrt(sample_variance(samples) / len(samples))


@dataclass(frozen=True)
class SampleSummary:
    """Summary statistics of one sample of a measured quantity."""

    count: int
    mean: float
    variance: float
    std: float
    sem: float
    minimum: float
    maximum: float

    def __str__(self) -> str:
        return (
            f"n={self.count} mean={self.mean:.4g} +/- {self.sem:.2g} "
            f"(min={self.minimum:.4g}, max={self.maximum:.4g})"
        )


def summarise(samples: Sequence[float]) -> SampleSummary:
    """Compute a :class:`SampleSummary` of a non-empty sample."""
    if not samples:
        raise ValueError("cannot summarise an empty sample")
    m = mean(samples)
    var = sample_variance(samples)
    return SampleSummary(
        count=len(samples),
        mean=m,
        variance=var,
        std=math.sqrt(var),
        sem=math.sqrt(var / len(samples)),
        minimum=min(samples),
        maximum=max(samples),
    )
