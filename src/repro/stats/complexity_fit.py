"""Order-of-growth fitting.

The central quantitative claim of the paper is that the ABE election algorithm
has *average linear* time and message complexity, while asynchronous ring
election is Omega(n log n) and the classical baselines are Theta(n log n).
Reproducing the claim therefore requires deciding, from measured averages at a
handful of ring sizes, which growth order fits best.

:func:`fit_growth_order` fits ``cost ~ c * g(n)`` for each candidate ``g`` by
least squares and reports the residual error; :func:`best_growth_order` picks
the candidate with the smallest normalised residual.  The fit is deliberately
single-parameter (no intercept, no exponent search): the question asked by the
experiments is "which of these named shapes explains the data best", not
"what is the exact exponent".
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, Mapping, Sequence

import numpy as np

__all__ = ["GROWTH_MODELS", "ComplexityFit", "fit_growth_order", "best_growth_order"]

#: Candidate growth shapes, by name.
GROWTH_MODELS: Dict[str, Callable[[float], float]] = {
    "constant": lambda n: 1.0,
    "log n": lambda n: math.log2(n),
    "n": lambda n: float(n),
    "n log n": lambda n: n * math.log2(n),
    "n^2": lambda n: float(n) ** 2,
}


@dataclass(frozen=True)
class ComplexityFit:
    """Result of fitting one growth shape to measured costs."""

    model: str
    coefficient: float
    residual_norm: float
    relative_error: float

    def predict(self, n: int) -> float:
        """Predicted cost at size ``n`` under this fit."""
        return self.coefficient * GROWTH_MODELS[self.model](n)


def fit_growth_order(
    sizes: Sequence[int], costs: Sequence[float], model: str
) -> ComplexityFit:
    """Least-squares fit of ``costs ~ c * model(sizes)`` for one named model."""
    if model not in GROWTH_MODELS:
        raise ValueError(f"unknown growth model {model!r}; choose from {sorted(GROWTH_MODELS)}")
    if len(sizes) != len(costs) or len(sizes) < 2:
        raise ValueError("need at least two (size, cost) pairs of equal length")
    if any(n < 2 for n in sizes):
        raise ValueError("sizes must be >= 2 (log-based models are undefined below)")
    g = np.array([GROWTH_MODELS[model](n) for n in sizes], dtype=float)
    y = np.array(costs, dtype=float)
    denominator = float(np.dot(g, g))
    coefficient = float(np.dot(g, y) / denominator) if denominator > 0 else 0.0
    residuals = y - coefficient * g
    residual_norm = float(np.linalg.norm(residuals))
    scale = float(np.linalg.norm(y)) or 1.0
    return ComplexityFit(
        model=model,
        coefficient=coefficient,
        residual_norm=residual_norm,
        relative_error=residual_norm / scale,
    )


def best_growth_order(
    sizes: Sequence[int],
    costs: Sequence[float],
    candidates: Sequence[str] = ("n", "n log n", "n^2"),
) -> Mapping[str, ComplexityFit]:
    """Fit every candidate shape and return the fits keyed by model name.

    The mapping is ordered from best (smallest relative error) to worst, so
    ``next(iter(best_growth_order(...)))`` is the winning shape.
    """
    fits = [fit_growth_order(sizes, costs, model) for model in candidates]
    fits.sort(key=lambda fit: fit.relative_error)
    return {fit.model: fit for fit in fits}
