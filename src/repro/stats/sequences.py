"""Streaming (running) aggregates.

Long simulations produce per-event observations that are too numerous to
retain; these accumulators keep O(1) state while exposing the statistics the
monitors need (Welford's algorithm for numerically stable running variance).
"""

from __future__ import annotations

import math

__all__ = ["RunningMean", "RunningStats"]


class RunningMean:
    """Numerically stable running mean of a stream of values."""

    def __init__(self) -> None:
        self.count = 0
        self._mean = 0.0

    def add(self, value: float) -> None:
        """Consume one observation."""
        self.count += 1
        self._mean += (value - self._mean) / self.count

    @property
    def mean(self) -> float:
        """Current mean (0.0 before any observation)."""
        return self._mean

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RunningMean(count={self.count}, mean={self._mean:.6g})"


class RunningStats:
    """Welford running mean/variance/min/max of a stream of values."""

    def __init__(self) -> None:
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf

    def add(self, value: float) -> None:
        """Consume one observation."""
        self.count += 1
        delta = value - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (value - self._mean)
        self.minimum = min(self.minimum, value)
        self.maximum = max(self.maximum, value)

    @property
    def mean(self) -> float:
        """Current mean (0.0 before any observation)."""
        return self._mean

    @property
    def variance(self) -> float:
        """Unbiased running variance (0.0 with fewer than two observations)."""
        if self.count < 2:
            return 0.0
        return self._m2 / (self.count - 1)

    @property
    def std(self) -> float:
        """Running standard deviation."""
        return math.sqrt(self.variance)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RunningStats(count={self.count}, mean={self._mean:.6g}, "
            f"std={self.std:.6g})"
        )
