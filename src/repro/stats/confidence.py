"""Confidence intervals for Monte-Carlo estimates.

Every mean reported in EXPERIMENTS.md carries a Student-t confidence interval
so that "the measured growth is linear" is a statement about interval
containment rather than about two floating point numbers being close.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from scipy import stats as scipy_stats

from repro.stats.estimators import mean, standard_error

__all__ = ["ConfidenceInterval", "confidence_interval", "relative_half_width"]


@dataclass(frozen=True)
class ConfidenceInterval:
    """A two-sided confidence interval for a mean."""

    estimate: float
    lower: float
    upper: float
    confidence: float
    count: int

    @property
    def half_width(self) -> float:
        """Half the interval width."""
        return (self.upper - self.lower) / 2.0

    def contains(self, value: float) -> bool:
        """Whether ``value`` lies inside the interval."""
        return self.lower <= value <= self.upper

    def __str__(self) -> str:
        return (
            f"{self.estimate:.4g} [{self.lower:.4g}, {self.upper:.4g}] "
            f"@{self.confidence:.0%} (n={self.count})"
        )


def confidence_interval(
    samples: Sequence[float], confidence: float = 0.95
) -> ConfidenceInterval:
    """Student-t confidence interval for the mean of ``samples``.

    For singleton samples the interval degenerates to the point estimate.
    """
    if not samples:
        raise ValueError("cannot build a confidence interval from an empty sample")
    if not (0.0 < confidence < 1.0):
        raise ValueError("confidence must be in (0, 1)")
    estimate = mean(samples)
    if len(samples) == 1:
        return ConfidenceInterval(
            estimate=estimate,
            lower=estimate,
            upper=estimate,
            confidence=confidence,
            count=1,
        )
    sem = standard_error(samples)
    t_value = float(scipy_stats.t.ppf(0.5 + confidence / 2.0, df=len(samples) - 1))
    half = t_value * sem
    return ConfidenceInterval(
        estimate=estimate,
        lower=estimate - half,
        upper=estimate + half,
        confidence=confidence,
        count=len(samples),
    )


def relative_half_width(samples: Sequence[float], confidence: float = 0.95) -> float:
    """Half-width of the confidence interval relative to the estimate.

    Used as a stopping criterion for adaptive trial counts ("keep sampling
    until the mean is known to within 5%").  Returns ``inf`` when the estimate
    is zero.
    """
    interval = confidence_interval(samples, confidence)
    if interval.estimate == 0:
        return float("inf")
    return interval.half_width / abs(interval.estimate)
