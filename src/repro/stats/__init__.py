"""Statistics toolkit for the Monte-Carlo experiments.

The paper's claims are about *expected* quantities (expected message delay,
average time and message complexity), so every experiment is a Monte-Carlo
estimation problem.  This package provides the estimation machinery the
experiment harness relies on:

* :mod:`repro.stats.estimators` -- means, variances, standard errors and
  summary statistics of samples;
* :mod:`repro.stats.confidence` -- Student-t confidence intervals and
  relative-precision stopping rules;
* :mod:`repro.stats.complexity_fit` -- order-of-growth fitting: given measured
  costs at several ``n``, decide whether the growth is Theta(n),
  Theta(n log n) or Theta(n^2) (used to check the paper's "linear average
  complexity" claim and the baselines' superlinear growth);
* :mod:`repro.stats.distributions` -- empirical distribution utilities
  (ECDF, quantiles, tail masses) used by the delay-model experiments;
* :mod:`repro.stats.sequences` -- running aggregates over simulation output.
"""

from repro.stats.estimators import (
    SampleSummary,
    mean,
    sample_variance,
    standard_error,
    summarise,
)
from repro.stats.confidence import (
    ConfidenceInterval,
    confidence_interval,
    relative_half_width,
)
from repro.stats.complexity_fit import (
    ComplexityFit,
    GROWTH_MODELS,
    fit_growth_order,
    best_growth_order,
)
from repro.stats.distributions import ecdf, empirical_quantile, tail_mass
from repro.stats.sequences import RunningMean, RunningStats

__all__ = [
    "SampleSummary",
    "mean",
    "sample_variance",
    "standard_error",
    "summarise",
    "ConfidenceInterval",
    "confidence_interval",
    "relative_half_width",
    "ComplexityFit",
    "GROWTH_MODELS",
    "fit_growth_order",
    "best_growth_order",
    "ecdf",
    "empirical_quantile",
    "tail_mass",
    "RunningMean",
    "RunningStats",
]
