"""Empirical distribution utilities.

Used by the delay-model experiments (E4, E7) to compare sampled delays against
their theoretical means, tails and quantiles, and by the tests that check the
delay distributions in :mod:`repro.network.delays` actually have the moments
they claim.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

__all__ = ["ecdf", "empirical_quantile", "tail_mass"]


def ecdf(samples: Sequence[float]) -> List[Tuple[float, float]]:
    """The empirical CDF as a list of ``(value, P[X <= value])`` pairs."""
    if not samples:
        raise ValueError("cannot build an ECDF from an empty sample")
    ordered = sorted(samples)
    n = len(ordered)
    points: List[Tuple[float, float]] = []
    for index, value in enumerate(ordered, start=1):
        # Collapse ties onto the final (largest) cumulative probability.
        if points and points[-1][0] == value:
            points[-1] = (value, index / n)
        else:
            points.append((value, index / n))
    return points


def empirical_quantile(samples: Sequence[float], q: float) -> float:
    """The ``q``-quantile (nearest-rank definition) of a non-empty sample."""
    if not samples:
        raise ValueError("cannot take a quantile of an empty sample")
    if not (0.0 <= q <= 1.0):
        raise ValueError("q must be in [0, 1]")
    ordered = sorted(samples)
    if q == 0.0:
        return ordered[0]
    rank = max(1, int(-(-q * len(ordered) // 1)))  # ceil without math import
    return ordered[min(rank, len(ordered)) - 1]


def tail_mass(samples: Sequence[float], threshold: float) -> float:
    """Fraction of samples strictly above ``threshold``.

    For the retransmission channel this is the empirical counterpart of the
    paper's ``(1 - p)^k`` tail-probability argument that message delays cannot
    be bounded.
    """
    if not samples:
        raise ValueError("cannot compute a tail mass of an empty sample")
    return sum(1 for x in samples if x > threshold) / len(samples)
