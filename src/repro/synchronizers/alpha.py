"""Awerbuch's alpha synchronizer.

The alpha synchronizer simulates a global round on an asynchronous (or ABE)
network as follows.  In round ``r`` every node sends one message to *each*
neighbour -- the client algorithm's payload if it has one for that neighbour,
otherwise an explicit padding message.  Every received round message is
acknowledged.  A node that has collected acknowledgements for all messages it
sent in round ``r`` is *safe* for ``r`` and announces this to all neighbours.
Once a node is safe and has heard ``safe`` from every neighbour, all round-``r``
messages destined to it have been delivered, so it may advance to round
``r + 1``.

Cost per round and node: ``deg`` round messages + ``deg`` acknowledgements +
``deg`` safety announcements, i.e. at least ``3 * |E|`` messages per round
network-wide and in particular at least ``n`` (Theorem 1's lower bound is met
with a healthy margin).  The alpha synchronizer is *correct* on any network in
which every message is eventually delivered -- asynchronous, ABE and ABD alike
-- because it never relies on timing, only on acknowledgements.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict

from repro.algorithms.synchronous import SyncProcess
from repro.synchronizers.base import SynchronizerProgram, SynchronizerStatus

__all__ = ["AlphaSynchronizerProgram"]


@dataclass(frozen=True)
class _RoundMessage:
    """A round-``r`` message; ``payload`` is ``None`` for padding traffic."""

    round_index: int
    payload: Any


@dataclass(frozen=True)
class _Ack:
    """Acknowledgement of one round message."""

    round_index: int


@dataclass(frozen=True)
class _Safe:
    """Safety announcement: the sender's round-``r`` messages are all delivered."""

    round_index: int


class AlphaSynchronizerProgram(SynchronizerProgram):
    """Per-node alpha synchronizer hosting a :class:`SyncProcess`.

    Requires a topology in which every link is bidirectional (each neighbour
    is reachable via an outgoing port and heard from via an incoming port),
    which all the builders in :mod:`repro.network.topology` except the
    unidirectional ring provide.
    """

    def __init__(
        self, process: SyncProcess, total_rounds: int, status: SynchronizerStatus
    ) -> None:
        super().__init__(process, total_rounds, status)
        self._acks_pending: Dict[int, int] = {}
        self._safe_received: Dict[int, int] = {}
        self._round_messages_received: Dict[int, int] = {}
        self._self_safe: Dict[int, bool] = {}
        self._advanced: Dict[int, bool] = {}

    # -------------------------------------------------------------- round API

    def begin_round(self, round_index: int, outbox: Dict[int, Any]) -> None:
        degree = self.out_degree
        self._acks_pending[round_index] = degree
        self._safe_received.setdefault(round_index, 0)
        self._round_messages_received.setdefault(round_index, 0)
        self._self_safe[round_index] = False
        self._advanced[round_index] = False
        for port in range(degree):
            payload = outbox.get(port)
            message = _RoundMessage(round_index=round_index, payload=payload)
            if payload is not None:
                self.send_algorithm(port, message)
            else:
                self.send_control(port, message)
        # A node with no neighbours (impossible in connected topologies, but
        # guarded for robustness) is trivially safe.
        if degree == 0:
            self._mark_self_safe(round_index)

    # ---------------------------------------------------------------- receive

    def on_receive(self, payload: Any, port: int) -> None:
        if isinstance(payload, _RoundMessage):
            self._handle_round_message(payload, port)
        elif isinstance(payload, _Ack):
            self._handle_ack(payload)
        elif isinstance(payload, _Safe):
            self._handle_safe(payload)
        else:
            raise TypeError(f"alpha synchronizer received unexpected payload {payload!r}")

    def _handle_round_message(self, message: _RoundMessage, port: int) -> None:
        round_index = message.round_index
        if message.payload is not None:
            self.record_algorithm_payload(round_index, port, message.payload)
        self._round_messages_received[round_index] = (
            self._round_messages_received.get(round_index, 0) + 1
        )
        # Acknowledge over the port leading back to the sender.
        reply_port = self.port_to(self.in_neighbor(port))
        self.send_control(reply_port, _Ack(round_index=round_index))

    def _handle_ack(self, ack: _Ack) -> None:
        round_index = ack.round_index
        pending = self._acks_pending.get(round_index, 0) - 1
        self._acks_pending[round_index] = pending
        if pending == 0:
            self._mark_self_safe(round_index)

    def _mark_self_safe(self, round_index: int) -> None:
        if self._self_safe.get(round_index):
            return
        self._self_safe[round_index] = True
        for port in range(self.out_degree):
            self.send_control(port, _Safe(round_index=round_index))
        self._maybe_advance(round_index)

    def _handle_safe(self, safe: _Safe) -> None:
        round_index = safe.round_index
        self._safe_received[round_index] = self._safe_received.get(round_index, 0) + 1
        self._maybe_advance(round_index)

    # ----------------------------------------------------------------- action

    def _maybe_advance(self, round_index: int) -> None:
        if self.finished or self._advanced.get(round_index):
            return
        if round_index != self.current_round:
            return
        if not self._self_safe.get(round_index):
            return
        if self._safe_received.get(round_index, 0) < self.in_degree:
            return
        self._advanced[round_index] = True
        # Tidy per-round bookkeeping that is no longer needed.
        self._acks_pending.pop(round_index, None)
        self._safe_received.pop(round_index, None)
        self._round_messages_received.pop(round_index, None)
        self._self_safe.pop(round_index, None)
        self.complete_round(round_index)
