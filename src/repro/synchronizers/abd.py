"""The ABD synchronizer (timeout based, after Tel, Korach & Zaks).

ABD networks have a known hard bound ``D`` on the message delay, so a
synchronizer needs *no* control messages at all: if every node starts round
``r`` at (local) time ``r * T`` with ``T > D + gamma``, then every round-``r``
message has arrived before any node begins round ``r + 1``.  This is the
synchronizer the paper contrasts with Theorem 1: it beats the ``n`` messages
per round bound, but only because it leans on the hard delay bound that ABE
networks do not have.

On an ABE network the same synchronizer is *unsound*: a message delayed beyond
``T`` arrives after its round has been processed.  :class:`AbdSynchronizerProgram`
counts such *late messages* (and drops them, which is what a real
timeout-driven implementation effectively does), so experiment E5 can show
both halves of the story:

* on a genuinely bounded (ABD) delay model -- zero late messages, correct
  results, fewer than ``n`` messages per round;
* on an ABE delay model with the same *mean* -- late messages appear, results
  diverge from the synchronous ground truth, confirming that the cheap
  synchronizer does not transfer to ABE networks.

The implementation assumes the drift-free clock configuration
(``s_low = s_high``); the timeout is scaled by the clock bounds so slightly
drifting clocks remain safe on ABD networks, as in the original construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional

from repro.algorithms.synchronous import SyncProcess
from repro.synchronizers.base import SynchronizerProgram, SynchronizerStatus

__all__ = ["AbdSynchronizerProgram"]


@dataclass(frozen=True)
class _RoundMessage:
    """A round-stamped client payload (the only traffic this synchronizer sends)."""

    round_index: int
    payload: Any


class AbdSynchronizerProgram(SynchronizerProgram):
    """Per-node timeout-driven synchronizer.

    Parameters
    ----------
    process, total_rounds, status:
        As for every :class:`~repro.synchronizers.base.SynchronizerProgram`.
    delay_bound:
        The hard bound ``D`` the synchronizer believes in.  On an ABD network
        this should be the true bound; on an ABE network any finite value is a
        leap of faith -- which is the point of the experiment.
    processing_bound:
        The ``gamma`` bound on local processing time (0 with instantaneous
        processing).
    safety_margin:
        Extra slack added to the round length.
    """

    def __init__(
        self,
        process: SyncProcess,
        total_rounds: int,
        status: SynchronizerStatus,
        *,
        delay_bound: float,
        processing_bound: float = 0.0,
        safety_margin: float = 0.05,
    ) -> None:
        super().__init__(process, total_rounds, status)
        if delay_bound <= 0:
            raise ValueError("delay_bound must be positive")
        if processing_bound < 0:
            raise ValueError("processing_bound must be non-negative")
        if safety_margin < 0:
            raise ValueError("safety_margin must be non-negative")
        self.delay_bound = float(delay_bound)
        self.processing_bound = float(processing_bound)
        self.safety_margin = float(safety_margin)
        self.late_messages = 0

    def bind(self, node) -> None:
        """Additionally publish the shared late-message counter."""
        super().bind(node)
        status = self.status
        node.network.metrics.bind_external_sum(
            "late_messages", status, lambda: status.late_messages
        )

    # ----------------------------------------------------------------- timing

    def round_length(self) -> float:
        """The local-time length ``T`` of one round.

        ``T`` must exceed the worst-case real time between one node sending a
        round message and the slowest node processing that round, expressed in
        local time.  With clock rates within ``[s_low, s_high]`` a sufficient
        choice is ``(D + gamma) * s_high + margin`` local units, which for the
        drift-free default reduces to ``D + gamma + margin``.
        """
        node = self._require_node()
        s_high = node.clock.s_high
        return (self.delay_bound + self.processing_bound) * s_high + self.safety_margin

    # -------------------------------------------------------------- round API

    def begin_round(self, round_index: int, outbox: Dict[int, Any]) -> None:
        for port, payload in outbox.items():
            self.send_algorithm(port, _RoundMessage(round_index=round_index, payload=payload))
        # No control traffic at all: the round ends on a local timer.
        self.set_timer(self.round_length(), lambda: self._round_timeout(round_index))

    def _round_timeout(self, round_index: int) -> None:
        if self.finished:
            return
        self.complete_round(round_index)

    # ---------------------------------------------------------------- receive

    def on_receive(self, payload: Any, port: int) -> None:
        if not isinstance(payload, _RoundMessage):
            raise TypeError(f"ABD synchronizer received unexpected payload {payload!r}")
        if payload.round_index < self.current_round or self.finished:
            # The round has already been processed: the message is late.  A
            # hard delay bound makes this impossible; an ABE delay tail makes
            # it inevitable eventually.
            self.late_messages += 1
            self.status.late_messages += 1
            return
        self.record_algorithm_payload(payload.round_index, port, payload.payload)
