"""Awerbuch's beta synchronizer (spanning-tree convergecast / broadcast).

Like the alpha synchronizer, the beta synchronizer detects local safety with
acknowledgements; unlike alpha, the safety information is aggregated over a
rooted spanning tree: a node reports ``safe`` to its parent once it is safe
*and* all of its children have reported; when the root completes, it broadcasts
``pulse`` down the tree and every node advances one round.

Per-round cost: ``deg`` round messages + ``deg`` acknowledgements per node,
plus ``2 (n - 1)`` tree messages network-wide.  Latency is proportional to the
tree depth -- the classical alpha/beta trade-off.  Either way the per-round
message count is at least ``n``, as Theorem 1 requires of *any* correct
synchronizer on ABE networks.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.algorithms.synchronous import SyncProcess
from repro.network.topology import Topology
from repro.synchronizers.base import SynchronizerProgram, SynchronizerStatus

__all__ = ["BetaSynchronizerProgram", "build_bfs_tree"]


def build_bfs_tree(topology: Topology, root: int = 0) -> Dict[int, Dict[str, Any]]:
    """Compute a BFS spanning tree and return per-node tree knowledge.

    Returns a mapping ``uid -> {"parent": parent_uid_or_None, "children":
    [uids]}`` suitable for :class:`~repro.network.network.NetworkConfig`'s
    ``knowledge_factory``.  The topology must be strongly connected (all the
    bidirectional builders are).
    """
    if not (0 <= root < topology.n):
        raise ValueError(f"root {root} outside 0..{topology.n - 1}")
    parent: Dict[int, Optional[int]] = {root: None}
    order: List[int] = []
    queue = deque([root])
    while queue:
        node = queue.popleft()
        order.append(node)
        for neighbour in topology.successors(node):
            if neighbour not in parent:
                parent[neighbour] = node
                queue.append(neighbour)
    if len(parent) != topology.n:
        raise ValueError(
            "topology is not connected: BFS from the root reached only "
            f"{len(parent)} of {topology.n} nodes"
        )
    children: Dict[int, List[int]] = {uid: [] for uid in range(topology.n)}
    for uid, up in parent.items():
        if up is not None:
            children[up].append(uid)
    return {
        uid: {"tree_parent": parent[uid], "tree_children": tuple(children[uid])}
        for uid in range(topology.n)
    }


@dataclass(frozen=True)
class _RoundMessage:
    round_index: int
    payload: Any


@dataclass(frozen=True)
class _Ack:
    round_index: int


@dataclass(frozen=True)
class _TreeSafe:
    """Convergecast message: the sender's subtree is entirely safe for the round."""

    round_index: int


@dataclass(frozen=True)
class _Pulse:
    """Broadcast message from the root: everyone may advance past the round."""

    round_index: int


class BetaSynchronizerProgram(SynchronizerProgram):
    """Per-node beta synchronizer.

    Requires the spanning-tree knowledge produced by :func:`build_bfs_tree`
    to be installed via the network's ``knowledge_factory`` (keys
    ``tree_parent`` and ``tree_children``).
    """

    def __init__(
        self, process: SyncProcess, total_rounds: int, status: SynchronizerStatus
    ) -> None:
        super().__init__(process, total_rounds, status)
        self._acks_pending: Dict[int, int] = {}
        self._self_safe: Dict[int, bool] = {}
        self._children_safe: Dict[int, int] = {}
        self._reported: Dict[int, bool] = {}
        self._pulsed: Dict[int, bool] = {}
        self._advanced: Dict[int, bool] = {}

    # ----------------------------------------------------------------- helpers

    @property
    def tree_parent(self) -> Optional[int]:
        """Uid of the parent in the spanning tree (``None`` at the root)."""
        return self.knowledge_item("tree_parent")

    @property
    def tree_children(self) -> Tuple[int, ...]:
        """Uids of the children in the spanning tree."""
        return tuple(self.knowledge_item("tree_children", ()))

    @property
    def is_root(self) -> bool:
        """Whether this node is the root of the spanning tree."""
        return self.tree_parent is None

    # -------------------------------------------------------------- round API

    def begin_round(self, round_index: int, outbox: Dict[int, Any]) -> None:
        degree = self.out_degree
        self._acks_pending[round_index] = degree
        self._self_safe[round_index] = False
        self._children_safe.setdefault(round_index, 0)
        self._reported[round_index] = False
        self._advanced[round_index] = False
        for port in range(degree):
            payload = outbox.get(port)
            message = _RoundMessage(round_index=round_index, payload=payload)
            if payload is not None:
                self.send_algorithm(port, message)
            else:
                self.send_control(port, message)
        if degree == 0:
            self._mark_self_safe(round_index)

    # ---------------------------------------------------------------- receive

    def on_receive(self, payload: Any, port: int) -> None:
        if isinstance(payload, _RoundMessage):
            self._handle_round_message(payload, port)
        elif isinstance(payload, _Ack):
            self._handle_ack(payload)
        elif isinstance(payload, _TreeSafe):
            self._handle_tree_safe(payload)
        elif isinstance(payload, _Pulse):
            self._handle_pulse(payload)
        else:
            raise TypeError(f"beta synchronizer received unexpected payload {payload!r}")

    def _handle_round_message(self, message: _RoundMessage, port: int) -> None:
        if message.payload is not None:
            self.record_algorithm_payload(message.round_index, port, message.payload)
        reply_port = self.port_to(self.in_neighbor(port))
        self.send_control(reply_port, _Ack(round_index=message.round_index))

    def _handle_ack(self, ack: _Ack) -> None:
        round_index = ack.round_index
        pending = self._acks_pending.get(round_index, 0) - 1
        self._acks_pending[round_index] = pending
        if pending == 0:
            self._mark_self_safe(round_index)

    def _mark_self_safe(self, round_index: int) -> None:
        if self._self_safe.get(round_index):
            return
        self._self_safe[round_index] = True
        self._maybe_report(round_index)

    def _handle_tree_safe(self, message: _TreeSafe) -> None:
        round_index = message.round_index
        self._children_safe[round_index] = self._children_safe.get(round_index, 0) + 1
        self._maybe_report(round_index)

    def _maybe_report(self, round_index: int) -> None:
        if self._reported.get(round_index):
            return
        if not self._self_safe.get(round_index):
            return
        if self._children_safe.get(round_index, 0) < len(self.tree_children):
            return
        self._reported[round_index] = True
        if self.is_root:
            self._broadcast_pulse(round_index)
            self._advance(round_index)
        else:
            parent_port = self.port_to(self.tree_parent)
            self.send_control(parent_port, _TreeSafe(round_index=round_index))

    def _broadcast_pulse(self, round_index: int) -> None:
        if self._pulsed.get(round_index):
            return
        self._pulsed[round_index] = True
        for child in self.tree_children:
            self.send_control(self.port_to(child), _Pulse(round_index=round_index))

    def _handle_pulse(self, message: _Pulse) -> None:
        round_index = message.round_index
        self._broadcast_pulse(round_index)
        self._advance(round_index)

    # ----------------------------------------------------------------- action

    def _advance(self, round_index: int) -> None:
        if self.finished or self._advanced.get(round_index):
            return
        self._advanced[round_index] = True
        self._acks_pending.pop(round_index, None)
        self._self_safe.pop(round_index, None)
        self._children_safe.pop(round_index, None)
        self._reported.pop(round_index, None)
        self.complete_round(round_index)
