"""Synchronizers: running synchronous algorithms on weaker network models.

Section 2 of the paper discusses synchronisation of ABE networks and states
(Theorem 1) that ABE networks of size ``n`` cannot be synchronised with fewer
than ``n`` messages per round -- the classical impossibility for asynchronous
networks carries over because every asynchronous execution is also an ABE
execution.  The practical consequence: the message-thrifty ABD synchronizer of
Tel, Korach and Zaks, which relies on the hard delay bound, is *unsound* on
ABE networks, while sound synchronizers (Awerbuch's alpha and beta) pay at
least ``n`` messages every round.

This package provides:

* :class:`~repro.synchronizers.alpha.AlphaSynchronizerProgram` -- Awerbuch's
  alpha synchronizer (acknowledgements + per-neighbour safety announcements).
* :class:`~repro.synchronizers.beta.BetaSynchronizerProgram` -- Awerbuch's
  beta synchronizer (acknowledgements + spanning-tree convergecast/broadcast).
* :class:`~repro.synchronizers.abd.AbdSynchronizerProgram` -- the
  timeout-based ABD synchronizer, correct when a hard delay bound exists and
  demonstrably incorrect on ABE delays (late messages / wrong results).
* :func:`~repro.synchronizers.base.run_synchronized` -- the harness that runs
  any :class:`~repro.algorithms.synchronous.SyncProcess` under any of the
  synchronizers on a simulated network and reports the message accounting
  needed for experiment E5.
* :mod:`~repro.synchronizers.lower_bound` -- the Theorem 1 bookkeeping
  (messages per round, violation checks).
"""

from repro.synchronizers.base import (
    SynchronizedRunResult,
    SynchronizerProgram,
    SynchronizerStatus,
    run_synchronized,
)
from repro.synchronizers.alpha import AlphaSynchronizerProgram
from repro.synchronizers.beta import BetaSynchronizerProgram, build_bfs_tree
from repro.synchronizers.abd import AbdSynchronizerProgram
from repro.synchronizers.lower_bound import (
    messages_per_round,
    theorem1_lower_bound,
    theorem1_satisfied,
)

__all__ = [
    "SynchronizerProgram",
    "SynchronizerStatus",
    "SynchronizedRunResult",
    "run_synchronized",
    "AlphaSynchronizerProgram",
    "BetaSynchronizerProgram",
    "build_bfs_tree",
    "AbdSynchronizerProgram",
    "messages_per_round",
    "theorem1_lower_bound",
    "theorem1_satisfied",
]
