"""Theorem 1 bookkeeping: messages per round of a synchronized execution.

    **Theorem 1.**  ABE networks of size ``n`` cannot be synchronised with
    fewer than ``n`` messages per round.

The theorem is inherited from the classical impossibility for asynchronous
networks [Awerbuch 1985] because every asynchronous execution is also an ABE
execution.  It cannot be "proved" by simulation, but it can be *exhibited*:
every correct synchronizer we run sends at least ``n`` messages per round,
and the only synchronizer that undercuts the bound (the timeout-based ABD
synchronizer) stops being correct the moment delays are merely
expectation-bounded.  The helpers here extract the relevant numbers from a
:class:`~repro.synchronizers.base.SynchronizedRunResult`.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

from repro.synchronizers.base import SynchronizedRunResult

__all__ = [
    "theorem1_lower_bound",
    "messages_per_round",
    "theorem1_satisfied",
    "summarise_runs",
]


def theorem1_lower_bound(n: int) -> int:
    """The Theorem 1 bound: ``n`` messages per round for a network of size ``n``."""
    if n < 1:
        raise ValueError("n must be >= 1")
    return n


def messages_per_round(result: SynchronizedRunResult) -> float:
    """Average number of messages (algorithm + control) per simulated round."""
    return result.messages_per_round


def theorem1_satisfied(result: SynchronizedRunResult) -> bool:
    """Whether the run respected the Theorem 1 lower bound.

    A correct synchronizer must satisfy this on every ABE network; the ABD
    synchronizer may violate it, but then it also fails correctness on ABE
    delays (late messages / diverging results), which is exactly the trade-off
    the theorem captures.
    """
    return result.messages_per_round >= theorem1_lower_bound(result.n) - 1e-9


def summarise_runs(results: Sequence[SynchronizedRunResult]) -> List[dict]:
    """Summarise a batch of synchronized runs for the experiment tables."""
    rows = []
    for result in results:
        rows.append(
            {
                "synchronizer": result.synchronizer,
                "topology": result.topology_name,
                "n": result.n,
                "rounds": result.rounds,
                "messages_per_round": result.messages_per_round,
                "control_per_round": result.control_messages_per_round,
                "late_messages": result.late_messages,
                "meets_theorem1": theorem1_satisfied(result),
                "completed": result.completed,
            }
        )
    return rows
