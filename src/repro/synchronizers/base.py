"""Common machinery for synchronizer programs and the run harness.

A *synchronizer program* is a :class:`~repro.network.node.NodeProgram` that
hosts one :class:`~repro.algorithms.synchronous.SyncProcess` and simulates
global rounds for it on an asynchronous / ABD / ABE network.  All concrete
synchronizers share the same skeleton (round bookkeeping, inbox buffering,
message classification into *algorithm* and *control* traffic) implemented
here; they differ only in *when* a node may advance to the next round.

:func:`run_synchronized` is the harness used by tests, examples and experiment
E5: it wires a topology, a client algorithm and a synchronizer onto a network
with a chosen delay model and returns a :class:`SynchronizedRunResult` with
the per-round message accounting that Theorem 1 talks about.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Union

from repro.algorithms.synchronous import SyncContext, SyncProcess
from repro.network.adversary import AdversarialDelay
from repro.network.delays import DelayDistribution, ExponentialDelay
from repro.network.network import Network, NetworkConfig
from repro.network.node import NodeProgram
from repro.network.topology import Topology

__all__ = [
    "SynchronizerStatus",
    "SynchronizerProgram",
    "SynchronizedRunResult",
    "run_synchronized",
]

DelayModel = Union[DelayDistribution, AdversarialDelay]


@dataclass
class SynchronizerStatus:
    """Shared progress record for one synchronized run.

    The message/round tallies are the run's hot-path counters: programs bump
    them with plain ``+= 1`` statements (one classification per sent message
    is the synchronizers' per-message overhead) and :meth:`bind_metrics`
    republishes them through the network's metrics collector under the
    historical counter names, so ``metrics.count("algorithm_messages")`` et
    al. keep working unchanged for readers.
    """

    total_nodes: int = 0
    finished_nodes: int = 0
    late_messages: int = 0
    max_round_completed: int = -1
    algorithm_messages: int = 0
    control_messages: int = 0
    rounds_completed: int = 0

    @property
    def all_finished(self) -> bool:
        """Whether every node has completed its final round."""
        return self.total_nodes > 0 and self.finished_nodes >= self.total_nodes

    def bind_metrics(self, metrics) -> None:
        """Expose the shared counters through ``metrics`` (idempotent)."""
        metrics.bind_external_sum(
            "algorithm_messages", self, lambda: self.algorithm_messages
        )
        metrics.bind_external_sum(
            "control_messages", self, lambda: self.control_messages
        )
        metrics.bind_external_sum(
            "rounds_completed", self, lambda: self.rounds_completed
        )


class SynchronizerProgram(NodeProgram):
    """Base class for synchronizer programs.

    Parameters
    ----------
    process:
        The hosted synchronous algorithm instance (one per node).
    total_rounds:
        Number of global rounds to simulate.  All client algorithms in this
        library run for an a-priori known number of rounds, which keeps the
        synchronizers free of a separate global-termination-detection layer
        (a deliberate simplification documented in DESIGN.md).
    status:
        Shared :class:`SynchronizerStatus`.
    """

    def __init__(
        self,
        process: SyncProcess,
        total_rounds: int,
        status: SynchronizerStatus,
    ) -> None:
        super().__init__()
        if total_rounds < 1:
            raise ValueError("total_rounds must be >= 1")
        self.process = process
        self.total_rounds = int(total_rounds)
        self.status = status
        self.current_round = 0
        self.finished = False
        #: Buffered algorithm payloads keyed by round, then by in-port.
        self.inboxes: Dict[int, Dict[int, Any]] = {}
        self.algorithm_messages_sent = 0
        self.control_messages_sent = 0

    # ----------------------------------------------------------------- set-up

    def bind(self, node) -> None:
        """Bind to the node and publish the shared status counters."""
        super().bind(node)
        self.status.bind_metrics(node.network.metrics)

    def on_start(self) -> None:
        node = self._require_node()
        self.process.setup(
            SyncContext(
                uid=node.uid,
                n=node.network.n,
                out_degree=self.out_degree,
                in_degree=self.in_degree,
            )
        )
        self.status.total_nodes = node.network.n
        outbox = self.process.initial_messages()
        self.begin_round(0, outbox)

    # ------------------------------------------------------------- accounting

    def send_algorithm(self, port: int, payload: Any) -> None:
        """Send a client-algorithm payload (counted as algorithm traffic)."""
        self.algorithm_messages_sent += 1
        self.status.algorithm_messages += 1
        self.send(port, payload)

    def send_control(self, port: int, payload: Any) -> None:
        """Send a synchronizer control payload (counted as control traffic)."""
        self.control_messages_sent += 1
        self.status.control_messages += 1
        self.send(port, payload)

    def record_algorithm_payload(self, round_index: int, in_port: int, payload: Any) -> None:
        """Buffer an algorithm payload delivered for ``round_index``."""
        self.inboxes.setdefault(round_index, {})[in_port] = payload

    # -------------------------------------------------------------- round API

    def begin_round(self, round_index: int, outbox: Dict[int, Any]) -> None:
        """Start round ``round_index`` by transmitting its messages.

        Concrete synchronizers override this to add their control traffic
        (padding messages, acknowledgements, safety announcements, timers).
        """
        raise NotImplementedError

    def complete_round(self, round_index: int) -> None:
        """Deliver the round's inbox to the process and move on (or finish)."""
        inbox = self.inboxes.pop(round_index, {})
        outbox = self.process.compute(round_index, inbox)
        self.status.max_round_completed = max(
            self.status.max_round_completed, round_index
        )
        self.status.rounds_completed += 1
        next_round = round_index + 1
        if next_round >= self.total_rounds:
            self._finish()
            return
        self.current_round = next_round
        self.begin_round(next_round, outbox)

    def _finish(self) -> None:
        if self.finished:
            return
        self.finished = True
        self.status.finished_nodes += 1
        self.trace("sync-finished", rounds=self.total_rounds)
        if self.status.all_finished:
            self._require_node().network.request_stop()

    # ----------------------------------------------------------------- result

    def result(self) -> Any:
        """The hosted process's result."""
        return self.process.result()


@dataclass
class SynchronizedRunResult:
    """Outcome and cost accounting of one synchronized execution."""

    topology_name: str
    synchronizer: str
    n: int
    rounds: int
    results: List[Any] = field(default_factory=list)
    total_messages: int = 0
    algorithm_messages: int = 0
    control_messages: int = 0
    late_messages: int = 0
    elapsed_time: float = 0.0
    completed: bool = True

    @property
    def messages_per_round(self) -> float:
        """Average messages (algorithm + control) per simulated round."""
        return self.total_messages / self.rounds if self.rounds else 0.0

    @property
    def control_messages_per_round(self) -> float:
        """Average control messages per simulated round."""
        return self.control_messages / self.rounds if self.rounds else 0.0


def run_synchronized(
    topology: Topology,
    process_factory: Callable[[int], SyncProcess],
    synchronizer_factory: Callable[
        [int, SyncProcess, int, SynchronizerStatus], SynchronizerProgram
    ],
    *,
    total_rounds: int,
    synchronizer_name: str = "synchronizer",
    delay: Optional[DelayModel] = None,
    seed: int = 0,
    fifo: bool = False,
    knowledge_factory: Optional[Callable[[int], Dict[str, Any]]] = None,
    max_events: Optional[int] = None,
    max_time: Optional[float] = None,
) -> SynchronizedRunResult:
    """Run a synchronous algorithm under a synchronizer on a simulated network.

    Parameters
    ----------
    topology:
        Communication topology (must contain both directions of every link for
        the alpha and beta synchronizers).
    process_factory:
        ``uid -> SyncProcess`` building the client algorithm instance.
    synchronizer_factory:
        ``(uid, process, total_rounds, status) -> SynchronizerProgram``.
    total_rounds:
        Number of global rounds to simulate.
    delay:
        Channel delay model (default: exponential with mean 1 -- an ABE
        network).
    """
    delay_model: DelayModel = delay if delay is not None else ExponentialDelay(mean=1.0)
    status = SynchronizerStatus()

    def program_factory(uid: int) -> SynchronizerProgram:
        process = process_factory(uid)
        return synchronizer_factory(uid, process, total_rounds, status)

    config = NetworkConfig(
        topology=topology,
        delay_model=delay_model,
        seed=seed,
        fifo=fifo,
        size_known=True,
        knowledge_factory=knowledge_factory,
        enable_trace=False,
    )
    network = Network(config, program_factory)
    network.stop_when(lambda: status.all_finished)
    if max_events is None:
        max_events = 200_000 + 20_000 * topology.n * max(1, total_rounds)
    network.run(until=max_time, max_events=max_events)

    return SynchronizedRunResult(
        topology_name=topology.name,
        synchronizer=synchronizer_name,
        n=topology.n,
        rounds=total_rounds,
        results=network.results(),
        total_messages=network.messages_sent(),
        algorithm_messages=int(network.metrics.count("algorithm_messages")),
        control_messages=int(network.metrics.count("control_messages")),
        late_messages=status.late_messages,
        elapsed_time=network.now,
        completed=status.all_finished,
    )
